"""ProfileStore: the serving facade over a fitted CPD model.

The paper's workflow is "profile once offline, then serve several
applications" (Sect. 1); community-search systems answer such queries
interactively, so per-query recomputation over the raw graph cannot scale.
Before this facade existed every application reloaded the graph, rebuilt
its indexes and recomputed scores from scratch on each call.

``ProfileStore`` is the one read-path object (the facade pattern of the
service-decomposition exemplars in SNIPPETS.md): it wraps a fitted
:class:`~repro.core.result.CPDResult` together with the serving payloads of
a self-contained artifact (v2+, :mod:`repro.core.io`) — the
:class:`~repro.graph.vocabulary.Vocabulary` and a
:class:`~repro.serving.summary.GraphSummary` — and memoises every derived
index the applications consume:

* user -> top-k community assignments and the member lists per community,
* the query-term inverted index of Sect. 6.3.2,
* ranking scores per query (Eq. 19) behind an LRU cache,
* the topic-popularity table ``n_tz`` and the ``f_uv`` user features,
* topic-aggregated and per-topic slices of the diffusion tensor ``eta``,
* community labels for reports and visualizations.

A store built by :meth:`from_fit` keeps a reference to the live graph (the
offline path); one built by :meth:`from_artifact` has ``graph=None`` and
serves everything above without any graph access. Fold-in inference
(:mod:`repro.serving.foldin`) handles documents that arrive after the
offline fit.
"""

from __future__ import annotations

import threading
import time
from typing import Sequence, Union

import numpy as np

from .. import obs
from ..core.io import CPDArtifact, PathLike, load_artifact, save_result
from ..core.result import CPDResult
from ..diffusion.features import UserFeatures
from ..diffusion.popularity import TopicPopularity
from ..evaluation.queries import Query
from ..graph.social_graph import GraphStats, SocialGraph
from ..graph.vocabulary import Vocabulary
from ..sampling.rng import RngLike
from .cache import LRUCache
from .foldin import FoldInResult, fold_in_documents
from .summary import GraphSummary

QueryLike = Union[str, Sequence[str]]


def compute_community_labels(
    result: CPDResult, vocabulary: Vocabulary, n_words: int = 3
) -> list[str]:
    """Label each community by the top words of its dominant topics.

    The one labelling heuristic shared by the store's memoised
    :meth:`ProfileStore.labels` and the raw-result path of
    :func:`repro.apps.visualization.community_labels`.
    """
    labels = []
    for community in range(result.n_communities):
        words: list[str] = []
        for topic, _weight in result.top_topics(community, 2):
            words.extend(
                word for word, _p in result.top_words(topic, n_words, vocabulary)
            )
        deduped = list(dict.fromkeys(words))[:n_words]
        labels.append(" ".join(deduped))
    return labels


class ProfileStore:
    """Read-path facade over one fitted CPD model (see module docstring).

    All derived indexes are built lazily and memoised; the store is
    intended to live for many queries (a process-wide singleton per model
    in a serving deployment). It never mutates the wrapped result.
    """

    def __init__(
        self,
        result: CPDResult,
        vocabulary: Vocabulary | None = None,
        summary: GraphSummary | None = None,
        graph: SocialGraph | None = None,
        query_cache_size: int = 1024,
    ) -> None:
        if vocabulary is None and graph is not None:
            vocabulary = graph.vocabulary
        self.result = result
        self.vocabulary = vocabulary
        self.graph = graph
        self._summary = summary
        if query_cache_size < 1:
            raise ValueError("query_cache_size must be at least 1")
        self._rank_cache: LRUCache[list[tuple[int, float]]] = LRUCache(query_cache_size)
        self._shift_cache: LRUCache[float] = LRUCache(query_cache_size)
        # one reentrant lock guards every memo build and the hot-swap path;
        # cache hits stay lock-free apart from the LRU's own internal lock,
        # so the gateway's executor threads contend only on misses
        self._lock = threading.RLock()
        # memo slots for the non-query indexes
        self._top_communities: dict[int, np.ndarray] = {}
        self._members: dict[int, list[np.ndarray]] = {}
        self._labels: dict[int, list[str]] = {}
        self._diffusion_slices: dict[int, np.ndarray] = {}
        self._log_phi: np.ndarray | None = None
        self._eta_flat: np.ndarray | None = None
        self._aggregated_eta: np.ndarray | None = None
        self._query_index: dict[str, Query] | None = None
        self._popularity: TopicPopularity | None = None
        self._pop_matrix: np.ndarray | None = None
        self._user_features: UserFeatures | None = None
        self._doc_user_cache: np.ndarray | None = None
        self._doc_time_cache: np.ndarray | None = None

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_fit(
        cls,
        result: CPDResult,
        graph: SocialGraph,
        query_cache_size: int = 1024,
    ) -> "ProfileStore":
        """Wrap a freshly fitted result with its live graph (offline path).

        The graph summary is distilled lazily on first use, so wrapping a
        fit for a couple of queries stays cheap.
        """
        return cls(result, graph=graph, query_cache_size=query_cache_size)

    @classmethod
    def from_artifact(
        cls, path: PathLike, query_cache_size: int = 1024
    ) -> "ProfileStore":
        """Open a saved artifact for serving — no graph access, ever.

        Requires a self-contained artifact (v2+) for the full API; a v1
        (or payload-free) artifact still serves the pure profile queries
        but raises on vocabulary- or summary-dependent calls.
        """
        artifact = load_artifact(path)
        return cls.from_artifact_bundle(artifact, query_cache_size=query_cache_size)

    @classmethod
    def from_artifact_bundle(
        cls, artifact: CPDArtifact, query_cache_size: int = 1024
    ) -> "ProfileStore":
        """Wrap an already-loaded :class:`~repro.core.io.CPDArtifact`."""
        summary = (
            GraphSummary.from_dict(artifact.graph_summary)
            if artifact.graph_summary is not None
            else None
        )
        return cls(
            artifact.result,
            vocabulary=artifact.vocabulary,
            summary=summary,
            query_cache_size=query_cache_size,
        )

    def save(self, path: PathLike) -> None:
        """Persist as a self-contained artifact (vocabulary + summary)."""
        save_result(
            self.result, path, vocabulary=self.vocabulary, graph_summary=self.summary
        )

    # --------------------------------------------------------------- hot swap

    def invalidate(self) -> None:
        """Reset the Eq. 19 LRU cache and every memoised index in place.

        The hot-swap primitive: after the wrapped result (or summary)
        changes, all derived indexes — top-k/membership, labels, log-phi,
        flattened eta, popularity, query index, feature provider — must be
        rebuilt lazily from the new data. The store object itself survives,
        so long-lived references keep serving; the cumulative hit/miss
        counters are preserved for monitoring continuity.
        """
        with self._lock:
            self._rank_cache.clear()  # entries only; hit/miss counters survive
            self._shift_cache.clear()
            self._top_communities.clear()
            self._members.clear()
            self._labels.clear()
            self._diffusion_slices.clear()
            self._log_phi = None
            self._eta_flat = None
            self._aggregated_eta = None
            self._query_index = None
            self._popularity = None
            self._pop_matrix = None
            self._user_features = None
            self._doc_user_cache = None
            self._doc_time_cache = None

    def hot_swap(
        self,
        result: CPDResult,
        summary: GraphSummary | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> None:
        """Swap in a newer fitted result without rebuilding the store.

        The streaming pipeline (:mod:`repro.stream`) snapshots an
        incrementally-maintained model and calls this on the live store:
        the wrapped result (and optionally the summary/vocabulary) is
        replaced and every memoised index invalidated, so subsequent
        queries serve the new profiles. Dimensions are validated against
        whatever payloads the store keeps. The swap happens under the
        store's lock, so readers on other threads observe either the old
        model with its old indexes or the new model with freshly-built
        ones — never a mix (the serving gateway hot-swaps under live
        traffic).
        """
        vocabulary = vocabulary if vocabulary is not None else self.vocabulary
        if vocabulary is not None and result.n_words != len(vocabulary):
            raise ValueError(
                f"result has {result.n_words} words but the vocabulary has "
                f"{len(vocabulary)} — refusing to hot-swap a mismatched model"
            )
        summary = summary if summary is not None else self._summary
        if summary is not None and summary.n_documents != len(result.doc_topic):
            raise ValueError(
                f"summary covers {summary.n_documents} documents but the result "
                f"assigns {len(result.doc_topic)} — pass the matching summary"
            )
        if (
            summary is None
            and self.graph is not None
            and self.graph.n_documents != len(result.doc_topic)
        ):
            raise ValueError(
                f"the store's live graph covers {self.graph.n_documents} documents "
                f"but the result assigns {len(result.doc_topic)} — pass the "
                "extended summary (it replaces the stale graph's document maps)"
            )
        with self._lock:
            self.result = result
            self.vocabulary = vocabulary
            self._summary = summary
            self.invalidate()

    # ------------------------------------------------------------- dimensions

    @property
    def n_users(self) -> int:
        return self.result.n_users

    @property
    def n_communities(self) -> int:
        return self.result.n_communities

    @property
    def n_topics(self) -> int:
        return self.result.n_topics

    @property
    def n_words(self) -> int:
        return self.result.n_words

    @property
    def summary(self) -> GraphSummary:
        """The graph summary; distilled from the live graph on first use."""
        with self._lock:
            if self._summary is None:
                if self.graph is None:
                    raise RuntimeError(
                        "this store has no graph summary — refit and save a "
                        "self-contained artifact (repro fit), or attach the graph"
                    )
                self._summary = GraphSummary.from_graph(self.graph)
            return self._summary

    @property
    def stats(self) -> GraphStats:
        """Graph size statistics, served without the graph when summarised."""
        if self._summary is not None:
            return self._summary.stats()
        if self.graph is not None:
            return self.graph.stats()
        return self.summary.stats()  # raises with the explanatory message

    def _require_vocabulary(self) -> Vocabulary:
        if self.vocabulary is None:
            raise RuntimeError(
                "this store has no vocabulary — refit and save a self-contained "
                "artifact (repro fit), or construct the store with the graph"
            )
        return self.vocabulary

    # ------------------------------------------------------------ memberships

    def top_communities(self, k: int = 5) -> np.ndarray:
        """Memoised user -> top-``k`` community index, shape ``(U, k)``."""
        k = min(k, self.n_communities)
        with self._lock:
            if k not in self._top_communities:
                self._top_communities[k] = self.result.top_communities_per_user(k)
            return self._top_communities[k]

    def community_members(self, k: int = 5) -> list[np.ndarray]:
        """Memoised member user ids per community under top-``k`` assignment."""
        k = min(k, self.n_communities)
        with self._lock:
            if k not in self._members:
                top = self.top_communities(k)
                self._members[k] = [
                    np.flatnonzero((top == community).any(axis=1))
                    for community in range(self.n_communities)
                ]
            return self._members[k]

    # ------------------------------------------------------------ query index

    def query_index(self) -> dict[str, Query]:
        """Term -> :class:`Query` inverted index (Sect. 6.3.2).

        Served from the persisted summary; distilled from the live graph
        when the store was built from a fit.
        """
        with self._lock:
            if self._query_index is None:
                self._query_index = {
                    query.term: query for query in self.summary.queries
                }
            return self._query_index

    def indexed_queries(self, max_queries: int | None = None) -> list[Query]:
        """The selected queries, most frequent first."""
        queries = self.summary.queries
        return list(queries) if max_queries is None else list(queries[:max_queries])

    def relevant_users(self, term: str) -> np.ndarray:
        """Ground-truth relevant user set ``U*_q`` for an indexed term."""
        query = self.query_index().get(term)
        if query is None:
            raise KeyError(f"term {term!r} is not in the query index")
        return query.relevant_users

    # ---------------------------------------------------------------- ranking

    def _log_phi_matrix(self) -> np.ndarray:
        with self._lock:
            if self._log_phi is None:
                self._log_phi = np.log(np.maximum(self.result.phi, 1e-300))
            return self._log_phi

    def _eta_flat_matrix(self) -> np.ndarray:
        """``eta`` reshaped to ``(C, C*Z)`` so Eq. 19 is one matvec."""
        with self._lock:
            if self._eta_flat is None:
                eta = self.result.eta
                self._eta_flat = np.ascontiguousarray(
                    eta.reshape(self.n_communities, -1)
                )
            return self._eta_flat

    def query_word_ids(self, query: QueryLike) -> tuple[int, ...]:
        """In-vocabulary word ids of a query's terms (may be empty)."""
        vocabulary = self._require_vocabulary()
        terms = query.split() if isinstance(query, str) else list(query)
        return tuple(
            vocabulary.id_of(term) for term in terms if term in vocabulary
        )

    def query_topic_affinity(self, query: QueryLike) -> np.ndarray:
        """``prod_{w in q} phi_zw`` per topic, computed stably in log space.

        The returned affinities are rescaled by ``exp(-query_log_shift(q))``
        — a per-store, per-query constant that keeps the products from
        underflowing. Within one store the rescaling is monotone and
        harmless; consumers comparing scores *across* stores (the shard
        router) must undo it via :meth:`query_log_shift`. The shift is
        recorded into the shift cache as a side effect, so the router's
        rank-then-shift call pair computes the log affinities once.
        """
        key = self.query_word_ids(query)
        if not key:
            raise KeyError(f"no query term of {query!r} is in the vocabulary")
        with self._lock:
            log_affinity = self._log_phi_matrix()[:, list(key)].sum(axis=1)
            shift = float(log_affinity.max())
            self._shift_cache.put(key, shift)
        return np.exp(log_affinity - shift)

    def query_log_shift(self, query: QueryLike) -> float:
        """The log of the constant divided out of :meth:`query_topic_affinity`.

        ``scores(q) * exp(query_log_shift(q))`` is on the absolute Eq. 19
        scale, comparable across stores fitted on different corpora.
        Memoised alongside the rank cache (the shard router asks for the
        shift on every scatter-gather query, including cache hits).
        """
        key = self.query_word_ids(query)
        if not key:
            raise KeyError(f"no query term of {query!r} is in the vocabulary")
        cached = self._shift_cache.get(key)
        if cached is not None:
            return cached
        with self._lock:
            shift = float(self._log_phi_matrix()[:, list(key)].sum(axis=1).max())
            self._shift_cache.put(key, shift)
        return shift

    def scores(self, query: QueryLike) -> np.ndarray:
        """Eq. 19 scores for every community (unnormalised)."""
        with self._lock:
            affinity = self.query_topic_affinity(query)  # (Z,)
            # sum_z sum_c' eta[c, c', z] * theta[c', z] * affinity[z]
            weighted = self.result.theta * affinity[None, :]  # (C', Z)
            return self._eta_flat_matrix() @ weighted.ravel()

    def rank(self, query: QueryLike) -> list[tuple[int, float]]:
        """Communities sorted by Eq. 19 score, best first — LRU cached.

        Repeated queries are answered from the cache without recomputing
        scores (and, for artifact-backed stores, without any graph access).
        """
        registry = obs.get_registry()
        if not registry.enabled:
            return self._rank(query)
        started = time.perf_counter()
        before = self._rank_cache.hits
        ranking = self._rank(query)
        outcome = "hit" if self._rank_cache.hits > before else "miss"
        registry.histogram(
            "repro_rank_seconds", {"outcome": outcome}
        ).observe(time.perf_counter() - started)
        registry.counter("repro_rank_cache_total", {"outcome": outcome}).inc()
        return ranking

    def _rank(self, query: QueryLike) -> list[tuple[int, float]]:
        key = self.query_word_ids(query)
        if not key:
            raise KeyError(f"no query term of {query!r} is in the vocabulary")
        cached = self._rank_cache.get(key)
        if cached is not None:
            return list(cached)
        with self._lock:
            # double-checked: another thread may have filled the entry
            # while this one waited for the lock (peek keeps the hit/miss
            # accounting at one miss per logical call)
            cached = self._rank_cache.peek(key)
            if cached is not None:
                return list(cached)
            scores = self.scores(query)
            order = np.argsort(-scores)
            ranking = [(int(c), float(scores[c])) for c in order]
            self._rank_cache.put(key, ranking)
        return list(ranking)

    def rank_many(
        self, queries: Sequence[QueryLike]
    ) -> list[list[tuple[int, float]]]:
        """Eq. 19 rankings for a batch of queries in one fused pass.

        The gateway's micro-batcher funnels concurrent rank calls here:
        instead of ``B`` separate matvecs, the uncached queries' topic
        affinities are stacked into one ``(B, C'*Z)`` weight matrix and hit
        ``eta_flat`` in a single matmul. Cache hits are answered without
        recomputation; every miss lands in the LRU (and shift cache), so a
        batched query is indistinguishable from a sequential one afterwards.
        Raises :class:`KeyError` if *any* query has no in-vocabulary term —
        callers that need per-query error isolation should pre-validate
        with :meth:`query_word_ids`.
        """
        keys = [self.query_word_ids(query) for query in queries]
        for query, key in zip(queries, keys):
            if not key:
                raise KeyError(f"no query term of {query!r} is in the vocabulary")
        rankings: list = [None] * len(queries)
        misses: dict[tuple[int, ...], list[int]] = {}
        for i, key in enumerate(keys):
            cached = self._rank_cache.get(key)
            if cached is not None:
                rankings[i] = list(cached)
            else:
                misses.setdefault(key, []).append(i)
        if not misses:
            return rankings
        with self._lock:
            # double-check under the lock, then batch whatever remains
            pending = []
            for key, positions in misses.items():
                cached = self._rank_cache.peek(key)
                if cached is not None:
                    for i in positions:
                        rankings[i] = list(cached)
                else:
                    pending.append((key, positions))
            if pending:
                log_phi = self._log_phi_matrix()
                theta = self.result.theta  # (C', Z)
                eta_flat = self._eta_flat_matrix()  # (C, C'*Z)
                affinities = np.empty((len(pending), theta.shape[1]))
                for row, (key, _positions) in enumerate(pending):
                    log_affinity = log_phi[:, list(key)].sum(axis=1)
                    shift = float(log_affinity.max())
                    self._shift_cache.put(key, shift)
                    affinities[row] = np.exp(log_affinity - shift)
                # (B, C', Z) -> (B, C'*Z): one matmul for the whole batch
                weighted = theta[None, :, :] * affinities[:, None, :]
                scores = weighted.reshape(len(pending), -1) @ eta_flat.T
                orders = np.argsort(-scores, axis=1)
                for row, (key, positions) in enumerate(pending):
                    ranking = [
                        (int(c), float(scores[row, c])) for c in orders[row]
                    ]
                    self._rank_cache.put(key, ranking)
                    for i in positions:
                        rankings[i] = list(ranking)
        return rankings

    def top_k(self, query: QueryLike, k: int = 5) -> list[int]:
        """The top-``k`` community ids for a query."""
        return [c for c, _score in self.rank(query)[:k]]

    def query_topics(self, query: QueryLike, n: int = 3) -> list[tuple[int, float]]:
        """The query's dominant topics (the "query topics" box of Fig. 1(c))."""
        affinity = self.query_topic_affinity(query)
        total = affinity.sum()
        if total > 0:
            affinity = affinity / total
        order = np.argsort(-affinity)[:n]
        return [(int(z), float(affinity[z])) for z in order]

    def cache_info(self) -> dict[str, int]:
        """Ranking-cache statistics (the canonical schema — see
        :mod:`repro.serving.cache`)."""
        return self._rank_cache.info()

    # ----------------------------------------------------- diffusion serving

    def doc_user(self) -> np.ndarray:
        """``doc_id -> user_id`` (from the summary, or the live graph).

        Graph-backed stores read the graph directly so that wrapping a fit
        for a couple of predictions does not pay for the full summary
        distillation (which includes query selection).
        """
        with self._lock:
            if self._doc_user_cache is None:
                if self._summary is not None:
                    self._doc_user_cache = self._summary.doc_user
                elif self.graph is not None:
                    self._doc_user_cache = self.graph.document_user_array()
                else:
                    self._doc_user_cache = self.summary.doc_user  # raises helpfully
            return self._doc_user_cache

    def doc_timestamp(self) -> np.ndarray:
        """``doc_id -> time bucket`` (from the summary, or the live graph)."""
        with self._lock:
            if self._doc_time_cache is None:
                if self._summary is not None:
                    self._doc_time_cache = self._summary.doc_timestamp
                elif self.graph is not None:
                    self._doc_time_cache = np.asarray(
                        [doc.timestamp for doc in self.graph.documents],
                        dtype=np.int64,
                    )
                else:
                    self._doc_time_cache = self.summary.doc_timestamp
            return self._doc_time_cache

    def popularity(self) -> TopicPopularity:
        """The frozen topic-popularity table ``n_tz`` of the fit.

        Rebuilt from the persisted per-document timestamps and topic
        assignments — identical to the table the offline fit ended on.
        """
        with self._lock:
            if self._popularity is None:
                result = self.result
                timestamps = self.doc_timestamp()
                n_buckets = int(timestamps.max()) + 1 if len(timestamps) else 1
                self._popularity = TopicPopularity.from_assignments(
                    timestamps,
                    np.where(result.doc_topic >= 0, result.doc_topic, 0),
                    n_topics=result.n_topics,
                    n_time_buckets=n_buckets,
                    mode=result.config.popularity_mode,
                    weight=result.config.popularity_weight,
                )
            return self._popularity

    def popularity_matrix(self) -> np.ndarray:
        """Memoised ``(T, Z)`` popularity score matrix."""
        with self._lock:
            if self._pop_matrix is None:
                self._pop_matrix = self.popularity().score_matrix()
            return self._pop_matrix

    def user_features(self) -> UserFeatures:
        """The ``f_uv`` feature provider, rebuilt from persisted counts."""
        with self._lock:
            if self._user_features is None:
                if self._summary is None and self.graph is not None:
                    self._user_features = UserFeatures(self.graph)
                else:
                    summary = self.summary
                    self._user_features = UserFeatures.from_counts(
                        summary.followers,
                        summary.diffusions_made,
                        summary.docs_per_user,
                    )
            return self._user_features

    def aggregated_diffusion(self) -> np.ndarray:
        """Memoised ``sum_z eta`` as a ``(C, C)`` matrix (Fig. 7(a))."""
        with self._lock:
            if self._aggregated_eta is None:
                self._aggregated_eta = self.result.aggregated_diffusion_matrix()
            return self._aggregated_eta

    def diffusion_slice(self, topic: int) -> np.ndarray:
        """Memoised per-topic ``eta[:, :, z]`` slice (Fig. 7(b)/(c))."""
        if not 0 <= topic < self.n_topics:
            raise ValueError(f"topic {topic} out of range")
        with self._lock:
            if topic not in self._diffusion_slices:
                self._diffusion_slices[topic] = np.ascontiguousarray(
                    self.result.eta[:, :, topic]
                )
            return self._diffusion_slices[topic]

    # ----------------------------------------------------------------- labels

    def labels(self, n_words: int = 3) -> list[str]:
        """Memoised community labels from dominant-topic top words."""
        with self._lock:
            if n_words not in self._labels:
                self._labels[n_words] = compute_community_labels(
                    self.result, self._require_vocabulary(), n_words
                )
            return self._labels[n_words]

    # ---------------------------------------------------------------- fold-in

    def encode_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """Map raw tokens to fitted-vocabulary ids, skipping unknown words.

        Unlike :meth:`Vocabulary.encode`, this never mutates the
        vocabulary's frequency counters — the serving path is read-only.
        """
        vocabulary = self._require_vocabulary()
        return np.asarray(
            [vocabulary.id_of(token) for token in tokens if token in vocabulary],
            dtype=np.int64,
        )

    def fold_in(
        self,
        documents: Sequence[np.ndarray | Sequence[str]],
        users: Sequence[int | None] | None = None,
        n_sweeps: int = 25,
        burn_in: int = 5,
        rng: RngLike = None,
    ) -> FoldInResult:
        """Assign unseen documents via frozen-model Gibbs fold-in.

        Each document is either an array of vocabulary ids or a sequence of
        raw string tokens (encoded through the fitted vocabulary). See
        :func:`repro.serving.foldin.fold_in_documents`.
        """
        encoded = [
            np.asarray(doc, dtype=np.int64)
            if isinstance(doc, np.ndarray) or not (len(doc) and isinstance(doc[0], str))
            else self.encode_tokens(doc)
            for doc in documents
        ]
        return fold_in_documents(
            self.result,
            encoded,
            users=users,
            n_sweeps=n_sweeps,
            burn_in=burn_in,
            rng=rng,
        )


def ensure_store(
    source: "ProfileStore | CPDResult",
    graph: SocialGraph | None = None,
) -> ProfileStore:
    """Coerce the applications' legacy ``(result, graph)`` pair to a store.

    Passing an existing :class:`ProfileStore` returns it unchanged (the
    caller shares its caches); a raw :class:`CPDResult` gets wrapped with
    the provided graph.
    """
    if isinstance(source, ProfileStore):
        return source
    if not isinstance(source, CPDResult):
        raise TypeError(
            f"expected a ProfileStore or CPDResult, got {type(source).__name__}"
        )
    return ProfileStore(source, graph=graph)

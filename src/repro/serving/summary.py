"""Graph summary: everything serving needs from the graph, without the graph.

The offline fit walks the full ``G = (U, D, F, E)``; the serving read path
must not (ISSUE 2 / paper Sect. 1's "profile once, serve many"). This
module distils the graph into the statistics the applications actually
consume at query time:

* per-document ``user_id`` and time bucket (diffusion prediction),
* per-user degree counts feeding the individual-preference features
  ``f_uv`` (:class:`repro.diffusion.features.UserFeatures`),
* the Table 3 size statistics (reports),
* the query inverted index of Sect. 6.3.2 — each selected query term with
  its diffusing-document frequency and relevant user set ``U*_q``
  (:func:`repro.evaluation.queries.select_queries`).

A :class:`GraphSummary` is JSON-serialisable and rides inside the v2
``.cpd.npz`` artifact (:mod:`repro.core.io`), which is what makes those
artifacts self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..evaluation.queries import Query, select_queries
from ..graph.social_graph import GraphStats, SocialGraph

#: query-selection defaults baked into saved summaries; liberal enough for
#: the laptop-scale synthetic corpora (DESIGN.md §2)
DEFAULT_QUERY_MIN_FREQUENCY = 2


@dataclass
class GraphSummary:
    """Serving-side distillate of one :class:`SocialGraph`."""

    name: str
    n_users: int
    n_documents: int
    n_words: int
    n_friendship_links: int
    n_diffusion_links: int
    #: publisher of each document, shape (D,)
    doc_user: np.ndarray
    #: time bucket of each document, shape (D,)
    doc_timestamp: np.ndarray
    #: per-user follower (in-degree) counts, shape (U,)
    followers: np.ndarray
    #: per-user followee (out-degree) counts, shape (U,)
    followees: np.ndarray
    #: per-user diffusion links made (source side), shape (U,)
    diffusions_made: np.ndarray
    #: per-user diffusion links received (target side), shape (U,)
    diffusions_received: np.ndarray
    #: per-user published document counts, shape (U,)
    docs_per_user: np.ndarray
    #: the precomputed query inverted index (term -> frequency + U*_q)
    queries: list[Query] = field(default_factory=list)

    # ------------------------------------------------------------ construction

    @classmethod
    def from_graph(
        cls,
        graph: SocialGraph,
        query_min_frequency: int = DEFAULT_QUERY_MIN_FREQUENCY,
        query_max_queries: int | None = None,
        query_hashtags_only: bool = False,
        query_remove_top_frequent: int = 0,
    ) -> "GraphSummary":
        """Distil ``graph`` (including its query inverted index)."""
        n_users = graph.n_users
        queries = select_queries(
            graph,
            min_frequency=query_min_frequency,
            hashtags_only=query_hashtags_only,
            remove_top_frequent=query_remove_top_frequent,
            max_queries=query_max_queries,
        )
        return cls(
            name=graph.name,
            n_users=n_users,
            n_documents=graph.n_documents,
            n_words=graph.n_words,
            n_friendship_links=graph.n_friendship_links,
            n_diffusion_links=graph.n_diffusion_links,
            doc_user=graph.document_user_array(),
            doc_timestamp=np.asarray(
                [doc.timestamp for doc in graph.documents], dtype=np.int64
            ),
            followers=np.asarray(
                [graph.follower_count(u) for u in range(n_users)], dtype=np.int64
            ),
            followees=np.asarray(
                [graph.followee_count(u) for u in range(n_users)], dtype=np.int64
            ),
            diffusions_made=np.asarray(
                [graph.diffusions_made(u) for u in range(n_users)], dtype=np.int64
            ),
            diffusions_received=np.asarray(
                [graph.diffusions_received(u) for u in range(n_users)], dtype=np.int64
            ),
            docs_per_user=np.asarray(
                [len(graph.documents_of(u)) for u in range(n_users)], dtype=np.int64
            ),
            queries=queries,
        )

    # ------------------------------------------------------------- conversion

    def stats(self) -> GraphStats:
        """The Table 3 statistics row (mirrors :meth:`SocialGraph.stats`)."""
        return GraphStats(
            n_users=self.n_users,
            n_friendship_links=self.n_friendship_links,
            n_diffusion_links=self.n_diffusion_links,
            n_documents=self.n_documents,
            n_words=self.n_words,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (paired with :meth:`from_dict`)."""
        return {
            "name": self.name,
            "n_users": self.n_users,
            "n_documents": self.n_documents,
            "n_words": self.n_words,
            "n_friendship_links": self.n_friendship_links,
            "n_diffusion_links": self.n_diffusion_links,
            "doc_user": self.doc_user.tolist(),
            "doc_timestamp": self.doc_timestamp.tolist(),
            "followers": self.followers.tolist(),
            "followees": self.followees.tolist(),
            "diffusions_made": self.diffusions_made.tolist(),
            "diffusions_received": self.diffusions_received.tolist(),
            "docs_per_user": self.docs_per_user.tolist(),
            "queries": [
                {
                    "term": query.term,
                    "word_id": query.word_id,
                    "frequency": query.frequency,
                    "relevant_users": query.relevant_users.tolist(),
                }
                for query in self.queries
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GraphSummary":
        """Rebuild a summary serialised by :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            n_users=int(payload["n_users"]),
            n_documents=int(payload["n_documents"]),
            n_words=int(payload["n_words"]),
            n_friendship_links=int(payload["n_friendship_links"]),
            n_diffusion_links=int(payload["n_diffusion_links"]),
            doc_user=np.asarray(payload["doc_user"], dtype=np.int64),
            doc_timestamp=np.asarray(payload["doc_timestamp"], dtype=np.int64),
            followers=np.asarray(payload["followers"], dtype=np.int64),
            followees=np.asarray(payload["followees"], dtype=np.int64),
            diffusions_made=np.asarray(payload["diffusions_made"], dtype=np.int64),
            diffusions_received=np.asarray(
                payload["diffusions_received"], dtype=np.int64
            ),
            docs_per_user=np.asarray(payload["docs_per_user"], dtype=np.int64),
            queries=[
                Query(
                    term=record["term"],
                    word_id=int(record["word_id"]),
                    frequency=int(record["frequency"]),
                    relevant_users=np.asarray(
                        record["relevant_users"], dtype=np.int64
                    ),
                )
                for record in payload.get("queries", [])
            ],
        )

"""A tiny LRU cache shared by the serving read paths.

One implementation for the three query-keyed memo tables — the store's
Eq. 19 rank cache and log-shift cache, and the shard router's merged-rank
cache — so eviction, recency-touch and hit/miss accounting cannot drift
between copies. The cache is internally locked: the serving gateway runs
backend calls on a thread pool, so concurrent ``get``/``put`` against one
cache is the normal case, not the exception.

**The ``cache_info()`` schema.** Every cache readout in the system —
``ProfileStore.cache_info``, ``ShardRouter.cache_info`` (top level and its
``"router"`` entry), and the per-shard breakdowns — serves the same core
keys:

``hits`` / ``misses``
    cumulative counters (they survive :meth:`LRUCache.clear`, the hot-swap
    invalidation contract);
``size`` / ``max_size``
    current and maximum entry counts;
``cache_id``
    an opaque process-local identity token for the underlying cache object.

Aggregators must go through :func:`merge_cache_infos`, which sums the
counter keys but **deduplicates by** ``cache_id`` — so if the same
underlying cache surfaces twice in one aggregation (a shard store re-wrapped
or re-listed after ``hot_swap_shard``, a store shared between two routing
tables), its traffic is counted once instead of inflating the totals.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, Iterable, Mapping, Optional, TypeVar

V = TypeVar("V")

#: the counter keys every ``cache_info()`` readout carries (and aggregations sum)
CACHE_INFO_KEYS = ("hits", "misses", "size", "max_size")


def merge_cache_infos(infos: Iterable[Mapping]) -> dict[str, int]:
    """Sum :data:`CACHE_INFO_KEYS` across readouts, once per distinct cache.

    Readouts carrying the same ``cache_id`` describe the same underlying
    cache object; only the first is counted. Readouts without a
    ``cache_id`` (foreign dicts) are always counted.
    """
    seen: set = set()
    totals = dict.fromkeys(CACHE_INFO_KEYS, 0)
    for info in infos:
        cache_id = info.get("cache_id")
        if cache_id is not None:
            if cache_id in seen:
                continue
            seen.add(cache_id)
        for key in CACHE_INFO_KEYS:
            totals[key] += int(info.get(key, 0))
    return totals


class LRUCache(Generic[V]):
    """Ordered-dict LRU with cumulative hit/miss counters.

    :meth:`clear` empties the entries but keeps the counters — the
    hot-swap invalidation contract (monitoring continuity across swaps).
    """

    def __init__(self, max_size: int) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self.max_size = max_size
        self._data: OrderedDict[Hashable, V] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> Optional[V]:
        """The cached value (counted as a hit and touched), else ``None``
        (counted as a miss)."""
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self.hits += 1
            self._data.move_to_end(key)
            return value

    def peek(self, key: Hashable) -> Optional[V]:
        """The cached value without touching recency or the counters.

        For double-checked fill paths: the first :meth:`get` already
        counted the logical miss, so the re-check under the build lock
        must not count a second one.
        """
        with self._lock:
            return self._data.get(key)

    def put(self, key: Hashable, value: V) -> None:
        """Insert ``key``, evicting the least-recently-used entry at capacity."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if len(self._data) > self.max_size:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry; cumulative counters survive."""
        with self._lock:
            self._data.clear()

    def info(self) -> dict[str, int]:
        """The counters dict every ``cache_info()`` readout serves.

        ``cache_id`` identifies this cache object within the process so
        aggregations (:func:`merge_cache_infos`) can deduplicate repeated
        readouts of the same cache.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._data),
                "max_size": self.max_size,
                "cache_id": id(self),
            }

"""A tiny LRU cache shared by the serving read paths.

One implementation for the three query-keyed memo tables — the store's
Eq. 19 rank cache and log-shift cache, and the shard router's merged-rank
cache — so eviction, recency-touch and hit/miss accounting cannot drift
between copies. Single-threaded, like everything else on the read path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

V = TypeVar("V")


class LRUCache(Generic[V]):
    """Ordered-dict LRU with cumulative hit/miss counters.

    :meth:`clear` empties the entries but keeps the counters — the
    hot-swap invalidation contract (monitoring continuity across swaps).
    """

    def __init__(self, max_size: int) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self.max_size = max_size
        self._data: OrderedDict[Hashable, V] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Optional[V]:
        """The cached value (counted as a hit and touched), else ``None``
        (counted as a miss)."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: V) -> None:
        """Insert ``key``, evicting the least-recently-used entry at capacity."""
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.max_size:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry; cumulative counters survive."""
        self._data.clear()

    def info(self) -> dict[str, int]:
        """The counters dict every ``cache_info()`` readout serves."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "max_size": self.max_size,
        }

"""Serving layer: the online read path over offline-fitted profiles.

The paper profiles communities once offline and then serves several
applications (Sect. 1). This package is that serving side:

* :class:`ProfileStore` — the facade every application reads through,
  wrapping a fitted result with memoised indexes and an LRU query cache;
* :class:`GraphSummary` — the graph statistics persisted into
  self-contained v2 artifacts so serving never reloads the graph;
* :func:`fold_in_documents` — frozen-model Gibbs assignment for documents
  that arrive after the offline fit.
"""

from .foldin import FoldInResult, fold_in_document, fold_in_documents
from .store import ProfileStore, ensure_store
from .summary import GraphSummary

__all__ = [
    "FoldInResult",
    "GraphSummary",
    "ProfileStore",
    "ensure_store",
    "fold_in_document",
    "fold_in_documents",
]

"""Latent Dirichlet Allocation with collapsed Gibbs sampling (Blei et al. [3]).

LDA is a substrate, not the contribution: the paper uses it (i) to build the
"first detect, then aggregate" baselines — Eq. 20 aggregates per-document
LDA topic mixtures into community content profiles — and (ii) to segment
users by dominant topic for the parallel scheduler (Sect. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..sampling.categorical import sample_categorical
from ..sampling.dirichlet import smoothed_probability
from ..sampling.rng import RngLike, ensure_rng


@dataclass
class LDAConfig:
    """Hyper-parameters; priors follow the Griffiths-Steyvers convention."""

    n_topics: int = 10
    alpha: Optional[float] = None
    beta: float = 0.1
    n_iterations: int = 50

    def resolved_alpha(self) -> float:
        """``alpha = 50 / |Z|`` unless set explicitly (paper Sect. 4.2 convention)."""
        return 50.0 / self.n_topics if self.alpha is None else self.alpha


class LDA:
    """Collapsed-Gibbs LDA over documents given as vocabulary-id arrays."""

    def __init__(self, config: LDAConfig, rng: RngLike = None) -> None:
        if config.n_topics < 1:
            raise ValueError("need at least one topic")
        self.config = config
        self.rng = ensure_rng(rng)
        self._fitted = False

    # ---------------------------------------------------------------- fitting

    def fit(self, documents: Sequence[np.ndarray], n_words: int) -> "LDA":
        """Run ``n_iterations`` Gibbs sweeps over ``documents``.

        Each word gets its own topic assignment (standard LDA; the
        single-topic-per-document restriction is specific to CPD).
        """
        n_topics = self.config.n_topics
        alpha = self.config.resolved_alpha()
        beta = self.config.beta
        if n_words < 1:
            raise ValueError("n_words must be positive")

        self._n_words = n_words
        self._documents = [np.asarray(doc, dtype=np.int64) for doc in documents]
        n_docs = len(self._documents)

        topic_word = np.zeros((n_topics, n_words), dtype=np.float64)
        doc_topic = np.zeros((n_docs, n_topics), dtype=np.float64)
        topic_totals = np.zeros(n_topics, dtype=np.float64)
        assignments: list[np.ndarray] = []

        for d, doc in enumerate(self._documents):
            doc_assignments = self.rng.integers(0, n_topics, size=len(doc))
            assignments.append(doc_assignments)
            for word, z in zip(doc, doc_assignments):
                topic_word[z, word] += 1
                doc_topic[d, z] += 1
                topic_totals[z] += 1

        for _ in range(self.config.n_iterations):
            for d, doc in enumerate(self._documents):
                doc_assignments = assignments[d]
                for position, word in enumerate(doc):
                    z_old = doc_assignments[position]
                    topic_word[z_old, word] -= 1
                    doc_topic[d, z_old] -= 1
                    topic_totals[z_old] -= 1

                    weights = (
                        (doc_topic[d] + alpha)
                        * (topic_word[:, word] + beta)
                        / (topic_totals + n_words * beta)
                    )
                    z_new = sample_categorical(weights, self.rng)

                    doc_assignments[position] = z_new
                    topic_word[z_new, word] += 1
                    doc_topic[d, z_new] += 1
                    topic_totals[z_new] += 1

        self._topic_word = topic_word
        self._doc_topic = doc_topic
        self._assignments = assignments
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("call fit() before reading model outputs")

    # ---------------------------------------------------------------- outputs

    @property
    def phi(self) -> np.ndarray:
        """Topic-word distributions, shape ``(n_topics, n_words)``."""
        self._require_fitted()
        return smoothed_probability(self._topic_word, self.config.beta)

    @property
    def doc_topic_distribution(self) -> np.ndarray:
        """Per-document topic mixtures ``theta*_d``, shape ``(n_docs, n_topics)``."""
        self._require_fitted()
        return smoothed_probability(self._doc_topic, self.config.resolved_alpha())

    def dominant_topics(self) -> np.ndarray:
        """Most frequent topic per document (parallel-scheduler segmentation)."""
        self._require_fitted()
        return np.argmax(self._doc_topic, axis=1)

    def dominant_topic_per_user(self, doc_user: np.ndarray, n_users: int) -> np.ndarray:
        """Each user's most frequently assigned topic across her documents.

        This is exactly the segmentation key of Sect. 4.3: users go to the
        segment of their dominant topic.
        """
        self._require_fitted()
        user_topic = np.zeros((n_users, self.config.n_topics), dtype=np.float64)
        for d, user in enumerate(doc_user):
            user_topic[user] += self._doc_topic[d]
        empty = user_topic.sum(axis=1) == 0
        user_topic[empty, 0] = 1.0
        return np.argmax(user_topic, axis=1)

    def infer_document(self, words: np.ndarray, n_sweeps: int = 20) -> np.ndarray:
        """Fold in a held-out document and return its topic mixture."""
        self._require_fitted()
        words = np.asarray(words, dtype=np.int64)
        n_topics = self.config.n_topics
        alpha = self.config.resolved_alpha()
        phi = self.phi
        counts = np.zeros(n_topics)
        assignments = self.rng.integers(0, n_topics, size=len(words))
        for z in assignments:
            counts[z] += 1
        for _ in range(n_sweeps):
            for position, word in enumerate(words):
                counts[assignments[position]] -= 1
                weights = (counts + alpha) * phi[:, word]
                z_new = sample_categorical(weights, self.rng)
                assignments[position] = z_new
                counts[z_new] += 1
        return smoothed_probability(counts, alpha)

    def perplexity(self, documents: Optional[Sequence[np.ndarray]] = None) -> float:
        """Corpus perplexity ``exp(-sum log p(w) / n_tokens)`` under the model."""
        self._require_fitted()
        phi = self.phi
        if documents is None:
            documents = self._documents
            mixtures = self.doc_topic_distribution
        else:
            documents = [np.asarray(doc, dtype=np.int64) for doc in documents]
            mixtures = np.stack([self.infer_document(doc) for doc in documents])
        log_likelihood = 0.0
        n_tokens = 0
        for mixture, doc in zip(mixtures, documents):
            if len(doc) == 0:
                continue
            word_probs = mixture @ phi[:, doc]
            log_likelihood += float(np.log(np.maximum(word_probs, 1e-300)).sum())
            n_tokens += len(doc)
        if n_tokens == 0:
            raise ValueError("cannot compute perplexity of an empty corpus")
        return float(np.exp(-log_likelihood / n_tokens))

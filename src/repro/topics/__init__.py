"""Topic-modeling substrate: collapsed-Gibbs LDA."""

from .lda import LDA, LDAConfig

__all__ = ["LDA", "LDAConfig"]

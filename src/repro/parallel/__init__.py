"""Parallel inference runtime (paper Sect. 4.3): segmentation, knapsack
workload balancing, and the zero-copy process-parallel E-step over a
shared-memory state plane."""

from .knapsack import Allocation, allocate_segments, solve_knapsack
from .plane import PlaneSpec, SharedStatePlane
from .runner import ParallelEStepRunner, ParallelStats, SerialSweeper
from .scheduler import (
    Schedule,
    WorkloadModel,
    build_schedule,
    measure_workload_model,
    partition_ranges,
)
from .segmentation import DataSegment, build_segments, segment_users_by_topic

__all__ = [
    "Allocation",
    "DataSegment",
    "ParallelEStepRunner",
    "ParallelStats",
    "PlaneSpec",
    "Schedule",
    "SerialSweeper",
    "SharedStatePlane",
    "WorkloadModel",
    "allocate_segments",
    "build_schedule",
    "build_segments",
    "measure_workload_model",
    "partition_ranges",
    "segment_users_by_topic",
    "solve_knapsack",
]

"""Parallel inference runtime (paper Sect. 4.3): segmentation, knapsack
workload balancing, and the process-parallel E-step."""

from .knapsack import Allocation, allocate_segments, solve_knapsack
from .runner import ParallelEStepRunner, ParallelStats, SerialSweeper
from .scheduler import (
    Schedule,
    WorkloadModel,
    build_schedule,
    measure_workload_model,
)
from .segmentation import DataSegment, build_segments, segment_users_by_topic

__all__ = [
    "Allocation",
    "DataSegment",
    "ParallelEStepRunner",
    "ParallelStats",
    "Schedule",
    "SerialSweeper",
    "WorkloadModel",
    "allocate_segments",
    "build_schedule",
    "build_segments",
    "measure_workload_model",
    "segment_users_by_topic",
    "solve_knapsack",
]

"""Shared-memory state plane for the zero-copy parallel E-step.

The plane owns two POSIX shared-memory blocks:

* **layout** — the immutable :class:`~repro.core.layout.CorpusLayout`
  arrays (word CSR, unique-word CSR, link lists, link incidence CSRs,
  pair features, kernel word layout), written once at construction;
* **state** — the mutable sampling state: assignment vectors, count
  matrices, the popularity table, augmentation variables, diffusion
  parameters, plus the per-worker result slots and partial-eta slabs.

The coordinator *adopts* its sampler's count arrays into the state block
(mutations then land in shared memory for free) and workers attach both
blocks zero-copy: their corpus layout is a family of views over the layout
block, and their per-sweep refresh is a handful of ``memcpy``\\ s out of the
state block — no pickling anywhere on the per-sweep path.

Lifetime: the creating process owns the blocks and must :meth:`close` the
plane (unlinking both blocks); workers attach with ``owner=False`` and only
close their mappings. A ``weakref.finalize`` guard unlinks owned blocks
even when ``close()`` is never reached (e.g. an exception unwinds the
runner), so no ``/dev/shm`` segments outlive the process. Unlinking is
done first and tolerates outstanding numpy views: POSIX keeps the pages
alive until the last mapping drops, while the name disappears immediately.
"""

from __future__ import annotations

import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..core.config import CPDConfig
from ..core.layout import CorpusLayout

#: alignment of every array inside a block (cache-line friendly)
_ALIGN = 64


def _pack_specs(
    shapes: dict[str, tuple[tuple[int, ...], np.dtype]],
) -> tuple[int, dict[str, tuple[int, tuple[int, ...], str]]]:
    """Assign aligned offsets; returns (total bytes, name -> (offset, shape, dtype))."""
    offset = 0
    specs: dict[str, tuple[int, tuple[int, ...], str]] = {}
    for name, (shape, dtype) in shapes.items():
        dtype = np.dtype(dtype)
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        specs[name] = (offset, tuple(int(s) for s in shape), dtype.str)
        offset += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    return max(offset, 1), specs


def _map_arrays(
    block: shared_memory.SharedMemory,
    specs: dict[str, tuple[int, tuple[int, ...], str]],
) -> dict[str, np.ndarray]:
    """Numpy views over one block, per the offset table."""
    return {
        name: np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf, offset=offset)
        for name, (offset, shape, dtype) in specs.items()
    }


def _unlink_blocks(blocks: list[shared_memory.SharedMemory]) -> None:
    """Unlink without unmapping — the ``weakref.finalize`` safety net.

    Unlinking removes the ``/dev/shm`` name (and the resource-tracker
    registration) immediately; POSIX keeps the pages alive until the last
    mapping drops. The mappings are deliberately *not* closed here: numpy
    releases its buffer exports eagerly, so ``SharedMemory.close()`` can
    unmap while views are still referenced and every later read would be a
    use-after-unmap. Explicit :meth:`SharedStatePlane.close` does unmap,
    after callers have dropped (or privatised, see
    ``ParallelEStepRunner.close``) every view.
    """
    for block in blocks:
        try:
            block.unlink()
        except FileNotFoundError:
            pass


def _close_blocks(blocks: list[shared_memory.SharedMemory], owner: bool) -> None:
    """Unlink (owner only) and unmap; callers guarantee no views remain."""
    if owner:
        _unlink_blocks(blocks)
    for block in blocks:
        try:
            block.close()
        except BufferError:  # pragma: no cover - a view escaped; keep mapped
            pass


@dataclass(frozen=True)
class PlaneSpec:
    """Picklable attach handle: block names, offset tables, dimensions."""

    layout_block: str
    state_block: str
    layout_specs: dict[str, tuple[int, tuple[int, ...], str]]
    state_specs: dict[str, tuple[int, tuple[int, ...], str]]
    n_users: int
    n_docs: int
    n_words: int


class SharedStatePlane:
    """Owner/attachment view over the two shared blocks (see module doc)."""

    #: state arrays mirroring ``CPDState.SHARED_FIELDS`` plus the sampler's
    #: augmentation/parameter arrays and the per-worker communication slots
    def __init__(
        self,
        layout: CorpusLayout,
        config: CPDConfig,
        n_workers: int,
        n_time_buckets: int,
        n_features: int,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        arrays = layout.arrays()
        layout_shapes = {
            name: (array.shape, array.dtype) for name, array in arrays.items()
        }
        layout_bytes, layout_specs = _pack_specs(layout_shapes)

        n_c, n_z = config.n_communities, config.n_topics
        n_u, n_d, n_w = layout.n_users, layout.n_docs, layout.n_words
        n_f, n_e = layout.n_friend_links, layout.n_diff_links
        state_shapes: dict[str, tuple[tuple[int, ...], np.dtype]] = {
            "doc_community": ((n_d,), np.dtype(np.int64)),
            "doc_topic": ((n_d,), np.dtype(np.int64)),
            "user_community": ((n_u, n_c), np.dtype(np.float64)),
            "community_topic": ((n_c, n_z), np.dtype(np.float64)),
            "topic_word": ((n_z, n_w), np.dtype(np.float64)),
            "user_totals": ((n_u,), np.dtype(np.float64)),
            "community_totals": ((n_c,), np.dtype(np.float64)),
            "topic_totals": ((n_z,), np.dtype(np.float64)),
            "popularity": ((n_time_buckets, n_z), np.dtype(np.float64)),
            "lambdas": ((n_f,), np.dtype(np.float64)),
            "deltas": ((n_e,), np.dtype(np.float64)),
            "eta": ((n_c, n_c, n_z), np.dtype(np.float64)),
            "nu": ((n_features,), np.dtype(np.float64)),
            "scalars": ((3,), np.dtype(np.float64)),
            "result_community": ((n_d,), np.dtype(np.int64)),
            "result_topic": ((n_d,), np.dtype(np.int64)),
            "eta_partial": ((n_workers, n_c, n_c, n_z), np.dtype(np.float64)),
        }
        state_bytes, state_specs = _pack_specs(state_shapes)

        token = secrets.token_hex(4)
        self._owner = True
        self._closed = False
        self._blocks: list[shared_memory.SharedMemory] = []
        self._finalizer: weakref.finalize | None = None
        try:
            layout_block = shared_memory.SharedMemory(
                name=f"repro-plane-{token}-layout", create=True, size=layout_bytes
            )
            self._blocks.append(layout_block)
            state_block = shared_memory.SharedMemory(
                name=f"repro-plane-{token}-state", create=True, size=state_bytes
            )
            self._blocks.append(state_block)
        except Exception:
            _close_blocks(self._blocks, owner=True)
            raise
        self._finalizer = weakref.finalize(self, _unlink_blocks, list(self._blocks))

        self.spec = PlaneSpec(
            layout_block=layout_block.name,
            state_block=state_block.name,
            layout_specs=layout_specs,
            state_specs=state_specs,
            n_users=n_u,
            n_docs=n_d,
            n_words=n_w,
        )
        self.layout_arrays = _map_arrays(layout_block, layout_specs)
        for name, source in arrays.items():
            np.copyto(self.layout_arrays[name], source)
        self.state = _map_arrays(state_block, state_specs)
        for array in self.state.values():
            array.fill(0)

    # ------------------------------------------------------------ attachment

    @classmethod
    def attach(cls, spec: PlaneSpec) -> "SharedStatePlane":
        """Worker-side zero-copy attachment (no unlink rights)."""
        plane = cls.__new__(cls)
        plane._owner = False
        plane._closed = False
        plane._blocks = []
        plane._finalizer = None
        layout_block = shared_memory.SharedMemory(name=spec.layout_block)
        plane._blocks.append(layout_block)
        try:
            state_block = shared_memory.SharedMemory(name=spec.state_block)
        except Exception:
            _close_blocks(plane._blocks, owner=False)
            raise
        plane._blocks.append(state_block)
        plane.spec = spec
        plane.layout_arrays = _map_arrays(layout_block, spec.layout_specs)
        plane.state = _map_arrays(state_block, spec.state_specs)
        return plane

    def corpus_layout(self) -> CorpusLayout:
        """The shared immutable arrays as a :class:`CorpusLayout` of views."""
        return CorpusLayout(
            n_users=self.spec.n_users,
            n_docs=self.spec.n_docs,
            n_words=self.spec.n_words,
            **self.layout_arrays,
        )

    # ------------------------------------------------------------ dimensions

    @property
    def n_docs(self) -> int:
        return self.spec.n_docs

    @property
    def n_friend_links(self) -> int:
        return int(self.state["lambdas"].shape[0])

    @property
    def n_diff_links(self) -> int:
        return int(self.state["deltas"].shape[0])

    @property
    def n_time_buckets(self) -> int:
        return int(self.state["popularity"].shape[0])

    @property
    def block_names(self) -> tuple[str, str]:
        return (self.spec.layout_block, self.spec.state_block)

    # -------------------------------------------------------------- lifetime

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release mappings; the owner also unlinks both blocks. Idempotent.

        Callers must have dropped every numpy view over the blocks first
        (the runner privatises its sampler's adopted arrays before closing)
        — numpy's eager buffer-export release means outstanding views
        cannot be detected here.
        """
        if self._closed:
            return
        self._closed = True
        self.layout_arrays = {}
        self.state = {}
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _close_blocks(self._blocks, owner=self._owner)
        self._blocks = []

    def __enter__(self) -> "SharedStatePlane":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

"""Process-parallel E-step (paper Sect. 4.3).

The paper multithreads the Gibbs E-step in C++; CPython threads cannot run
sampling loops concurrently under the GIL, so this runner uses *processes*
with the same algorithmic structure (documented substitution, DESIGN.md §3):

1. segment users by dominant LDA topic,
2. estimate per-segment workloads and knapsack-allocate them to workers,
3. every iteration, ship the current assignment snapshot to the workers;
   each worker sweeps only its own segments against the snapshot (the
   "little inter-dependency" approximation the paper relies on) and sends
   its new assignments back to be merged.

Workers build their sampler once (process initialiser) and reload only the
small snapshot arrays per iteration. Per-iteration reloads are array-native
end to end: snapshot counts rebuild by bincount
(:meth:`repro.core.state.CPDState.load_assignments`), worker sweeps run the
vectorized kernel selected by ``CPDConfig.sweep_kernel``, and merged results
apply as one batched count move (:meth:`CPDSampler.apply_assignments`).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass

import numpy as np

from ..core.config import CPDConfig
from ..core.gibbs import CPDSampler
from ..core.parameters import DiffusionParameters
from ..graph.social_graph import SocialGraph
from ..sampling.rng import RngLike, ensure_rng
from .scheduler import Schedule, build_schedule, measure_workload_model
from .segmentation import segment_users_by_topic

_WORKER_SAMPLER: CPDSampler | None = None


def _init_worker(graph: SocialGraph, config: CPDConfig) -> None:
    """Build the per-process sampler once (heavy structures, no state)."""
    global _WORKER_SAMPLER
    params = DiffusionParameters.initial(config.n_communities, config.n_topics)
    _WORKER_SAMPLER = CPDSampler(graph, config, params, rng=0)


def _sweep_task(payload: dict) -> dict:
    """Sweep one worker's documents against the shipped snapshot."""
    sampler = _WORKER_SAMPLER
    if sampler is None:
        raise RuntimeError("worker initialiser did not run")
    sampler.load_snapshot(payload["snapshot"])
    params = payload["params"]
    sampler.params = DiffusionParameters(
        eta=params["eta"],
        comm_weight=params["comm_weight"],
        pop_weight=params["pop_weight"],
        nu=params["nu"],
        bias=params["bias"],
    )
    sampler.rng = np.random.default_rng(payload["seed"])
    doc_ids = payload["doc_ids"]
    started = time.perf_counter()
    sampler.sweep_documents(doc_ids)
    elapsed = time.perf_counter() - started
    return {
        "doc_ids": doc_ids,
        "communities": sampler.state.doc_community[doc_ids].copy(),
        "topics": sampler.state.doc_topic[doc_ids].copy(),
        "seconds": elapsed,
        "worker": payload["worker"],
    }


@dataclass
class ParallelStats:
    """Observed per-worker E-step seconds, accumulated across iterations."""

    worker_seconds: np.ndarray
    iterations: int = 0

    def mean_worker_seconds(self) -> np.ndarray:
        if self.iterations == 0:
            return self.worker_seconds
        return self.worker_seconds / self.iterations


class ParallelEStepRunner:
    """Drives the document sweep of Alg. 1 across a process pool.

    Usable as the ``document_sweeper`` hook of
    :class:`repro.core.model.FitOptions`, so ``CPDModel.fit`` is unchanged.
    Always ``close()`` (or use as a context manager) to release the pool.
    """

    def __init__(
        self,
        graph: SocialGraph,
        config: CPDConfig,
        n_workers: int,
        n_segments: int | None = None,
        rng: RngLike = None,
        segmentation_lda_iterations: int = 15,
        sweep_kernel: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if sweep_kernel is not None:
            config = config.with_overrides(sweep_kernel=sweep_kernel)
        self.graph = graph
        self.config = config
        self.n_workers = n_workers
        self.rng = ensure_rng(rng)

        n_segments = n_segments or config.n_topics
        self.segments = segment_users_by_topic(
            graph, n_segments, lda_iterations=segmentation_lda_iterations, rng=self.rng
        )
        calibration_sampler = CPDSampler(
            graph,
            config,
            DiffusionParameters.initial(config.n_communities, config.n_topics),
            rng=self.rng,
        )
        self.workload_model = measure_workload_model(calibration_sampler)
        self.schedule: Schedule = build_schedule(
            self.segments, self.workload_model, n_workers
        )
        self.stats = ParallelStats(worker_seconds=np.zeros(n_workers))

        context = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
        self._pool = context.Pool(
            processes=n_workers, initializer=_init_worker, initargs=(graph, config)
        )

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelEStepRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------- execution

    def __call__(self, sampler: CPDSampler) -> None:
        """Replace ``sampler.sweep_documents()`` with a parallel sweep."""
        if self._pool is None:
            raise RuntimeError("runner is closed")
        snapshot = sampler.export_snapshot()
        params = sampler.params
        payloads = []
        for worker in range(self.n_workers):
            doc_ids = self.schedule.worker_doc_ids(worker)
            if len(doc_ids) == 0:
                continue
            payloads.append(
                {
                    "snapshot": snapshot,
                    "params": {
                        "eta": params.eta,
                        "comm_weight": params.comm_weight,
                        "pop_weight": params.pop_weight,
                        "nu": params.nu,
                        "bias": params.bias,
                    },
                    "doc_ids": doc_ids,
                    "seed": int(self.rng.integers(0, 2**63 - 1)),
                    "worker": worker,
                }
            )
        results = self._pool.map(_sweep_task, payloads)
        for result in results:
            sampler.apply_assignments(
                result["doc_ids"], result["communities"], result["topics"]
            )
            self.stats.worker_seconds[result["worker"]] += result["seconds"]
        self.stats.iterations += 1


class SerialSweeper:
    """Drop-in serial counterpart recording the same timing stats."""

    def __init__(self) -> None:
        self.stats = ParallelStats(worker_seconds=np.zeros(1))

    def __call__(self, sampler: CPDSampler) -> None:
        started = time.perf_counter()
        sampler.sweep_documents()
        self.stats.worker_seconds[0] += time.perf_counter() - started
        self.stats.iterations += 1

"""Process-parallel E-step over a shared-memory state plane (Sect. 4.3).

The paper multithreads the Gibbs E-step in C++; CPython threads cannot run
sampling loops concurrently under the GIL, so this runner uses *processes*
with the same algorithmic structure (documented substitution, DESIGN.md §3,
§7):

1. segment users by dominant LDA topic,
2. estimate per-segment workloads and knapsack-allocate them to workers,
3. every iteration the workers sweep their own segments against the shared
   state (the "little inter-dependency" approximation the paper relies on)
   and the coordinator merges the results.

Unlike the PR-3 runner — which re-pickled the full sampler snapshot once
per worker on every sweep — all bulk data now lives in a
:class:`~repro.parallel.plane.SharedStatePlane`:

* the immutable corpus/CSR layout is posted into shared memory **once** at
  construction; workers are **persistent processes** that attach zero-copy
  and keep a warm :class:`~repro.core.gibbs.CPDSampler` (and its
  vectorized kernel) alive across sweeps;
* per sweep the coordinator publishes the mutable state (a no-op for the
  count matrices, which it *adopts* into the plane) and ships each worker
  only a tiny pickled **delta header** — state version, RNG seed, and the
  dirty-document subset when one is given;
* workers write their results (communities, topics) into per-document
  slots of the plane and answer with a tiny ack, so the per-sweep IPC
  volume is O(workers), not O(corpus);
* the per-link Pólya-Gamma draws (``sample_lambdas`` / ``sample_deltas``)
  and the eta scatter-adds are **fused into the workers** over disjoint
  contiguous link ranges, shrinking the coordinator's serial section to
  the M-step logistic fit. ``CPDModel.fit`` and
  ``IncrementalRefresher.refresh`` detect this through the
  ``fused_augmentation`` attribute and skip their serial draws.

Documents or links appended to the coordinator's sampler *after* plane
construction (the streaming path) are handled by the coordinator itself:
overflow documents are swept serially after the merge and overflow links
redrawn serially, while workers keep serving the fixed-size plane.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core import _compiled
from ..core.config import CPDConfig
from ..core.gibbs import CPDSampler
from ..core.layout import CorpusLayout
from ..core.parameters import DiffusionParameters
from ..core.state import CPDState
from ..graph.social_graph import SocialGraph
from ..sampling.rng import RngLike, ensure_rng
from .plane import PlaneSpec, SharedStatePlane
from .scheduler import Schedule, build_schedule, measure_workload_model, partition_ranges
from .segmentation import segment_users_by_topic

#: worker-construction handshake timeout (seconds)
_READY_TIMEOUT = 120.0


def _fault_firing(point: str, **context):
    """Consult the active fault plan, if any (lazy import: no cycle)."""
    from ..resilience import faults

    return faults.firing(point, **context)


@dataclass
class ParallelStats:
    """Observed per-worker E-step seconds and IPC volume across iterations."""

    worker_seconds: np.ndarray
    iterations: int = 0
    #: pickled coordinator->worker delta-header bytes, cumulative
    header_bytes: int = 0
    #: pickled worker->coordinator ack bytes, cumulative
    ack_bytes: int = 0
    #: dead workers respawned by the self-healing path
    worker_restarts: int = 0
    #: sweeps where at least one partition fell back to the serial path
    degraded_sweeps: int = 0

    def mean_worker_seconds(self) -> np.ndarray:
        if self.iterations == 0:
            return self.worker_seconds
        return self.worker_seconds / self.iterations

    def payload_bytes_per_sweep(self) -> float:
        """Mean coordinator->worker bytes shipped per sweep (headers only —
        all bulk state crosses through the shared-memory plane)."""
        if self.iterations == 0:
            return 0.0
        return self.header_bytes / self.iterations


# --------------------------------------------------------------------- worker


def _refresh_from_plane(
    sampler: CPDSampler, state_arrays: dict[str, np.ndarray], seed: int
) -> None:
    """Synchronise a worker's warm sampler with the published plane state.

    Pure ``memcpy``\\ s into the worker's private mutable arrays; the
    augmentation/parameter arrays are fresh copies so the kernel's
    identity-keyed caches notice the new iteration.
    """
    state = sampler.state
    for name in CPDState.SHARED_FIELDS:
        np.copyto(getattr(state, name), state_arrays[name])
    state.n_unassigned = int(np.count_nonzero(state.doc_topic < 0))
    state._drop_caches()
    sampler.popularity.load_counts(state_arrays["popularity"])
    sampler.lambdas = state_arrays["lambdas"].copy()
    sampler.deltas = state_arrays["deltas"].copy()
    params = sampler.params
    params.eta = state_arrays["eta"].copy()
    params.nu = state_arrays["nu"].copy()
    scalars = state_arrays["scalars"]
    params.comm_weight = float(scalars[0])
    params.pop_weight = float(scalars[1])
    params.bias = float(scalars[2])
    sampler.rng = np.random.default_rng(seed)


def _worker_main(
    conn,
    spec: PlaneSpec,
    config: CPDConfig,
    worker: int,
    doc_ids: np.ndarray,
    f_range: tuple[int, int],
    e_range: tuple[int, int],
) -> None:
    """Persistent worker loop: attach once, then serve delta headers."""
    plane = None
    # a fork inherits the coordinator's live registry/sink contents; start
    # from zero so the per-sweep telemetry shipped back is a true delta
    obs.worker_reset()
    try:
        plane = SharedStatePlane.attach(spec)
        state_arrays = plane.state
        params = DiffusionParameters.initial(
            config.n_communities, config.n_topics, n_features=int(state_arrays["nu"].shape[0])
        )
        sampler = CPDSampler(
            None,
            config,
            params,
            rng=0,
            layout=plane.corpus_layout(),
            initialize_assignments=False,
        )
        conn.send({"status": "ready", "worker": worker})
        f_start, f_stop = f_range
        e_start, e_stop = e_range
        while True:
            header = pickle.loads(conn.recv_bytes())
            if header is None:
                break
            _refresh_from_plane(sampler, state_arrays, header["seed"])
            ids = header["doc_ids"]
            ids = doc_ids if ids is None else np.asarray(ids, dtype=np.int64)
            started = time.perf_counter()
            with obs.remote_span(
                "parallel.worker_sweep",
                header.get("trace"),
                tags={"worker": worker},
            ):
                sampler.sweep_documents(ids)
                doc_state = sampler.state
                state_arrays["result_community"][ids] = doc_state.doc_community[ids]
                state_arrays["result_topic"][ids] = doc_state.doc_topic[ids]
                if header["fused"]:
                    pg_started = time.perf_counter()
                    if f_stop > f_start and config.model_friendship:
                        state_arrays["lambdas"][f_start:f_stop] = sampler.draw_lambda_range(
                            f_start, f_stop
                        )
                    if e_stop > e_start and config.model_diffusion:
                        state_arrays["deltas"][e_start:e_stop] = sampler.draw_delta_range(
                            e_start, e_stop
                        )
                    if sampler.uses_profile_diffusion:
                        slab = state_arrays["eta_partial"][worker]
                        slab.fill(0.0)
                        sampler.eta_counts_range(e_start, e_stop, out=slab)
                    registry = obs.get_registry()
                    if registry.enabled:
                        registry.histogram(
                            "repro_pg_augmentation_seconds",
                            {"worker": str(worker)},
                        ).observe(time.perf_counter() - pg_started)
            ack = {
                "worker": worker,
                "seconds": time.perf_counter() - started,
                "n_docs": int(len(ids)),
            }
            if obs.telemetry_enabled():
                # drained deltas: the coordinator merges/ingests them, so
                # worker-side sweep metrics and spans land in one registry
                ack["telemetry"] = {
                    "metrics": obs.get_registry().drain(),
                    "spans": obs.get_sink().drain(),
                }
            conn.send(ack)
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        if plane is not None:
            plane.close()
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------- coordinator


class ParallelEStepRunner:
    """Drives the document sweep of Alg. 1 across persistent workers.

    Usable as the ``document_sweeper`` hook of
    :class:`repro.core.model.FitOptions` (so ``CPDModel.fit`` is unchanged)
    and of :class:`repro.stream.refresh.IncrementalRefresher` (dirty-subset
    sweeps). Always ``close()`` (or use as a context manager) to shut the
    workers down and unlink the shared-memory blocks.
    """

    def __init__(
        self,
        graph: SocialGraph,
        config: CPDConfig,
        n_workers: int,
        n_segments: int | None = None,
        rng: RngLike = None,
        segmentation_lda_iterations: int = 15,
        sweep_kernel: str | None = None,
        fuse_augmentation: bool = True,
        self_heal: bool = True,
        worker_timeout: float | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if worker_timeout is not None and worker_timeout <= 0:
            raise ValueError("worker_timeout must be positive")
        if sweep_kernel is not None:
            config = config.with_overrides(sweep_kernel=sweep_kernel)
        #: the kernel workers actually run (compiled may fall back)
        self.worker_sweep_kernel = config.sweep_kernel
        if config.sweep_kernel == "compiled":
            # warm the shared-object cache once in the coordinator so forked
            # workers map the cached library instead of racing the compiler
            available, _reason = _compiled.backend_status()
            if not available:
                self.worker_sweep_kernel = "vectorized"
        self.graph = graph
        self.config = config
        self.n_workers = n_workers
        self.rng = ensure_rng(rng)
        self.fuse_augmentation = fuse_augmentation
        #: heal dead workers (serial fallback + respawn) instead of raising
        self.self_heal = self_heal
        #: seconds to wait for a sweep ack before declaring the worker hung
        #: (``None`` waits forever; healthy compute may legitimately be slow)
        self.worker_timeout = worker_timeout
        self.stats = ParallelStats(worker_seconds=np.zeros(n_workers))
        self._closed = False
        self._version = 0
        self._adopted_sampler: CPDSampler | None = None
        self._fused_eta: np.ndarray | None = None
        self.plane: SharedStatePlane | None = None
        self._processes: list = []
        self._conns: list = []

        try:
            n_segments = n_segments or config.n_topics
            self.segments = segment_users_by_topic(
                graph, n_segments, lda_iterations=segmentation_lda_iterations, rng=self.rng
            )
            calibration_sampler = CPDSampler(
                graph,
                config,
                DiffusionParameters.initial(config.n_communities, config.n_topics),
                rng=self.rng,
            )
            self.workload_model = measure_workload_model(calibration_sampler)
            self.schedule: Schedule = build_schedule(
                self.segments, self.workload_model, n_workers
            )
            self._worker_docs = [
                np.sort(self.schedule.worker_doc_ids(worker))
                for worker in range(n_workers)
            ]
            self._f_ranges = partition_ranges(calibration_sampler.n_friend_links, n_workers)
            self._e_ranges = partition_ranges(calibration_sampler.n_diff_links, n_workers)

            layout = CorpusLayout.from_sampler(calibration_sampler)
            self.plane = SharedStatePlane(
                layout,
                config,
                n_workers=n_workers,
                n_time_buckets=calibration_sampler.popularity.n_time_buckets,
                n_features=int(len(calibration_sampler.params.nu)),
            )
            self._spawn_workers()
        except Exception:
            self.close()
            raise

    def _start_worker(self, worker: int):
        """Launch one worker process; returns ``(process, parent_conn)``."""
        methods = mp.get_all_start_methods()
        context = mp.get_context("fork" if "fork" in methods else None)
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.plane.spec,
                self.config,
                worker,
                self._worker_docs[worker],
                self._f_ranges[worker],
                self._e_ranges[worker],
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    def _await_ready(self, worker: int, conn) -> None:
        """Block until one worker's attach-handshake arrives."""
        deadline = time.monotonic() + _READY_TIMEOUT
        while not conn.poll(0.5):
            if not self._processes[worker].is_alive():
                raise RuntimeError(
                    f"worker {worker} died during start-up (exit code "
                    f"{self._processes[worker].exitcode}); see its stderr"
                )
            if time.monotonic() > deadline:
                raise RuntimeError(f"worker {worker} did not come up")
        ready = self._recv(worker, conn, "start-up")
        if not (isinstance(ready, dict) and ready.get("status") == "ready"):
            raise RuntimeError(f"worker {worker} failed to initialise: {ready!r}")

    def _spawn_workers(self) -> None:
        """Start the persistent worker processes and await their handshakes."""
        for worker in range(self.n_workers):
            process, conn = self._start_worker(worker)
            self._processes.append(process)
            self._conns.append(conn)
        for worker, conn in enumerate(self._conns):
            self._await_ready(worker, conn)

    def _respawn_worker(self, worker: int) -> None:
        """Replace a dead worker: fresh process, re-attached to the plane.

        The plane's immutable layout block is still mapped, so the
        replacement attaches exactly like the original did at construction
        and is sweep-ready once its handshake lands.
        """
        old = self._processes[worker]
        if old.is_alive():
            old.terminate()
        old.join(timeout=10)
        try:
            self._conns[worker].close()
        except OSError:
            pass
        process, conn = self._start_worker(worker)
        self._processes[worker] = process
        self._conns[worker] = conn
        self._await_ready(worker, conn)
        self.stats.worker_restarts += 1

    def _recv(self, worker: int, conn, stage: str):
        """``conn.recv()`` with a diagnosable error when the worker died."""
        try:
            return conn.recv()
        except EOFError as error:
            exitcode = self._processes[worker].exitcode
            raise RuntimeError(
                f"worker {worker} closed its pipe during {stage} (exit code "
                f"{exitcode}); see the worker's stderr for the traceback"
            ) from error

    # ------------------------------------------------------------ lifecycle

    def _unadopt(self) -> None:
        """Give the adopted sampler private copies of its shared arrays.

        Must run before the plane unmaps: numpy releases buffer exports
        eagerly, so a view into a closed block is a use-after-unmap, not an
        error. After this the sampler is fully self-contained again and
        outlives the runner.
        """
        sampler = self._adopted_sampler
        if sampler is None or self.plane is None or self.plane.closed:
            self._adopted_sampler = None
            return
        state_arrays = self.plane.state
        state = sampler.state
        for name in CPDState.SHARED_FIELDS:
            current = getattr(state, name)
            if state_arrays and current is state_arrays.get(name):
                setattr(state, name, current.copy())
        state._drop_caches()
        table = sampler.popularity
        if state_arrays and table._counts is state_arrays.get("popularity"):
            table.adopt_buffer(np.empty_like(table._counts))  # back to private
        self._adopted_sampler = None

    def close(self) -> None:
        """Shut workers down, release pipes, unlink the shared blocks.

        The adopted sampler (if any) gets private copies of its arrays
        first, so it stays fully usable after the runner is gone.
        """
        if self._closed:
            return
        self._closed = True
        self._unadopt()
        shutdown = pickle.dumps(None)
        for conn in self._conns:
            try:
                conn.send_bytes(shutdown)
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=10)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._conns = []
        self._processes = []
        if self.plane is not None:
            self.plane.close()

    def __enter__(self) -> "ParallelEStepRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------- publish

    def _ensure_adopted(self, sampler: CPDSampler) -> None:
        """Adopt the sampler's mutable arrays into the plane (first call).

        After adoption the coordinator's count updates land directly in
        shared memory, so the per-sweep publish degenerates to identity
        checks. Arrays whose shapes no longer match the plane (possible
        when the sampler grew via streaming appends before first use) stay
        private and are prefix-copied by :meth:`_publish` instead.

        A previously adopted sampler is privatised first — its views alias
        the very buffers the new sampler is copied into, so without the
        hand-back its state would silently mutate (and dangle once the
        plane unmaps).
        """
        if sampler is self._adopted_sampler:
            return
        if self._adopted_sampler is not None:
            self._unadopt()
        state_arrays = self.plane.state
        buffers = {}
        for name in CPDState.SHARED_FIELDS:
            shared = state_arrays[name]
            current = getattr(sampler.state, name)
            if current.shape == shared.shape and current.dtype == shared.dtype:
                buffers[name] = shared
        sampler.state.adopt_buffers(buffers)
        table = sampler.popularity
        if table._counts.shape == state_arrays["popularity"].shape:
            table.adopt_buffer(state_arrays["popularity"])
        self._adopted_sampler = sampler

    def _publish(self, sampler: CPDSampler) -> None:
        """Bring the plane's mutable block up to date with the sampler.

        Adopted arrays are already in place (identity check); detached or
        grown arrays are prefix-copied down to plane size. The
        augmentation variables and diffusion parameters are small and
        rebound every iteration, so they are always copied.
        """
        plane = self.plane
        state_arrays = plane.state
        state = sampler.state
        for name in CPDState.SHARED_FIELDS:
            shared = state_arrays[name]
            current = getattr(state, name)
            if current is shared:
                continue
            if current.shape == shared.shape:
                np.copyto(shared, current)
            else:  # grown by streaming appends: publish the plane-sized prefix
                np.copyto(shared, current[: shared.shape[0]])
        counts = sampler.popularity._counts
        shared_popularity = state_arrays["popularity"]
        if counts is not shared_popularity:
            np.copyto(shared_popularity, counts[: shared_popularity.shape[0]])
        np.copyto(state_arrays["lambdas"], sampler.lambdas[: plane.n_friend_links])
        np.copyto(state_arrays["deltas"], sampler.deltas[: plane.n_diff_links])
        params = sampler.params
        np.copyto(state_arrays["eta"], params.eta)
        np.copyto(state_arrays["nu"], params.nu)
        state_arrays["scalars"][:] = (params.comm_weight, params.pop_weight, params.bias)

    # ------------------------------------------------------------- execution

    @property
    def fused_augmentation(self) -> bool:
        """True when the runner's workers own the per-link PG draws and the
        eta scatter-adds (``CPDModel`` / ``IncrementalRefresher`` then skip
        their serial versions)."""
        return self.fuse_augmentation

    def aggregated_eta(self) -> np.ndarray | None:
        """Eta re-estimated from the workers' fused partial counts.

        ``None`` until the first fused sweep (callers fall back to the
        serial :meth:`CPDSampler.aggregate_eta`).
        """
        return self._fused_eta

    def __call__(
        self,
        sampler: CPDSampler,
        doc_ids: np.ndarray | None = None,
        fuse: bool | None = None,
    ) -> None:
        """One parallel Gibbs sweep over ``doc_ids`` (default: every document).

        Publishes state, ships delta headers, merges worker results from
        the plane, then handles overflow documents/links (streaming
        appends beyond the plane) serially on the coordinator. ``fuse``
        overrides the runner-level ``fuse_augmentation`` for this sweep
        only — the streaming refresher passes ``False`` for all but its
        final sweep so the O(F + E) link draws run once per refresh, not
        once per sweep.

        With telemetry enabled the sweep opens a ``parallel.sweep`` span
        whose context rides each delta header; workers answer with their
        own span/metric deltas in the ack, so the coordinator's sink holds
        one connected tree per sweep spanning every process.
        """
        if self._closed:
            raise RuntimeError("runner is closed")
        with obs.span(
            "parallel.sweep", tags={"workers": self.n_workers}
        ) as sweep_span:
            self._sweep(sampler, doc_ids, fuse, sweep_span)

    def _sweep(
        self,
        sampler: CPDSampler,
        doc_ids: np.ndarray | None,
        fuse: bool | None,
        sweep_span,
    ) -> None:
        plane = self.plane
        self._ensure_adopted(sampler)
        self._publish(sampler)
        self._version += 1

        if doc_ids is None:
            # full sweep: workers cover the plane, the coordinator covers
            # any documents appended (streaming) after plane construction
            overflow = np.arange(plane.n_docs, sampler.state.n_docs, dtype=np.int64)
            subsets: list[np.ndarray | None] = [None] * self.n_workers
            merge_ids = self._worker_docs
        else:
            doc_ids = np.unique(np.asarray(doc_ids, dtype=np.int64))
            in_plane = doc_ids[doc_ids < plane.n_docs]
            overflow = doc_ids[doc_ids >= plane.n_docs]
            subsets = [
                np.intersect1d(share, in_plane, assume_unique=True)
                for share in self._worker_docs
            ]
            merge_ids = subsets

        fused = self.fuse_augmentation if fuse is None else (fuse and self.fuse_augmentation)
        registry = obs.get_registry()
        trace_context = obs.current_header()
        lost: list[int] = []
        for worker, conn in enumerate(self._conns):
            spec = _fault_firing("worker.kill", worker=worker)
            if spec is not None:
                # chaos: the worker process dies before (or while) serving
                # this sweep — detected below like any real crash
                self._processes[worker].terminate()
                self._processes[worker].join(timeout=10)
            header = pickle.dumps(
                {
                    "version": self._version,
                    "seed": int(self.rng.integers(0, 2**63 - 1)),
                    "doc_ids": subsets[worker],
                    "fused": fused,
                    "trace": trace_context,
                }
            )
            self.stats.header_bytes += len(header)
            if registry.enabled:
                registry.counter("repro_parallel_header_bytes_total").inc(
                    len(header)
                )
            try:
                conn.send_bytes(header)
            except (BrokenPipeError, OSError):
                self._mark_lost(worker, lost, "dispatch")
        for worker, conn in enumerate(self._conns):
            if worker in lost:
                continue
            ack = self._collect_ack(worker, conn, lost)
            if ack is None:
                continue
            telemetry = ack.pop("telemetry", None)
            if telemetry is not None and obs.telemetry_enabled():
                obs.get_registry().merge(telemetry["metrics"])
                obs.get_sink().ingest(telemetry["spans"])
            ack_bytes = len(pickle.dumps(ack))
            self.stats.ack_bytes += ack_bytes
            self.stats.worker_seconds[ack["worker"]] += ack["seconds"]
            if registry.enabled:
                registry.counter("repro_parallel_ack_bytes_total").inc(ack_bytes)
                registry.histogram(
                    "repro_parallel_worker_seconds",
                    {"worker": str(ack["worker"])},
                ).observe(ack["seconds"])

        state_arrays = plane.state
        for worker in range(self.n_workers):
            if worker in lost:
                continue
            ids = merge_ids[worker]
            if ids is None or len(ids) == 0:
                continue
            sampler.apply_assignments(
                ids,
                state_arrays["result_community"][ids].copy(),
                state_arrays["result_topic"][ids].copy(),
            )
        # serial fallback: the coordinator sweeps what the lost workers
        # owned (one degraded sweep), alongside the streaming overflow
        fallback = [
            merge_ids[worker] if merge_ids[worker] is not None
            else self._worker_docs[worker]
            for worker in lost
        ]
        serial_ids = [ids for ids in ([overflow] + fallback) if len(ids)]
        if serial_ids:
            sampler.sweep_documents(np.unique(np.concatenate(serial_ids)))

        if fused:
            for worker in lost:
                self._redraw_lost_ranges(sampler, worker)
            self._merge_fused(sampler)
        if lost:
            self.stats.degraded_sweeps += 1
            sweep_span.set_tag("degraded", True)
            sweep_span.set_tag("lost_workers", list(lost))
            if registry.enabled:
                registry.counter("repro_parallel_degraded_sweeps_total").inc()
                registry.counter("repro_parallel_worker_restarts_total").inc(
                    len(lost)
                )
            for worker in lost:
                self._respawn_worker(worker)
        self.stats.iterations += 1
        if registry.enabled:
            registry.counter("repro_parallel_sweeps_total").inc()

    def _mark_lost(self, worker: int, lost: list[int], stage: str) -> None:
        """Record a dead worker, or raise when self-healing is off."""
        if not self.self_heal:
            raise RuntimeError(
                f"worker {worker} died during {stage} (exit code "
                f"{self._processes[worker].exitcode}); see its stderr"
            )
        if worker not in lost:
            lost.append(worker)

    def _collect_ack(self, worker: int, conn, lost: list[int]):
        """One worker's sweep ack, or ``None`` after marking it lost.

        A worker is lost when its process died (pipe EOF / liveness check)
        or, with ``worker_timeout`` set, when its ack does not arrive in
        time — a hung worker is terminated before being declared lost, so
        it cannot scribble into the result slots the coordinator is about
        to re-sweep serially.
        """
        deadline = (
            time.monotonic() + self.worker_timeout
            if self.worker_timeout is not None
            else None
        )
        while not conn.poll(1.0):
            if not self._processes[worker].is_alive():
                self._mark_lost(worker, lost, "the sweep")
                return None
            if deadline is not None and time.monotonic() > deadline:
                self._processes[worker].terminate()
                self._processes[worker].join(timeout=10)
                self._mark_lost(worker, lost, "the sweep (timed out)")
                return None
        try:
            return self._recv(worker, conn, "the sweep")
        except RuntimeError:
            if not self.self_heal:
                raise
            self._mark_lost(worker, lost, "the sweep")
            return None

    def _redraw_lost_ranges(self, sampler: CPDSampler, worker: int) -> None:
        """Recompute a lost worker's fused plane slots on the coordinator.

        The dead worker never wrote this sweep's PG draws or partial eta
        counts — its ``lambdas``/``deltas`` ranges and ``eta_partial``
        slab hold last sweep's values — so before :meth:`_merge_fused`
        sums them, the coordinator redraws the ranges serially from its
        (already healed) sampler state.
        """
        state_arrays = self.plane.state
        config = self.config
        f_start, f_stop = self._f_ranges[worker]
        e_start, e_stop = self._e_ranges[worker]
        if f_stop > f_start and config.model_friendship:
            state_arrays["lambdas"][f_start:f_stop] = sampler.draw_lambda_range(
                f_start, f_stop
            )
        if e_stop > e_start and config.model_diffusion:
            state_arrays["deltas"][e_start:e_stop] = sampler.draw_delta_range(
                e_start, e_stop
            )
        if sampler.uses_profile_diffusion:
            slab = state_arrays["eta_partial"][worker]
            slab.fill(0.0)
            if e_stop > e_start:
                sampler.eta_counts_range(e_start, e_stop, out=slab)

    def _merge_fused(self, sampler: CPDSampler) -> None:
        """Collect the workers' PG draws and partial eta counts."""
        plane = self.plane
        state_arrays = plane.state
        config = self.config
        if config.model_friendship and sampler.n_friend_links:
            sampler.lambdas = state_arrays["lambdas"].copy()
        if config.model_diffusion and sampler.n_diff_links:
            deltas = state_arrays["deltas"].copy()
            if sampler.n_diff_links > plane.n_diff_links:  # appended links
                deltas = np.concatenate(
                    [
                        deltas,
                        sampler.draw_delta_range(plane.n_diff_links, sampler.n_diff_links),
                    ]
                )
            sampler.deltas = deltas
        if sampler.uses_profile_diffusion and sampler.n_diff_links:
            counts = state_arrays["eta_partial"].sum(axis=0) + config.eta_smoothing
            if sampler.n_diff_links > plane.n_diff_links:
                sampler.eta_counts_range(plane.n_diff_links, sampler.n_diff_links, out=counts)
            self._fused_eta = counts / counts.sum()


class SerialSweeper:
    """Drop-in serial counterpart recording the same timing stats."""

    def __init__(self) -> None:
        self.stats = ParallelStats(worker_seconds=np.zeros(1))

    def __call__(self, sampler: CPDSampler, doc_ids: np.ndarray | None = None) -> None:
        started = time.perf_counter()
        sampler.sweep_documents(doc_ids)
        self.stats.worker_seconds[0] += time.perf_counter() - started
        self.stats.iterations += 1

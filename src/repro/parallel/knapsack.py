"""0-1 knapsack segment allocation (paper Sect. 4.3, Eq. 17).

The paper distributes ``|Z|`` data segments over M threads by solving M
standard 0-1 knapsack problems: each thread greedily receives the subset of
remaining segments whose total workload is as close to ``O/M`` as possible
without exceeding it. An exact dynamic program (weights = values =
workloads, scaled to integers) solves each knapsack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def solve_knapsack(
    workloads: np.ndarray, capacity: float, resolution: int = 1000
) -> list[int]:
    """Indices of the workload subset maximising total <= ``capacity``.

    Classic subset-sum DP: workloads are scaled to ``resolution`` integer
    buckets relative to the capacity, so the table stays small regardless
    of the absolute time units.
    """
    workloads = np.asarray(workloads, dtype=np.float64)
    if np.any(workloads < 0):
        raise ValueError("workloads must be non-negative")
    if capacity <= 0 or workloads.size == 0:
        return []
    scale = resolution / capacity
    weights = np.minimum(
        np.ceil(workloads * scale).astype(np.int64), resolution + 1
    )
    weights = np.maximum(weights, 1)  # zero-cost items still occupy a slot

    # best[w] = max scaled load achievable with total scaled weight <= w
    best = np.full(resolution + 1, -1, dtype=np.int64)
    best[0] = 0
    taken = np.zeros((len(weights), resolution + 1), dtype=bool)
    for item, weight in enumerate(weights):
        weight = int(weight)
        for w in range(resolution, weight - 1, -1):
            candidate = best[w - weight] + weight
            if best[w - weight] >= 0 and candidate > best[w]:
                best[w] = candidate
                taken[item, w] = True
    target = int(np.argmax(best))
    if best[target] <= 0:
        return []
    chosen: list[int] = []
    w = target
    for item in range(len(weights) - 1, -1, -1):
        if taken[item, w]:
            chosen.append(item)
            w -= int(weights[item])
    chosen.reverse()
    return chosen


@dataclass(frozen=True)
class Allocation:
    """Segments assigned to each worker plus the estimated per-worker load."""

    assignments: list[list[int]]
    estimated_loads: np.ndarray

    @property
    def n_workers(self) -> int:
        return len(self.assignments)

    def imbalance(self) -> float:
        """Max/mean load ratio; 1.0 is perfectly balanced."""
        loads = self.estimated_loads
        positive = loads[loads > 0]
        if positive.size == 0:
            return 1.0
        return float(loads.max() / positive.mean())


def allocate_segments(workloads: np.ndarray, n_workers: int) -> Allocation:
    """Eq. 17: assign every segment to a worker, balancing total workload.

    Workers are filled one by one with a knapsack capped at ``O/M``; any
    residue (possible because knapsacks must not exceed capacity) is spread
    greedily onto the lightest workers.
    """
    workloads = np.asarray(workloads, dtype=np.float64)
    if n_workers < 1:
        raise ValueError("need at least one worker")
    total = float(workloads.sum())
    capacity = total / n_workers if total > 0 else 1.0
    remaining = list(range(len(workloads)))
    assignments: list[list[int]] = []
    for _worker in range(n_workers - 1):
        chosen_local = solve_knapsack(workloads[remaining], capacity)
        chosen = [remaining[i] for i in chosen_local]
        assignments.append(chosen)
        remaining = [i for i in remaining if i not in set(chosen)]
    assignments.append(list(remaining))

    loads = np.asarray(
        [float(workloads[segment_ids].sum()) for segment_ids in assignments]
    )
    # greedy rebalance of stragglers: move the smallest segment of the
    # heaviest worker to the lightest worker while it helps
    improved = True
    while improved:
        improved = False
        heavy = int(np.argmax(loads))
        light = int(np.argmin(loads))
        if heavy == light or not assignments[heavy]:
            break
        candidates = sorted(assignments[heavy], key=lambda i: workloads[i])
        for segment in candidates:
            new_heavy = loads[heavy] - workloads[segment]
            new_light = loads[light] + workloads[segment]
            if max(new_heavy, new_light) < loads[heavy]:
                assignments[heavy].remove(segment)
                assignments[light].append(segment)
                loads[heavy] = new_heavy
                loads[light] = new_light
                improved = True
                break
    return Allocation(assignments=assignments, estimated_loads=loads)

"""Topic-driven data segmentation for the parallel E-step (paper Sect. 4.3).

The paper's two guidelines: (1) a user's documents stay in one segment so
threads do not fight over the same user's counters; (2) same-topic
documents should share a segment to reduce conflicting topic-counter
updates. Implementation exactly as described: run LDA with ``|Z|`` topics
over all documents, then put each user into the segment of her most
frequently assigned topic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.social_graph import SocialGraph
from ..sampling.rng import RngLike, ensure_rng
from ..topics.lda import LDA, LDAConfig


@dataclass
class DataSegment:
    """One unit of parallel work: a user set with everything attached to it."""

    segment_id: int
    users: np.ndarray
    doc_ids: np.ndarray
    n_friendship_links: int = 0
    n_diffusion_links: int = 0

    @property
    def n_users(self) -> int:
        return int(self.users.shape[0])

    @property
    def n_documents(self) -> int:
        return int(self.doc_ids.shape[0])


def segment_users_by_topic(
    graph: SocialGraph,
    n_segments: int,
    lda_iterations: int = 20,
    rng: RngLike = None,
) -> list[DataSegment]:
    """Partition users into ``n_segments`` by dominant LDA topic.

    Segments can be empty when a topic dominates no user — they are dropped,
    matching the knapsack allocator's expectation of positive workloads.
    """
    if n_segments < 1:
        raise ValueError("need at least one segment")
    generator = ensure_rng(rng)
    lda = LDA(
        LDAConfig(n_topics=n_segments, n_iterations=lda_iterations), rng=generator
    )
    lda.fit([doc.words for doc in graph.documents], max(graph.n_words, 1))
    user_segment = lda.dominant_topic_per_user(
        graph.document_user_array(), graph.n_users
    )
    return build_segments(graph, user_segment)


def build_segments(graph: SocialGraph, user_segment: np.ndarray) -> list[DataSegment]:
    """Materialise :class:`DataSegment` objects from a user->segment map."""
    user_segment = np.asarray(user_segment, dtype=np.int64)
    if user_segment.shape != (graph.n_users,):
        raise ValueError("user_segment must have one entry per user")
    segments: list[DataSegment] = []
    doc_user = graph.document_user_array()
    for segment_id in np.unique(user_segment):
        users = np.flatnonzero(user_segment == segment_id)
        user_set = set(int(u) for u in users)
        doc_ids = np.flatnonzero(np.isin(doc_user, users))
        n_friend = sum(
            1
            for link in graph.friendship_links
            if link.source in user_set or link.target in user_set
        )
        n_diff = sum(
            1
            for link in graph.diffusion_links
            if int(doc_user[link.source_doc]) in user_set
            or int(doc_user[link.target_doc]) in user_set
        )
        segments.append(
            DataSegment(
                segment_id=int(segment_id),
                users=users,
                doc_ids=doc_ids,
                n_friendship_links=n_friend,
                n_diffusion_links=n_diff,
            )
        )
    return segments

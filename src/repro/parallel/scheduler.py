"""Workload estimation and segment scheduling (paper Sect. 4.3).

The paper estimates the average processing time per document and per link
from a serial run, derives per-user workloads (documents + incident links),
sums them per segment, and knapsack-allocates segments to threads so every
thread carries about ``O/M``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.gibbs import CPDSampler
from .knapsack import Allocation, allocate_segments
from .segmentation import DataSegment


@dataclass(frozen=True)
class WorkloadModel:
    """Average per-item processing costs measured on a serial run."""

    seconds_per_document: float
    seconds_per_friendship_link: float
    seconds_per_diffusion_link: float

    def estimate_segment(self, segment: DataSegment) -> float:
        """Estimated seconds for one E-step sweep over a segment."""
        return (
            segment.n_documents * self.seconds_per_document
            + segment.n_friendship_links * self.seconds_per_friendship_link
            + segment.n_diffusion_links * self.seconds_per_diffusion_link
        )


def measure_workload_model(
    sampler: CPDSampler, probe_documents: int = 50
) -> WorkloadModel:
    """Time a small serial probe to calibrate the per-item costs.

    Document cost is measured by sweeping a probe subset; link costs are
    measured from the augmentation-variable batch draws, scaled per link.
    """
    n_docs = sampler.graph.n_documents
    probe = np.arange(min(probe_documents, n_docs))
    started = time.perf_counter()
    sampler.sweep_documents(probe)
    per_document = (time.perf_counter() - started) / max(len(probe), 1)

    per_friend = 0.0
    if sampler.n_friend_links:
        started = time.perf_counter()
        sampler.sample_lambdas()
        per_friend = (time.perf_counter() - started) / sampler.n_friend_links

    per_diff = 0.0
    if sampler.n_diff_links:
        started = time.perf_counter()
        sampler.sample_deltas()
        per_diff = (time.perf_counter() - started) / sampler.n_diff_links

    return WorkloadModel(
        seconds_per_document=per_document,
        seconds_per_friendship_link=per_friend,
        seconds_per_diffusion_link=per_diff,
    )


def partition_ranges(n_items: int, n_workers: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges splitting ``n_items`` near-evenly.

    Used for the fused per-link augmentation draws and partial eta counts:
    each worker owns one contiguous slice of the link arrays, so its draws
    land in a private region of the shared buffers. Sizes differ by at
    most one and every item is covered exactly once.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    bounds = [(worker * n_items) // n_workers for worker in range(n_workers + 1)]
    return [(bounds[w], bounds[w + 1]) for w in range(n_workers)]


@dataclass
class Schedule:
    """Segments bound to workers, with the loads used to balance them."""

    segments: list[DataSegment]
    allocation: Allocation
    segment_workloads: np.ndarray

    @property
    def n_workers(self) -> int:
        return self.allocation.n_workers

    def worker_doc_ids(self, worker: int) -> np.ndarray:
        """All document ids assigned to one worker."""
        segment_ids = self.allocation.assignments[worker]
        if not segment_ids:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate([self.segments[s].doc_ids for s in segment_ids])

    def estimated_worker_seconds(self) -> np.ndarray:
        """Per-worker estimated E-step seconds (the Fig. 11(a) series)."""
        return self.allocation.estimated_loads


def build_schedule(
    segments: list[DataSegment],
    workload_model: WorkloadModel,
    n_workers: int,
) -> Schedule:
    """Estimate per-segment workloads and knapsack-allocate them to workers."""
    if not segments:
        raise ValueError("need at least one segment")
    workloads = np.asarray(
        [workload_model.estimate_segment(segment) for segment in segments]
    )
    allocation = allocate_segments(workloads, n_workers)
    return Schedule(
        segments=segments, allocation=allocation, segment_workloads=workloads
    )

"""Time-sensitive topic popularity ``n_tz`` (paper Sect. 3.1).

The diffusion sigmoid (Eq. 5) adds the popularity of the link's topic at
the link's timestamp to the logit. The paper uses the raw count of topic z
at time t; raw counts grow without bound with corpus size and would
dominate the logit, so the default here is a bounded transform (proportion
of time-bucket mass, optionally log-scaled) with ``mode="raw"`` available
for paper-literal behaviour. See DESIGN.md §3.

Counts are maintained incrementally: the Gibbs sampler moves a document's
topic, the popularity table moves one count.
"""

from __future__ import annotations

import numpy as np

_MODES = ("raw", "proportion", "log")


class TopicPopularity:
    """Mutable (time bucket x topic) count table with bounded score lookups."""

    def __init__(
        self,
        n_topics: int,
        n_time_buckets: int,
        mode: str = "proportion",
        weight: float = 1.0,
    ) -> None:
        if n_topics < 1 or n_time_buckets < 1:
            raise ValueError("need at least one topic and one time bucket")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        self.n_topics = n_topics
        self.n_time_buckets = n_time_buckets
        self.mode = mode
        self.weight = weight
        self._counts = np.zeros((n_time_buckets, n_topics), dtype=np.float64)
        # lazily built cache of transformed score rows with dirty-row
        # invalidation; backs scores_batch on the vectorized sweep hot path
        self._score_cache: np.ndarray | None = None
        self._dirty_rows: set[int] = set()

    @classmethod
    def from_assignments(
        cls,
        timestamps: np.ndarray,
        topics: np.ndarray,
        n_topics: int,
        n_time_buckets: int,
        mode: str = "proportion",
        weight: float = 1.0,
    ) -> "TopicPopularity":
        """Build the table from current document topic assignments."""
        table = cls(n_topics, n_time_buckets, mode=mode, weight=weight)
        table.increment_many(timestamps, topics)
        return table

    # ------------------------------------------------------------ maintenance

    def increment(self, timestamp: int, topic: int) -> None:
        """Register one document of ``topic`` at ``timestamp``."""
        self._counts[timestamp, topic] += 1.0
        if self._score_cache is not None:
            self._dirty_rows.add(int(timestamp))

    def decrement(self, timestamp: int, topic: int) -> None:
        """Remove one document of ``topic`` at ``timestamp``."""
        if self._counts[timestamp, topic] <= 0.0:
            raise ValueError(
                f"popularity count underflow at (t={timestamp}, z={topic})"
            )
        self._counts[timestamp, topic] -= 1.0
        if self._score_cache is not None:
            self._dirty_rows.add(int(timestamp))

    def move(self, timestamp: int, old_topic: int, new_topic: int) -> None:
        """Reassign one document's topic at a fixed timestamp."""
        if old_topic != new_topic:
            self.decrement(timestamp, old_topic)
            self.increment(timestamp, new_topic)

    def increment_many(self, timestamps: np.ndarray, topics: np.ndarray) -> None:
        """Register one document per ``(timestamp, topic)`` pair (batched)."""
        timestamps = np.asarray(timestamps, dtype=np.int64)
        topics = np.asarray(topics, dtype=np.int64)
        if len(timestamps):
            np.add.at(self._counts, (timestamps, topics), 1.0)
            if self._score_cache is not None:
                self._dirty_rows.update(timestamps.tolist())

    def decrement_many(self, timestamps: np.ndarray, topics: np.ndarray) -> None:
        """Remove one document per ``(timestamp, topic)`` pair (batched)."""
        timestamps = np.asarray(timestamps, dtype=np.int64)
        topics = np.asarray(topics, dtype=np.int64)
        if not len(timestamps):
            return
        np.add.at(self._counts, (timestamps, topics), -1.0)
        if np.any(self._counts[timestamps, topics] < 0.0):
            np.add.at(self._counts, (timestamps, topics), 1.0)  # restore
            raise ValueError("popularity count underflow in batched decrement")
        if self._score_cache is not None:
            self._dirty_rows.update(timestamps.tolist())

    def move_many(
        self, timestamps: np.ndarray, old_topics: np.ndarray, new_topics: np.ndarray
    ) -> None:
        """Batched :meth:`move` — reassign many documents' topics at once."""
        self.decrement_many(timestamps, old_topics)
        self.increment_many(timestamps, new_topics)

    def adopt_buffer(self, buffer: np.ndarray) -> None:
        """Re-point the count table at a caller-provided (shared) buffer.

        Current counts are copied in first, so adoption is invisible to
        readers; incremental maintenance then mutates the buffer directly
        (the shared-memory publish step of the parallel runner).
        """
        if buffer.shape != self._counts.shape or buffer.dtype != self._counts.dtype:
            raise ValueError(
                f"buffer has shape {buffer.shape}/{buffer.dtype}, "
                f"table has {self._counts.shape}/{self._counts.dtype}"
            )
        np.copyto(buffer, self._counts)
        self._counts = buffer
        self._score_cache = None
        self._dirty_rows.clear()

    def load_counts(self, counts: np.ndarray) -> None:
        """Overwrite the full count table in place (parallel-worker refresh).

        One memcpy instead of replaying increments; the transformed-score
        cache is dropped wholesale because every row may have changed.
        """
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != self._counts.shape:
            raise ValueError(
                f"count table has shape {self._counts.shape}, got {counts.shape}"
            )
        np.copyto(self._counts, counts)
        self._score_cache = None
        self._dirty_rows.clear()

    # ---------------------------------------------------------------- lookups

    def count(self, timestamp: int, topic: int) -> float:
        """Raw count ``n_tz``."""
        return float(self._counts[timestamp, topic])

    def score(self, timestamp: int, topic: int) -> float:
        """The popularity term added to the diffusion logit."""
        return float(self.scores(timestamp)[topic])

    def scores(self, timestamp: int) -> np.ndarray:
        """Popularity term for every topic at ``timestamp`` (vectorised)."""
        return self._transform_row(self._counts[timestamp])

    def scores_batch(self, timestamps: np.ndarray) -> np.ndarray:
        """Popularity terms for every topic at each timestamp, shape (N, Z).

        Row-for-row identical to stacking :meth:`scores` over ``timestamps``;
        used by the vectorized sweep kernel to score all incident links of a
        document in one gather against the dirty-row score cache.
        """
        return self._scores_view()[timestamps]

    def scores_at(self, timestamps: np.ndarray, topics: np.ndarray) -> np.ndarray:
        """Scalar popularity terms for aligned ``(timestamp, topic)`` pairs.

        Equivalent to ``scores_batch(timestamps)[arange(n), topics]`` without
        materialising the intermediate rows.
        """
        view = self._scores_view()
        return view.ravel()[timestamps * self.n_topics + topics]

    def _scores_view(self) -> np.ndarray:
        """Cached transformed score matrix; refreshed row-wise, read-only."""
        if self._score_cache is None:
            self._score_cache = self.score_matrix()
            self._dirty_rows.clear()
        elif self._dirty_rows:
            if len(self._dirty_rows) <= 8:  # the per-document steady state
                cache = self._score_cache
                for row in self._dirty_rows:
                    cache[row] = self._transform_row(self._counts[row])
            else:
                rows = np.fromiter(
                    self._dirty_rows, dtype=np.int64, count=len(self._dirty_rows)
                )
                self._score_cache[rows] = self._transform_rows(self._counts[rows])
            self._dirty_rows.clear()
        return self._score_cache

    def _transform_row(self, row: np.ndarray) -> np.ndarray:
        """Single-row transform with scalar arithmetic (per-document hot path)."""
        if self.mode == "raw":
            transformed = row
        elif self.mode == "proportion":
            transformed = row / max(row.sum(), 1.0)
        else:  # log
            transformed = np.log1p(row)
        return self.weight * transformed

    def _transform_rows(self, rows: np.ndarray) -> np.ndarray:
        """Row-wise transform of a (N, Z) count block."""
        if self.mode == "raw":
            transformed = rows
        elif self.mode == "proportion":
            transformed = rows / np.maximum(rows.sum(axis=1, keepdims=True), 1.0)
        else:  # log
            transformed = np.log1p(rows)
        return self.weight * transformed

    def score_matrix(self) -> np.ndarray:
        """Popularity term for every (time bucket, topic) cell (vectorised)."""
        return self._transform_rows(self._counts)

    def totals_per_topic(self) -> np.ndarray:
        """Column sums — overall topic frequencies, used by case studies."""
        return self._counts.sum(axis=0)

    def counts_matrix(self) -> np.ndarray:
        """Copy of the raw (time x topic) counts (Fig. 5(b) case study)."""
        return self._counts.copy()

"""Time-sensitive topic popularity ``n_tz`` (paper Sect. 3.1).

The diffusion sigmoid (Eq. 5) adds the popularity of the link's topic at
the link's timestamp to the logit. The paper uses the raw count of topic z
at time t; raw counts grow without bound with corpus size and would
dominate the logit, so the default here is a bounded transform (proportion
of time-bucket mass, optionally log-scaled) with ``mode="raw"`` available
for paper-literal behaviour. See DESIGN.md §3.

Counts are maintained incrementally: the Gibbs sampler moves a document's
topic, the popularity table moves one count.
"""

from __future__ import annotations

import numpy as np

_MODES = ("raw", "proportion", "log")


class TopicPopularity:
    """Mutable (time bucket x topic) count table with bounded score lookups."""

    def __init__(
        self,
        n_topics: int,
        n_time_buckets: int,
        mode: str = "proportion",
        weight: float = 1.0,
    ) -> None:
        if n_topics < 1 or n_time_buckets < 1:
            raise ValueError("need at least one topic and one time bucket")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        self.n_topics = n_topics
        self.n_time_buckets = n_time_buckets
        self.mode = mode
        self.weight = weight
        self._counts = np.zeros((n_time_buckets, n_topics), dtype=np.float64)

    @classmethod
    def from_assignments(
        cls,
        timestamps: np.ndarray,
        topics: np.ndarray,
        n_topics: int,
        n_time_buckets: int,
        mode: str = "proportion",
        weight: float = 1.0,
    ) -> "TopicPopularity":
        """Build the table from current document topic assignments."""
        table = cls(n_topics, n_time_buckets, mode=mode, weight=weight)
        for t, z in zip(np.asarray(timestamps), np.asarray(topics)):
            table.increment(int(t), int(z))
        return table

    # ------------------------------------------------------------ maintenance

    def increment(self, timestamp: int, topic: int) -> None:
        """Register one document of ``topic`` at ``timestamp``."""
        self._counts[timestamp, topic] += 1.0

    def decrement(self, timestamp: int, topic: int) -> None:
        """Remove one document of ``topic`` at ``timestamp``."""
        if self._counts[timestamp, topic] <= 0.0:
            raise ValueError(
                f"popularity count underflow at (t={timestamp}, z={topic})"
            )
        self._counts[timestamp, topic] -= 1.0

    def move(self, timestamp: int, old_topic: int, new_topic: int) -> None:
        """Reassign one document's topic at a fixed timestamp."""
        if old_topic != new_topic:
            self.decrement(timestamp, old_topic)
            self.increment(timestamp, new_topic)

    # ---------------------------------------------------------------- lookups

    def count(self, timestamp: int, topic: int) -> float:
        """Raw count ``n_tz``."""
        return float(self._counts[timestamp, topic])

    def score(self, timestamp: int, topic: int) -> float:
        """The popularity term added to the diffusion logit."""
        return float(self.scores(timestamp)[topic])

    def scores(self, timestamp: int) -> np.ndarray:
        """Popularity term for every topic at ``timestamp`` (vectorised)."""
        row = self._counts[timestamp]
        if self.mode == "raw":
            transformed = row
        elif self.mode == "proportion":
            transformed = row / max(row.sum(), 1.0)
        else:  # log
            transformed = np.log1p(row)
        return self.weight * transformed

    def score_matrix(self) -> np.ndarray:
        """Popularity term for every (time bucket, topic) cell (vectorised)."""
        if self.mode == "raw":
            transformed = self._counts
        elif self.mode == "proportion":
            row_sums = np.maximum(self._counts.sum(axis=1, keepdims=True), 1.0)
            transformed = self._counts / row_sums
        else:  # log
            transformed = np.log1p(self._counts)
        return self.weight * transformed

    def totals_per_topic(self) -> np.ndarray:
        """Column sums — overall topic frequencies, used by case studies."""
        return self._counts.sum(axis=0)

    def counts_matrix(self) -> np.ndarray:
        """Copy of the raw (time x topic) counts (Fig. 5(b) case study)."""
        return self._counts.copy()

"""Individual-preference features ``f_uv`` (paper Sect. 3.1).

The paper models user u's preference to diffuse from user v as a linear
function ``nu^T f_uv`` over two features per user:

* **popularity** — audience size. The paper uses the ratio ``|Followers(u)|
  / |Followees(u)|``, which degenerates to the constant 1 on symmetric
  co-authorship graphs (every DBLP edge is reciprocated), so this
  implementation uses the follower (in-degree) count itself; on directed
  follower graphs the two carry the same celebrity signal (DESIGN.md §3).
* **activeness** — retweets over tweets (``|Retweets(u)| / |Tweets(u)|``);
  in DBLP terms, citations made per paper.

``f_uv`` concatenates u's features with v's. Counts and ratios are
Laplace-smoothed and log-scaled so a celebrity with 10^6 followers does
not saturate the sigmoid logit.
"""

from __future__ import annotations

import numpy as np

from ..graph.social_graph import SocialGraph


class UserFeatures:
    """Precomputed per-user popularity/activeness and pair-feature assembly."""

    #: f_uv layout: [popularity(u), activeness(u), popularity(v), activeness(v)]
    N_FEATURES = 4

    def __init__(self, graph: SocialGraph, log_scale: bool = True) -> None:
        n_users = graph.n_users
        followers = np.asarray([graph.follower_count(u) for u in range(n_users)], dtype=np.float64)
        diffusions = np.asarray([graph.diffusions_made(u) for u in range(n_users)], dtype=np.float64)
        documents = np.asarray(
            [len(graph.documents_of(u)) for u in range(n_users)], dtype=np.float64
        )
        self._init_from_counts(followers, diffusions, documents, log_scale)

    @classmethod
    def from_counts(
        cls,
        followers: np.ndarray,
        diffusions_made: np.ndarray,
        documents: np.ndarray,
        log_scale: bool = True,
    ) -> "UserFeatures":
        """Build from per-user count arrays — the graph-free serving path.

        The arrays are exactly what a persisted
        :class:`repro.serving.GraphSummary` carries, so a self-contained
        artifact can reconstruct identical ``f_uv`` features.
        """
        features = cls.__new__(cls)
        features._init_from_counts(
            np.asarray(followers, dtype=np.float64),
            np.asarray(diffusions_made, dtype=np.float64),
            np.asarray(documents, dtype=np.float64),
            log_scale,
        )
        return features

    def _init_from_counts(
        self,
        followers: np.ndarray,
        diffusions: np.ndarray,
        documents: np.ndarray,
        log_scale: bool,
    ) -> None:
        popularity = followers + 1.0
        activeness = (diffusions + 1.0) / (documents + 1.0)
        if log_scale:
            popularity = np.log(popularity)
            activeness = np.log(activeness)
        self.popularity = popularity
        self.activeness = activeness
        self._per_user = np.stack([popularity, activeness], axis=1)

    @property
    def n_users(self) -> int:
        return int(self._per_user.shape[0])

    def pair_features(self, source_user: int, target_user: int) -> np.ndarray:
        """``f_uv`` for one (u, v) pair, u diffusing from v."""
        return np.concatenate([self._per_user[source_user], self._per_user[target_user]])

    def pair_features_batch(self, source_users: np.ndarray, target_users: np.ndarray) -> np.ndarray:
        """``f_uv`` rows for parallel arrays of sources and targets."""
        source_users = np.asarray(source_users, dtype=np.int64)
        target_users = np.asarray(target_users, dtype=np.int64)
        if source_users.shape != target_users.shape:
            raise ValueError("source and target arrays must align")
        return np.concatenate(
            [self._per_user[source_users], self._per_user[target_users]], axis=1
        )

"""Diffusion-factor substrate: features, topic popularity, ``nu`` training."""

from .features import UserFeatures
from .logistic import LogisticFit, LogisticTrainer, LogisticTrainerConfig
from .negative_sampling import (
    sample_negative_diffusion_pairs,
    sample_negative_friendship_pairs,
)
from .popularity import TopicPopularity

__all__ = [
    "LogisticFit",
    "LogisticTrainer",
    "LogisticTrainerConfig",
    "TopicPopularity",
    "UserFeatures",
    "sample_negative_diffusion_pairs",
    "sample_negative_friendship_pairs",
]

"""Negative-link sampling for training and evaluation.

Two uses in the paper: the ``nu`` M-step "randomly sample[s] the same
amount of non-observed diffusion links as negative instances" (Sect. 4.2),
and AUC evaluation samples as many negative links as held-out positives
(Sect. 6.1).
"""

from __future__ import annotations

import numpy as np

from ..graph.social_graph import SocialGraph
from ..sampling.rng import RngLike, ensure_rng


def _shared_word_candidates(
    graph: SocialGraph, doc_id: int, rng: np.random.Generator, index: dict[int, np.ndarray]
) -> np.ndarray:
    """Documents sharing a *rare* word with ``doc_id`` (hard-negative pool).

    Words are drawn with probability inversely proportional to their squared
    document frequency: rare words are topic-indicative, so the sampled
    non-link is on-topic and cannot be rejected by surface similarity alone.
    """
    words = np.unique(graph.documents[doc_id].words)
    if len(words) == 0:
        return np.zeros(0, dtype=np.int64)
    frequencies = np.asarray(
        [max(len(index.get(int(w), ())), 1) for w in words], dtype=np.float64
    )
    weights = 1.0 / frequencies**2
    word = int(words[rng.choice(len(words), p=weights / weights.sum())])
    return index.get(word, np.zeros(0, dtype=np.int64))


def build_word_document_index(graph: SocialGraph) -> dict[int, np.ndarray]:
    """Inverted word -> documents index (hard negative sampling)."""
    buckets: dict[int, list[int]] = {}
    for doc in graph.documents:
        for word in set(int(w) for w in doc.words):
            buckets.setdefault(word, []).append(doc.doc_id)
    return {word: np.asarray(ids, dtype=np.int64) for word, ids in buckets.items()}


def sample_negative_diffusion_pairs(
    graph: SocialGraph,
    n_samples: int,
    rng: RngLike = None,
    exclude: set[tuple[int, int]] | None = None,
    allow_fewer: bool = False,
    hard_fraction: float = 0.5,
    word_index: dict[int, np.ndarray] | None = None,
    timestamp_mode: str = "uniform",
) -> list[tuple[int, int, int]]:
    """Sample ``(source_doc, target_doc, timestamp)`` triples absent from E.

    Pairs between documents of the same user are rejected (they cannot carry
    a diffusion decision), as are observed pairs and anything in ``exclude``.

    A non-observed link ``E^t_ij = 0`` is a (pair, time) event: with the
    default ``timestamp_mode="uniform"`` negatives get a uniform random time
    bucket, so the topic-popularity factor ``n_tz`` can discriminate
    diffusions (which happen while their topic trends) from non-events.
    ``timestamp_mode="source"`` stamps the source document's time instead.

    ``hard_fraction`` of the negatives are *content-plausible*: the two
    documents share at least one word. Purely uniform negatives are almost
    always off-topic, which lets raw content similarity solve the task and
    hides the community/diffusion structure the paper evaluates; mixing in
    shared-word non-links keeps the discrimination problem about *who
    diffuses whom*, not *what looks alike* (DESIGN.md §3).
    """
    generator = ensure_rng(rng)
    if not 0.0 <= hard_fraction <= 1.0:
        raise ValueError("hard_fraction must lie in [0, 1]")
    if timestamp_mode not in ("uniform", "source"):
        raise ValueError("timestamp_mode must be 'uniform' or 'source'")
    max_time = max((doc.timestamp for doc in graph.documents), default=0)
    observed = graph.diffusion_pairs()
    if exclude:
        observed = observed | exclude
    doc_user = graph.document_user_array()
    n_docs = graph.n_documents
    if n_docs < 2:
        raise ValueError("need at least two documents to sample negatives")
    if hard_fraction > 0 and word_index is None:
        word_index = build_word_document_index(graph)

    negatives: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int]] = set()
    max_attempts = n_samples * 100 + 1000
    attempts = 0
    while len(negatives) < n_samples and attempts < max_attempts:
        attempts += 1
        i = int(generator.integers(0, n_docs))
        if generator.random() < hard_fraction:
            pool = _shared_word_candidates(graph, i, generator, word_index)
            if len(pool) == 0:
                continue
            j = int(pool[generator.integers(0, len(pool))])
        else:
            j = int(generator.integers(0, n_docs))
        if i == j or doc_user[i] == doc_user[j]:
            continue
        if (i, j) in observed or (i, j) in seen:
            continue
        seen.add((i, j))
        if timestamp_mode == "uniform":
            timestamp = int(generator.integers(0, max_time + 1))
        else:
            timestamp = graph.documents[i].timestamp
        negatives.append((i, j, timestamp))
    if len(negatives) < n_samples and not allow_fewer:
        raise RuntimeError(
            f"could only sample {len(negatives)}/{n_samples} negative diffusion pairs"
        )
    return negatives


def sample_negative_friendship_pairs(
    graph: SocialGraph,
    n_samples: int,
    rng: RngLike = None,
    exclude: set[tuple[int, int]] | None = None,
) -> list[tuple[int, int]]:
    """Sample directed user pairs absent from F (friendship AUC negatives)."""
    generator = ensure_rng(rng)
    observed = graph.friendship_pairs()
    if exclude:
        observed = observed | exclude
    n_users = graph.n_users
    if n_users < 2:
        raise ValueError("need at least two users to sample negatives")
    negatives: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    max_attempts = n_samples * 100 + 1000
    attempts = 0
    while len(negatives) < n_samples and attempts < max_attempts:
        attempts += 1
        u = int(generator.integers(0, n_users))
        v = int(generator.integers(0, n_users))
        if u == v or (u, v) in observed or (u, v) in seen:
            continue
        seen.add((u, v))
        negatives.append((u, v))
    if len(negatives) < n_samples:
        raise RuntimeError(
            f"could only sample {len(negatives)}/{n_samples} negative friendship pairs"
        )
    return negatives

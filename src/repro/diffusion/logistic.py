"""Logistic regression with per-example fixed offsets.

The M-step of CPD (paper Sect. 4.2) optimises the individual-preference
weights ``nu`` by "essentially fitting a logistic regression" over observed
diffusion links (positives) and sampled non-links (negatives), while the
community term ``c_bar^T eta_bar`` and the topic-popularity term ``n_tz``
stay fixed inside the sigmoid — they enter here as per-example offsets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sampling.polya_gamma import sigmoid


@dataclass(frozen=True)
class LogisticFit:
    """Result of a logistic-regression fit."""

    weights: np.ndarray
    bias: float
    n_iterations: int
    final_loss: float

    def logits(self, features: np.ndarray, offsets: np.ndarray | None = None) -> np.ndarray:
        """Linear scores ``offset + bias + features @ weights``."""
        features = np.asarray(features, dtype=np.float64)
        scores = features @ self.weights + self.bias
        if offsets is not None:
            scores = scores + np.asarray(offsets, dtype=np.float64)
        return scores

    def predict_proba(
        self, features: np.ndarray, offsets: np.ndarray | None = None
    ) -> np.ndarray:
        """Sigmoid probabilities of the positive class."""
        return sigmoid(self.logits(features, offsets))


@dataclass
class LogisticTrainerConfig:
    """Full-batch gradient-descent settings (the paper's inner loop T2)."""

    learning_rate: float = 0.5
    n_iterations: int = 100
    l2_penalty: float = 1e-3
    fit_bias: bool = True
    tolerance: float = 1e-7
    #: z-score features internally, then fold the scaling back into the
    #: returned weights. Essential when feature magnitudes differ by orders
    #: of magnitude (the probability-normalised community term vs. the
    #: log-ratio user features): raw gradient descent would need thousands
    #: of iterations to upweight the small column.
    standardize: bool = False
    #: feature indices whose weights are projected to be >= 0 after every
    #: step. Used for factor-*contribution* weights (community, popularity)
    #: that are meaningful only as non-negative strengths; collinear
    #: features can otherwise flip their signs arbitrarily.
    nonnegative: tuple[int, ...] = ()


class LogisticTrainer:
    """Full-batch gradient descent for the offset logistic model."""

    def __init__(self, config: LogisticTrainerConfig | None = None) -> None:
        self.config = config or LogisticTrainerConfig()
        if self.config.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.config.n_iterations < 1:
            raise ValueError("n_iterations must be at least 1")

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        offsets: np.ndarray | None = None,
        initial_weights: np.ndarray | None = None,
        initial_bias: float = 0.0,
    ) -> LogisticFit:
        """Maximise the penalised Bernoulli log-likelihood.

        ``labels`` must be 0/1; ``offsets`` (if given) are added to every
        logit but carry no trainable parameter.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        n_examples, n_features = features.shape
        if labels.shape != (n_examples,):
            raise ValueError("labels must align with feature rows")
        if not np.all((labels == 0) | (labels == 1)):
            raise ValueError("labels must be binary")
        if offsets is None:
            offsets = np.zeros(n_examples)
        else:
            offsets = np.asarray(offsets, dtype=np.float64)
            if offsets.shape != (n_examples,):
                raise ValueError("offsets must align with feature rows")

        cfg = self.config
        if cfg.standardize:
            means = features.mean(axis=0)
            stds = features.std(axis=0)
            stds = np.where(stds > 1e-8, stds, 1.0)
            features = (features - means) / stds
        else:
            means = np.zeros(n_features)
            stds = np.ones(n_features)

        weights = (
            np.zeros(n_features)
            if initial_weights is None
            else np.asarray(initial_weights, dtype=np.float64) * stds
        )
        bias = float(initial_bias) + float(
            (np.zeros(n_features) if initial_weights is None else initial_weights) @ means
        )
        previous_loss = np.inf
        loss = previous_loss
        iterations_run = 0
        for iteration in range(cfg.n_iterations):
            iterations_run = iteration + 1
            logits = features @ weights + bias + offsets
            probabilities = sigmoid(logits)
            error = probabilities - labels
            gradient_w = features.T @ error / n_examples + cfg.l2_penalty * weights
            weights -= cfg.learning_rate * gradient_w
            for index in cfg.nonnegative:
                # standardisation keeps stds positive, so signs carry over
                if weights[index] < 0.0:
                    weights[index] = 0.0
            if cfg.fit_bias:
                bias -= cfg.learning_rate * float(error.mean())
            loss = self._loss(logits, labels, weights)
            if abs(previous_loss - loss) < cfg.tolerance:
                break
            previous_loss = loss
        # fold the standardisation back: logits over raw features are identical
        raw_weights = weights / stds
        raw_bias = bias - float((weights / stds) @ means)
        return LogisticFit(
            weights=raw_weights,
            bias=raw_bias,
            n_iterations=iterations_run,
            final_loss=float(loss),
        )

    def _loss(self, logits: np.ndarray, labels: np.ndarray, weights: np.ndarray) -> float:
        """Mean negative log-likelihood plus the L2 penalty (stable form)."""
        # log(1 + exp(x)) computed without overflow
        softplus = np.logaddexp(0.0, logits)
        nll = softplus - labels * logits
        penalty = 0.5 * self.config.l2_penalty * float(weights @ weights)
        return float(nll.mean()) + penalty

"""Setuptools shim.

This offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build an editable wheel. This shim
enables the legacy ``python setup.py develop`` path, which only needs
setuptools. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

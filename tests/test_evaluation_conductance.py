"""Tests for conductance."""

import numpy as np
import pytest

from repro.evaluation import average_conductance, set_conductance
from repro.graph import Document, FriendshipLink, SocialGraph, User, Vocabulary


def two_cliques_graph():
    """Users 0-2 and 3-5 form two cliques joined by one edge."""
    vocab = Vocabulary()
    vocab.add("w")
    users = [User(u, doc_ids=[u]) for u in range(6)]
    documents = [Document(d, d, np.array([0])) for d in range(6)]
    links = []
    for clique in ([0, 1, 2], [3, 4, 5]):
        for a in clique:
            for b in clique:
                if a < b:
                    links.append(FriendshipLink(a, b))
    links.append(FriendshipLink(2, 3))  # the single cross edge
    return SocialGraph(users, documents, links, [], vocab)


class TestSetConductance:
    def test_perfect_community(self):
        graph = two_cliques_graph()
        # clique {0,1,2}: cut=1, volume inside = 2*3 (intra) + 1 (cross) = 7
        value = set_conductance(graph, np.array([0, 1, 2]))
        assert value == pytest.approx(1.0 / 7.0)

    def test_terrible_community(self):
        graph = two_cliques_graph()
        # one node from each clique: everything it touches is cut
        value = set_conductance(graph, np.array([0, 3]))
        good = set_conductance(graph, np.array([0, 1, 2]))
        assert value > good

    def test_empty_set_is_worst(self):
        graph = two_cliques_graph()
        assert set_conductance(graph, np.array([], dtype=int)) == 1.0

    def test_full_set_is_worst(self):
        graph = two_cliques_graph()
        assert set_conductance(graph, np.arange(6)) == 1.0

    def test_bounded(self):
        graph = two_cliques_graph()
        for members in ([0], [0, 1], [0, 3, 4]):
            assert 0.0 <= set_conductance(graph, np.array(members)) <= 1.0


class TestAverageConductance:
    def test_ideal_partition_scores_low(self):
        graph = two_cliques_graph()
        memberships = np.zeros((6, 2))
        memberships[:3, 0] = 1.0
        memberships[3:, 1] = 1.0
        value = average_conductance(graph, memberships, top_k=1)
        assert value == pytest.approx(1.0 / 7.0)

    def test_random_partition_scores_higher(self, rng):
        graph = two_cliques_graph()
        ideal = np.zeros((6, 2))
        ideal[:3, 0] = 1.0
        ideal[3:, 1] = 1.0
        scrambled = np.zeros((6, 2))
        scrambled[[0, 3, 4], 0] = 1.0
        scrambled[[1, 2, 5], 1] = 1.0
        assert average_conductance(graph, scrambled, top_k=1) > average_conductance(
            graph, ideal, top_k=1
        )

    def test_top_k_overlap(self):
        graph = two_cliques_graph()
        memberships = np.full((6, 2), 0.5)
        # with top_k=2 every user joins both communities -> full sets -> 1.0
        assert average_conductance(graph, memberships, top_k=2) == 1.0

    def test_shape_validation(self):
        graph = two_cliques_graph()
        with pytest.raises(ValueError):
            average_conductance(graph, np.ones(6))

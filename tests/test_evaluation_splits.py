"""Tests for held-out link splits and model selection."""

import numpy as np
import pytest

from repro.core import CPDConfig
from repro.evaluation import (
    select_n_communities,
    split_diffusion_links,
    split_friendship_links,
)


class TestDiffusionSplit:
    def test_partition(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        split = split_diffusion_links(graph, 0.2, rng)
        assert split.n_heldout == round(0.2 * graph.n_diffusion_links)
        assert (
            split.train_graph.n_diffusion_links + split.n_heldout
            == graph.n_diffusion_links
        )

    def test_heldout_not_in_train(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        split = split_diffusion_links(graph, 0.2, rng)
        train_pairs = split.train_graph.diffusion_pairs()
        for link in split.heldout_links:
            assert (link.source_doc, link.target_doc) not in train_pairs

    def test_documents_untouched(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        split = split_diffusion_links(graph, 0.2, rng)
        assert split.train_graph.n_documents == graph.n_documents
        assert split.train_graph.n_users == graph.n_users

    def test_arrays(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        split = split_diffusion_links(graph, 0.1, rng)
        src, tgt, t = split.heldout_arrays()
        assert len(src) == len(tgt) == len(t) == split.n_heldout

    def test_deterministic(self, twitter_tiny):
        graph, _ = twitter_tiny
        a = split_diffusion_links(graph, 0.2, 5)
        b = split_diffusion_links(graph, 0.2, 5)
        assert a.heldout_links == b.heldout_links

    def test_invalid_fraction(self, twitter_tiny):
        graph, _ = twitter_tiny
        for fraction in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                split_diffusion_links(graph, fraction)

    def test_heldout_prediction_workflow(self, twitter_tiny):
        """Train on the split graph, score truly unseen links above chance."""
        from repro.apps import DiffusionPredictor
        from repro.core import CPDModel
        from repro.diffusion import sample_negative_diffusion_pairs
        from repro.evaluation import auc_score

        graph, _ = twitter_tiny
        split = split_diffusion_links(graph, 0.2, rng=1)
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=15, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=0).fit(split.train_graph)
        predictor = DiffusionPredictor(result, split.train_graph)
        src, tgt, t = split.heldout_arrays()
        positives = predictor.score_pairs(src, tgt, t)
        negatives_raw = sample_negative_diffusion_pairs(
            graph, len(src), 3, exclude=graph.diffusion_pairs()
        )
        negatives = predictor.score_pairs(
            np.array([n[0] for n in negatives_raw]),
            np.array([n[1] for n in negatives_raw]),
            np.array([n[2] for n in negatives_raw]),
        )
        assert auc_score(positives, negatives) > 0.55


class TestFriendshipSplit:
    def test_partition(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        split = split_friendship_links(graph, 0.25, rng)
        assert (
            split.train_graph.n_friendship_links + split.n_heldout
            == graph.n_friendship_links
        )

    def test_arrays(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        split = split_friendship_links(graph, 0.1, rng)
        src, tgt = split.heldout_arrays()
        assert len(src) == split.n_heldout

    def test_invalid_fraction(self, twitter_tiny):
        graph, _ = twitter_tiny
        with pytest.raises(ValueError):
            split_friendship_links(graph, 1.5)


class TestModelSelection:
    def test_sweep_selects_a_candidate(self, twitter_tiny):
        graph, _ = twitter_tiny
        base = CPDConfig(n_communities=2, n_topics=8, n_iterations=5, rho=0.5, alpha=0.5)
        outcome = select_n_communities(
            graph, candidates=[2, 4], base_config=base, rng=0
        )
        assert outcome.selected.n_communities in (2, 4)
        assert len(outcome.points) == 2
        assert outcome.table()[0][0] == 2

    def test_combined_score_in_unit_range(self, twitter_tiny):
        graph, _ = twitter_tiny
        base = CPDConfig(n_communities=2, n_topics=8, n_iterations=4, rho=0.5, alpha=0.5)
        outcome = select_n_communities(graph, [2, 3], base_config=base, rng=0)
        assert all(0.0 <= p.combined <= 1.0 for p in outcome.points)

    def test_selected_minimises_combined(self, twitter_tiny):
        graph, _ = twitter_tiny
        base = CPDConfig(n_communities=2, n_topics=8, n_iterations=4, rho=0.5, alpha=0.5)
        outcome = select_n_communities(graph, [2, 3, 4], base_config=base, rng=0)
        assert outcome.selected.combined == min(p.combined for p in outcome.points)

    def test_validation(self, twitter_tiny):
        graph, _ = twitter_tiny
        with pytest.raises(ValueError):
            select_n_communities(graph, [])
        with pytest.raises(ValueError):
            select_n_communities(graph, [2], perplexity_weight=2.0)

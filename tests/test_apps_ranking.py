"""Tests for profile-driven community ranking (Eq. 19)."""

import numpy as np
import pytest

from repro.apps import CommunityRanker
from repro.evaluation import select_queries


@pytest.fixture(scope="module")
def ranker(fitted_cpd, twitter_tiny):
    graph, _ = twitter_tiny
    return CommunityRanker(fitted_cpd, graph)


@pytest.fixture(scope="module")
def a_query(twitter_tiny):
    graph, _ = twitter_tiny
    queries = select_queries(graph, min_frequency=2, hashtags_only=True, max_queries=3)
    assert queries, "tiny twitter scenario should yield hashtag queries"
    return queries[0]


class TestQueryAffinity:
    def test_affinity_shape(self, ranker, a_query):
        affinity = ranker.query_topic_affinity(a_query.term)
        assert affinity.shape == (8,)
        assert affinity.max() == pytest.approx(1.0)  # normalised to the peak

    def test_unknown_term_raises(self, ranker):
        with pytest.raises(KeyError):
            ranker.query_topic_affinity("zzzz-not-a-word")

    def test_multi_term_query(self, ranker, a_query, twitter_tiny):
        graph, _ = twitter_tiny
        another = graph.vocabulary.word_of(0)
        affinity = ranker.query_topic_affinity([a_query.term, another])
        assert affinity.shape == (8,)

    def test_query_topics_normalised(self, ranker, a_query):
        topics = ranker.query_topics(a_query.term, n=3)
        assert len(topics) == 3
        assert all(0.0 <= weight <= 1.0 for _z, weight in topics)


class TestRanking:
    def test_rank_orders_scores(self, ranker, a_query):
        ranked = ranker.rank(a_query.term)
        scores = [score for _c, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert len(ranked) == 4

    def test_scores_nonnegative(self, ranker, a_query):
        assert np.all(ranker.scores(a_query.term) >= 0.0)

    def test_top_k(self, ranker, a_query):
        top = ranker.top_k(a_query.term, k=2)
        assert len(top) == 2
        assert top == [c for c, _s in ranker.rank(a_query.term)[:2]]

    def test_ranked_member_lists_align(self, ranker, a_query):
        members = ranker.ranked_member_lists(a_query.term)
        assert len(members) == 4
        assert all(isinstance(group, np.ndarray) for group in members)

    def test_hashtag_query_ranks_matching_community_first(
        self, fitted_cpd, twitter_tiny
    ):
        """The planted hashtag #topicZ should rank communities that both
        discuss and diffuse topic Z at the top."""
        graph, truth = twitter_tiny
        ranker = CommunityRanker(fitted_cpd, graph)
        queries = select_queries(graph, min_frequency=2, hashtags_only=True)
        if not queries:
            pytest.skip("no hashtag queries in this draw")
        query = queries[0]
        best_community = ranker.top_k(query.term, k=1)[0]
        # the top community must hold at least one relevant user
        members = fitted_cpd.community_members(k=2)[best_community]
        assert set(members.tolist()) & set(query.relevant_users.tolist())

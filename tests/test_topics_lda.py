"""Tests for the collapsed-Gibbs LDA substrate."""

import numpy as np
import pytest

from repro.topics import LDA, LDAConfig


def block_corpus(rng, n_docs=60, n_topics=3, words_per_topic=10, doc_length=12):
    """Documents drawn from disjoint word blocks — trivially separable."""
    docs = []
    labels = []
    for d in range(n_docs):
        topic = d % n_topics
        base = topic * words_per_topic
        docs.append(base + rng.integers(0, words_per_topic, size=doc_length))
        labels.append(topic)
    return docs, np.asarray(labels), n_topics * words_per_topic


class TestConfig:
    def test_alpha_convention(self):
        assert LDAConfig(n_topics=10).resolved_alpha() == pytest.approx(5.0)

    def test_alpha_override(self):
        assert LDAConfig(n_topics=10, alpha=0.3).resolved_alpha() == 0.3

    def test_rejects_zero_topics(self):
        with pytest.raises(ValueError):
            LDA(LDAConfig(n_topics=0))


class TestFit:
    def test_outputs_normalised(self, rng):
        docs, _, n_words = block_corpus(rng)
        lda = LDA(LDAConfig(n_topics=3, n_iterations=15, alpha=0.5), rng=rng)
        lda.fit(docs, n_words)
        np.testing.assert_allclose(lda.phi.sum(axis=1), 1.0, rtol=1e-9)
        np.testing.assert_allclose(lda.doc_topic_distribution.sum(axis=1), 1.0, rtol=1e-9)

    def test_recovers_block_structure(self, rng):
        docs, labels, n_words = block_corpus(rng)
        lda = LDA(LDAConfig(n_topics=3, n_iterations=30, alpha=0.2), rng=rng)
        lda.fit(docs, n_words)
        dominant = lda.dominant_topics()
        # same-block documents should share their dominant topic
        for topic in range(3):
            block = dominant[labels == topic]
            majority = np.bincount(block, minlength=3).max() / len(block)
            assert majority > 0.8

    def test_requires_fit_before_reads(self):
        lda = LDA(LDAConfig(n_topics=2))
        with pytest.raises(RuntimeError):
            _ = lda.phi

    def test_rejects_empty_vocabulary(self, rng):
        lda = LDA(LDAConfig(n_topics=2), rng=rng)
        with pytest.raises(ValueError):
            lda.fit([np.array([0, 1])], 0)

    def test_handles_empty_documents(self, rng):
        lda = LDA(LDAConfig(n_topics=2, n_iterations=3), rng=rng)
        lda.fit([np.array([], dtype=np.int64), np.array([0, 1])], 2)
        assert lda.doc_topic_distribution.shape == (2, 2)


class TestUserSegmentation:
    def test_dominant_topic_per_user(self, rng):
        docs, labels, n_words = block_corpus(rng)
        lda = LDA(LDAConfig(n_topics=3, n_iterations=20, alpha=0.2), rng=rng)
        lda.fit(docs, n_words)
        # users own consecutive same-topic docs: user u -> docs with label u%3
        doc_user = labels.copy()  # user id == planted topic id
        user_topics = lda.dominant_topic_per_user(doc_user, 3)
        assert len(set(user_topics.tolist())) == 3


class TestInference:
    def test_infer_document_identifies_block(self, rng):
        docs, _, n_words = block_corpus(rng)
        lda = LDA(LDAConfig(n_topics=3, n_iterations=25, alpha=0.2), rng=rng)
        lda.fit(docs, n_words)
        # a fresh document from block 0's words
        mixture = lda.infer_document(np.arange(5))
        block0_topic = lda.dominant_topics()[0]
        assert np.argmax(mixture) == block0_topic

    def test_perplexity_better_than_uniform(self, rng):
        docs, _, n_words = block_corpus(rng)
        lda = LDA(LDAConfig(n_topics=3, n_iterations=25, alpha=0.2), rng=rng)
        lda.fit(docs, n_words)
        assert lda.perplexity() < n_words  # uniform model scores exactly n_words

    def test_heldout_perplexity(self, rng):
        docs, _, n_words = block_corpus(rng)
        lda = LDA(LDAConfig(n_topics=3, n_iterations=15, alpha=0.2), rng=rng)
        lda.fit(docs, n_words)
        heldout = [np.arange(8), np.arange(10, 18)]
        assert lda.perplexity(heldout) > 0

"""Tests for diffusion visualization exports (Fig. 7 machinery)."""

import json

import networkx as nx
import numpy as np
import pytest

from repro.apps import (
    ascii_render,
    build_diffusion_graph,
    community_labels,
    openness_report,
    to_dot,
    to_json,
    topic_generality,
)


class TestBuildGraph:
    def test_aggregated_graph(self, fitted_cpd):
        graph = build_diffusion_graph(fitted_cpd)
        assert isinstance(graph, nx.DiGraph)
        assert graph.number_of_nodes() == fitted_cpd.n_communities
        assert graph.graph["topic"] == "aggregated"

    def test_topic_specific_graph(self, fitted_cpd):
        graph = build_diffusion_graph(fitted_cpd, topic=0)
        assert graph.graph["topic"] == 0
        for _s, _t, data in graph.edges(data=True):
            assert data["weight"] > 0

    def test_pruning_below_average(self, fitted_cpd):
        pruned = build_diffusion_graph(fitted_cpd, prune_below_average=True)
        full = build_diffusion_graph(fitted_cpd, prune_below_average=False)
        assert pruned.number_of_edges() <= full.number_of_edges()
        threshold = fitted_cpd.aggregated_diffusion_matrix().mean()
        for _s, _t, data in pruned.edges(data=True):
            assert data["weight"] > threshold

    def test_invalid_topic(self, fitted_cpd):
        with pytest.raises(ValueError):
            build_diffusion_graph(fitted_cpd, topic=99)

    def test_node_attributes(self, fitted_cpd):
        graph = build_diffusion_graph(fitted_cpd)
        for node, data in graph.nodes(data=True):
            assert "openness" in data
            assert data["label"].startswith("c")


class TestLabels:
    def test_labels_from_vocabulary(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        labels = community_labels(fitted_cpd, graph.vocabulary, n_words=3)
        assert len(labels) == fitted_cpd.n_communities
        assert all(label for label in labels)

    def test_labels_attached_to_graph(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        labels = community_labels(fitted_cpd, graph.vocabulary)
        diffusion_graph = build_diffusion_graph(fitted_cpd, labels=labels)
        assert diffusion_graph.nodes[0]["label"] == labels[0]


class TestRenderers:
    def test_dot_output(self, fitted_cpd):
        dot = to_dot(build_diffusion_graph(fitted_cpd))
        assert dot.startswith("digraph")
        assert "->" in dot and dot.rstrip().endswith("}")

    def test_json_output_parses(self, fitted_cpd):
        payload = json.loads(to_json(build_diffusion_graph(fitted_cpd)))
        assert len(payload["nodes"]) == fitted_cpd.n_communities
        assert all("weight" in edge for edge in payload["edges"])

    def test_ascii_render(self, fitted_cpd):
        art = ascii_render(build_diffusion_graph(fitted_cpd))
        assert "community diffusion" in art
        assert "#" in art

    def test_ascii_respects_max_edges(self, fitted_cpd):
        art = ascii_render(build_diffusion_graph(fitted_cpd, prune_below_average=False), max_edges=3)
        assert len(art.splitlines()) <= 4


class TestAnalysis:
    def test_openness_report_sorted(self, fitted_cpd):
        report = openness_report(fitted_cpd)
        values = [v for _label, v in report]
        assert values == sorted(values, reverse=True)
        assert len(report) == fitted_cpd.n_communities

    def test_topic_generality_shape(self, fitted_cpd):
        generality = topic_generality(fitted_cpd)
        assert generality.shape == (fitted_cpd.n_topics,)
        assert np.all(generality >= 0)

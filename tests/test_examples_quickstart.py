"""Smoke test: examples/quickstart.py must run end-to-end.

Executes the example as a real subprocess (the way a user would), scaled
down through its environment knobs so the suite stays fast. This is what
keeps the README's first code path from rotting silently.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_quickstart_runs_end_to_end():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_QUICKSTART_SCALE"] = "tiny"
    env["REPRO_QUICKSTART_ITERATIONS"] = "6"
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / "quickstart.py")],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    out = completed.stdout
    assert "community recovery NMI" in out
    assert "content perplexity" in out
    assert "served (graph-free) ranking" in out
    assert "fold-in of an unseen document" in out

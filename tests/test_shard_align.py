"""Tests for the cross-shard community aligner."""

import numpy as np
import pytest

from repro.core import CPDResult
from repro.shard import (
    CommunityAligner,
    aligned_user_labels,
    community_signatures,
    hellinger_affinity,
)


def permuted_result(result: CPDResult, permutation: np.ndarray) -> CPDResult:
    """The same fit with community ids relabelled by ``permutation``."""
    inverse = np.argsort(permutation)
    return CPDResult(
        config=result.config,
        pi=result.pi[:, permutation],
        theta=result.theta[permutation],
        phi=result.phi,
        diffusion=result.diffusion.copy(),
        doc_community=inverse[result.doc_community],
        doc_topic=result.doc_topic,
        graph_name=result.graph_name,
    )


class TestSignatures:
    def test_rows_are_distributions(self, fitted_cpd):
        for feature in ("content", "diffusion"):
            signatures = community_signatures(fitted_cpd, feature)
            assert signatures.shape == (fitted_cpd.n_communities, fitted_cpd.n_words)
            np.testing.assert_allclose(signatures.sum(axis=1), 1.0, rtol=1e-9)
            assert (signatures >= 0).all()

    def test_unknown_feature_rejected(self, fitted_cpd):
        with pytest.raises(ValueError):
            community_signatures(fitted_cpd, "nope")

    def test_hellinger_bounds(self, fitted_cpd):
        signatures = community_signatures(fitted_cpd)
        affinity = hellinger_affinity(signatures, signatures)
        assert affinity.shape == (fitted_cpd.n_communities,) * 2
        assert (affinity <= 1.0 + 1e-9).all() and (affinity >= 0.0).all()
        np.testing.assert_allclose(np.diag(affinity), 1.0, rtol=1e-9)


class TestAlignment:
    def test_self_alignment_is_identity(self, fitted_cpd):
        alignment = CommunityAligner().align([fitted_cpd, fitted_cpd])
        assert alignment.n_global == fitted_cpd.n_communities
        np.testing.assert_array_equal(
            alignment.local_to_global[0], alignment.local_to_global[1]
        )

    @pytest.mark.parametrize("method", ["hungarian", "greedy"])
    def test_recovers_a_planted_permutation(self, fitted_cpd, method):
        permutation = np.array([2, 0, 3, 1])
        shuffled = permuted_result(fitted_cpd, permutation)
        alignment = CommunityAligner(method=method).align([fitted_cpd, shuffled])
        assert alignment.n_global == fitted_cpd.n_communities
        # shuffled community c is original community permutation[c]
        np.testing.assert_array_equal(alignment.local_to_global[1], permutation)

    def test_dissimilar_communities_open_new_labels(self, fitted_cpd):
        # a synthetic "shard" whose communities concentrate on disjoint words
        n_c, n_z, n_w = (
            fitted_cpd.n_communities,
            fitted_cpd.n_topics,
            fitted_cpd.n_words,
        )
        phi = np.full((n_z, n_w), 1e-12)
        for topic in range(n_z):
            start = (topic * n_w) // n_z
            stop = ((topic + 1) * n_w) // n_z
            phi[topic, start:stop] = 1.0
        phi /= phi.sum(axis=1, keepdims=True)
        theta = np.eye(n_c, n_z)
        foreign = CPDResult(
            config=fitted_cpd.config,
            pi=np.full_like(fitted_cpd.pi, 1.0 / n_c),
            theta=theta,
            phi=phi,
            diffusion=fitted_cpd.diffusion.copy(),
            doc_community=fitted_cpd.doc_community,
            doc_topic=fitted_cpd.doc_topic,
        )
        alignment = CommunityAligner(min_similarity=0.9).align([fitted_cpd, foreign])
        assert alignment.n_global > fitted_cpd.n_communities

    def test_mismatched_vocabulary_rejected(self, fitted_cpd, fitted_cpd_dblp):
        with pytest.raises(ValueError):
            CommunityAligner().align([fitted_cpd, fitted_cpd_dblp])

    def test_roundtrip_through_dict_preserves_mapping(self, sharded_parity):
        alignment = sharded_parity.alignment
        from repro.shard import ShardAlignment

        revived = ShardAlignment.from_dict(alignment.to_dict())
        assert revived.n_global == alignment.n_global
        for mine, theirs in zip(revived.local_to_global, alignment.local_to_global):
            np.testing.assert_array_equal(mine, theirs)
        # signatures are derived data: absent after revival, rebuildable
        assert revived.signatures.size == 0
        revived.rebuild_signatures(sharded_parity.results)
        np.testing.assert_allclose(
            revived.signatures, alignment.signatures, atol=1e-9
        )

    def test_map_result_identity_on_reference_shard(self, sharded_parity):
        aligner = CommunityAligner()
        mapping = aligner.map_result(
            sharded_parity.alignment, sharded_parity.results[0]
        )
        np.testing.assert_array_equal(
            mapping, sharded_parity.alignment.local_to_global[0]
        )


class TestAlignedLabels:
    def test_labels_cover_every_user(self, sharded_parity, separated_tiny):
        graph, _ = separated_tiny
        labels = aligned_user_labels(
            sharded_parity.alignment,
            sharded_parity.results,
            [part.users for part in sharded_parity.plan.shards],
            graph.n_users,
        )
        assert labels.shape == (graph.n_users,)
        assert (labels >= 0).all()
        assert (labels < sharded_parity.alignment.n_global).all()

"""Tests for the immutable corpus layout and graph-free sampler construction."""

import numpy as np
import pytest

from repro.core import CPDConfig, DiffusionParameters
from repro.core.gibbs import CPDSampler
from repro.core.layout import CorpusLayout, split_word_multiplicity


@pytest.fixture(scope="module")
def layout_setup(twitter_tiny):
    graph, _ = twitter_tiny
    config = CPDConfig(n_communities=4, n_topics=8, n_iterations=5, rho=0.5, alpha=0.5)
    params = DiffusionParameters.initial(4, 8)
    sampler = CPDSampler(graph, config, params, rng=3)
    return graph, config, sampler, CorpusLayout.from_sampler(sampler)


class TestSplitWordMultiplicity:
    def test_partitions_by_count(self):
        doc_unique = [
            (np.array([2, 5, 9]), np.array([1.0, 3.0, 1.0])),
            (np.array([7]), np.array([2.0])),
            (np.zeros(0, dtype=np.int64), np.zeros(0)),
        ]
        split = split_word_multiplicity(doc_unique)
        np.testing.assert_array_equal(split["ws_words"], [2, 9])
        np.testing.assert_array_equal(split["wm_words"], [5, 7])
        np.testing.assert_array_equal(split["wm_counts"], [3.0, 2.0])
        np.testing.assert_array_equal(split["ws_indptr"], [0, 2, 2, 2])
        np.testing.assert_array_equal(split["wm_indptr"], [0, 1, 2, 2])

    def test_matches_kernel_layout(self, layout_setup):
        _, _, sampler, layout = layout_setup
        kernel = sampler.kernel
        np.testing.assert_array_equal(layout.ws_words, kernel.ws_words)
        np.testing.assert_array_equal(layout.wm_counts, kernel.wm_counts)


class TestLayoutSampler:
    def test_requires_graph_or_layout(self):
        config = CPDConfig(n_communities=2, n_topics=2)
        with pytest.raises(ValueError):
            CPDSampler(None, config, DiffusionParameters.initial(2, 2))

    def test_matched_seed_sweep_identical(self, layout_setup):
        """A layout-built sampler is the same machine as a graph-built one."""
        graph, config, _, layout = layout_setup
        reference = CPDSampler(
            graph, config, DiffusionParameters.initial(4, 8), rng=11
        )
        attached = CPDSampler(
            None, config, DiffusionParameters.initial(4, 8), rng=11, layout=layout
        )
        assert attached.graph is None
        reference.sweep_documents()
        attached.sweep_documents()
        np.testing.assert_array_equal(
            attached.state.doc_community, reference.state.doc_community
        )
        np.testing.assert_array_equal(attached.state.doc_topic, reference.state.doc_topic)
        attached.state.check_consistency()

    def test_conditionals_match(self, layout_setup):
        graph, config, _, layout = layout_setup
        reference = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=5)
        attached = CPDSampler(
            None, config, DiffusionParameters.initial(4, 8), rng=7, layout=layout
        )
        attached.load_snapshot(reference.export_snapshot())
        for doc_id in (0, 1, graph.n_documents // 2, graph.n_documents - 1):
            previous = reference.state.unassign(doc_id)
            attached.state.unassign(doc_id)
            np.testing.assert_allclose(
                attached.kernel.topic_log_weights(doc_id, 1),
                reference.kernel.topic_log_weights(doc_id, 1),
                rtol=1e-10,
            )
            np.testing.assert_allclose(
                attached.kernel.community_log_weights(doc_id, 2),
                reference.kernel.community_log_weights(doc_id, 2),
                rtol=1e-10,
            )
            reference.state.assign(doc_id, *previous)
            attached.state.assign(doc_id, *previous)

    def test_reference_kernel_layout_construction(self, layout_setup):
        """from_sampler works when the source runs the reference kernel."""
        graph, config, _, _ = layout_setup
        reference_config = config.with_overrides(sweep_kernel="reference")
        sampler = CPDSampler(
            graph, reference_config, DiffusionParameters.initial(4, 8), rng=3
        )
        layout = CorpusLayout.from_sampler(sampler)
        assert len(layout.ws_words) + len(layout.wm_words) == sum(
            len(words) for words, _ in sampler._doc_unique
        )

    def test_appends_rejected(self, layout_setup):
        _, config, _, layout = layout_setup
        attached = CPDSampler(
            None, config, DiffusionParameters.initial(4, 8), rng=0, layout=layout
        )
        with pytest.raises(RuntimeError):
            attached.append_documents(
                [np.array([0, 1])], np.array([0]), np.array([0])
            )
        with pytest.raises(RuntimeError):
            attached.append_diffusion_links(
                np.array([0]), np.array([1]), np.array([0])
            )

    def test_arrays_round_trip_names(self, layout_setup):
        _, _, _, layout = layout_setup
        arrays = layout.arrays()
        assert set(arrays) == set(CorpusLayout.array_fields())
        rebuilt = CorpusLayout(
            n_users=layout.n_users,
            n_docs=layout.n_docs,
            n_words=layout.n_words,
            **arrays,
        )
        assert rebuilt.n_friend_links == layout.n_friend_links
        assert rebuilt.n_diff_links == layout.n_diff_links

"""Tests for the CPD ablation variants (paper Sect. 6.2)."""

import numpy as np
import pytest

from repro.baselines import CPDVariant, VARIANTS, fit_no_joint, variant_config
from repro.core import CPDConfig


@pytest.fixture(scope="module")
def ablation_config():
    return CPDConfig(n_communities=4, n_topics=8, n_iterations=5, rho=0.5, alpha=0.5)


class TestVariantConfig:
    def test_full_unchanged(self, ablation_config):
        assert variant_config(ablation_config, "full") is ablation_config

    def test_no_heterogeneity(self, ablation_config):
        config = variant_config(ablation_config, "no_heterogeneity")
        assert config.heterogeneity is False
        assert config.model_diffusion is True

    def test_no_individual_topic(self, ablation_config):
        config = variant_config(ablation_config, "no_individual_topic")
        assert not config.use_individual_factor
        assert not config.use_topic_factor

    def test_no_topic(self, ablation_config):
        config = variant_config(ablation_config, "no_topic")
        assert not config.use_topic_factor
        assert config.use_individual_factor

    def test_unknown_variant(self, ablation_config):
        with pytest.raises(ValueError):
            variant_config(ablation_config, "no_everything")


class TestNoJoint:
    def test_two_phase_fit(self, twitter_tiny, ablation_config):
        graph, _ = twitter_tiny
        result = fit_no_joint(graph, ablation_config, rng=0)
        assert result.pi.shape == (graph.n_users, 4)
        assert result.eta.sum() == pytest.approx(1.0)

    def test_detection_ignores_content_and_diffusion(self, twitter_tiny, ablation_config):
        """Phase-1 communities must come from friendship links only —
        verified by the profiling result carrying the frozen assignments."""
        graph, _ = twitter_tiny
        detection_config = ablation_config.with_overrides(
            model_diffusion=False, community_uses_content=False
        )
        from repro.core import CPDModel, FitOptions

        detection = CPDModel(detection_config, rng=0).fit(graph)
        import numpy as np
        from repro.sampling import ensure_rng

        profiling = CPDModel(ablation_config, rng=1).fit(
            graph, FitOptions(fixed_communities=detection.doc_community)
        )
        np.testing.assert_array_equal(profiling.doc_community, detection.doc_community)


class TestCPDVariantAdapter:
    def test_all_variants_fit(self, twitter_tiny, ablation_config):
        graph, _ = twitter_tiny
        for variant in VARIANTS:
            model = CPDVariant(ablation_config, variant).fit(graph, rng=0)
            scores = model.diffusion_scores(
                np.array([0, 1]), np.array([2, 3]), np.array([0, 0])
            )
            assert scores.shape == (2,)
            assert model.memberships() is not None

    def test_names(self, ablation_config):
        assert CPDVariant(ablation_config).name == "CPD"
        assert CPDVariant(ablation_config, "no_topic").name == "CPD[no_topic]"

    def test_unknown_variant_rejected(self, ablation_config):
        with pytest.raises(ValueError):
            CPDVariant(ablation_config, "bogus")

    def test_no_heterogeneity_scores_by_similarity(self, twitter_tiny, ablation_config):
        graph, _ = twitter_tiny
        model = CPDVariant(ablation_config, "no_heterogeneity").fit(graph, rng=0)
        doc_user = graph.document_user_array()
        pi = model.result.pi
        src, tgt = np.array([0, 4]), np.array([7, 9])
        expected = np.einsum("ij,ij->i", pi[doc_user[src]], pi[doc_user[tgt]])
        np.testing.assert_allclose(
            model.diffusion_scores(src, tgt, np.zeros(2, dtype=int)), expected
        )

    def test_profiles_exposed(self, twitter_tiny, ablation_config):
        graph, _ = twitter_tiny
        model = CPDVariant(ablation_config).fit(graph, rng=0)
        profiles = model.profiles()
        assert profiles.phi.shape[1] == graph.n_words

    def test_requires_fit(self, ablation_config):
        model = CPDVariant(ablation_config)
        with pytest.raises(RuntimeError):
            _ = model.result

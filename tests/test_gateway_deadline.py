"""Deadline propagation: the request budget reaches every shard decision.

The tentpole guarantee: a request with 80ms left must never trigger a
500ms shard retry. The budget flows header -> Deadline -> gather(budget)
-> per-shard cutoff, and expiry at any stage degrades (or rejects)
instead of burning time the client has already written off.
"""

import time

import pytest

from repro.gateway import Deadline, GatewayServer, GatewayThread
from repro.resilience import FaultPlan, inject
from repro.serving import ProfileStore
from repro.shard import ShardRouter


def _router(fit, clock=None, **options):
    if clock is not None:
        options["clock"] = clock
    return ShardRouter(
        [
            ProfileStore.from_fit(result, part.graph)
            for result, part in zip(fit.results, fit.plan.shards)
        ],
        [part.users for part in fit.plan.shards],
        fit.alignment,
        **options,
    )


class TestRouterBudget:
    def test_pre_expired_budget_reaches_no_shard(self, sharded_parity):
        """budget=0: every shard is skipped before its call — the stores
        are never consulted at all (the spy would have recorded it)."""
        router = _router(sharded_parity, best_effort=True)
        calls: list[int] = []
        for shard_id, store in enumerate(router.stores):
            original = store.rank

            def spying(query, _original=original, _sid=shard_id):
                calls.append(_sid)
                return _original(query)

            store.rank = spying
        term = router.indexed_terms()[0]
        envelope = router.gather(term, budget=0.0)
        assert calls == []
        assert envelope.ranking == []
        assert envelope.coverage == 0.0
        assert set(envelope.failed) == {0, 1}
        assert all(
            "deadline expired before the shard call" in reason
            for reason in envelope.errors.values()
        )

    def test_mid_gather_expiry_degrades_and_caches_nothing(
        self, sharded_parity
    ):
        """The budget runs out between shard 0 and shard 1 (the fake
        clock charges 1s per shard call): the answer is a partial merge
        and the merged-rank cache stays empty — a deadline-truncated
        ranking must never be served as exact later."""
        ticks = [0.0]
        router = _router(
            sharded_parity, best_effort=True, clock=lambda: ticks[0]
        )
        for store in router.stores:
            original = store.rank

            def slow(query, _original=original):
                ticks[0] += 1.0
                return _original(query)

            store.rank = slow
        term = router.indexed_terms()[0]
        envelope = router.gather(term, budget=1.5)
        assert envelope.answered == [0]
        assert envelope.failed == [1]
        assert not envelope.exact
        assert envelope.ranking  # shard 0's contribution still serves
        # shard 1 was either skipped outright or attempted under the
        # truncated per-call deadline and charged post-hoc — both are
        # deadline failures, never a silent full-length call
        assert "deadline" in envelope.errors[1]
        assert router.cache_info()["router"]["size"] == 0

    def test_tight_budget_abandons_the_retry_backoff(self, sharded_parity):
        """retries=1 with backoff=0.5 would normally sleep 500ms before
        the second attempt; an 80ms budget must skip that sleep (wall
        time bounds it) and report the retry as unaffordable."""
        plan = FaultPlan(seed=0)
        plan.fail_at("shard.query", at=1, times=1, shard=0)
        router = _router(
            sharded_parity, best_effort=True, retries=1, backoff=0.5
        )
        term = router.indexed_terms()[0]
        started = time.perf_counter()
        with inject(plan):
            envelope = router.gather(term, budget=0.080)
        elapsed = time.perf_counter() - started
        assert elapsed < 0.4  # no 500ms backoff happened
        assert envelope.failed == [0]
        assert "no budget left to retry" in envelope.errors[0]
        # the breaker records the genuine failure, not the budget decision
        assert router.breakers[0].consecutive_failures == 1

    def test_deadline_skip_does_not_penalise_the_breaker(self, sharded_parity):
        """A shard skipped for lack of budget never got a chance to fail:
        its breaker must stay closed with zero recorded failures."""
        router = _router(
            sharded_parity, best_effort=True, breaker_threshold=1
        )
        term = router.indexed_terms()[0]
        router.gather(term, budget=0.0)
        assert all(b.state == "closed" for b in router.breakers)
        assert all(b.consecutive_failures == 0 for b in router.breakers)

    def test_generous_budget_stays_exact(self, sharded_parity):
        router = _router(sharded_parity, best_effort=True)
        term = router.indexed_terms()[0]
        envelope = router.gather(term, budget=30.0)
        assert envelope.exact
        assert envelope.ranking == router.rank(term)


class TestGatewayDeadlineHTTP:
    """The header-to-budget path through a live gateway socket."""

    @pytest.fixture()
    def spy_store(self, fitted_cpd, twitter_tiny):
        graph, _truth = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        calls: list[str] = []
        original = store.rank

        def spying(query):
            calls.append(query)
            return original(query)

        store.rank = spying
        return store, calls, graph.vocabulary.word_of(0)

    def test_pre_expired_deadline_rejects_before_any_backend_call(
        self, spy_store
    ):
        store, calls, term = spy_store
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, _headers, body = handle.get(
                f"/rank?q={term}", headers={"X-Deadline-Ms": "0"}
            )
        assert status == 504
        assert "at admission" in body["error"]
        assert calls == []
        assert gateway.stats()["deadline_rejects"] == 1

    def test_roomy_deadline_serves_normally(self, spy_store):
        store, calls, term = spy_store
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, headers, body = handle.get(
                f"/rank?q={term}", headers={"X-Deadline-Ms": "30000"}
            )
        assert status == 200
        assert headers["X-Repro-Exact"] == "1"
        assert body["ranking"]
        assert calls == [term]  # deadline requests bypass the batcher

    def test_malformed_deadline_header_is_a_client_error(self, spy_store):
        store, calls, term = spy_store
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, _headers, body = handle.get(
                f"/rank?q={term}", headers={"X-Deadline-Ms": "soon"}
            )
        assert status == 400
        assert "x-deadline-ms" in body["error"]
        assert calls == []

    def test_strict_router_degradation_is_a_structured_503(
        self, sharded_parity
    ):
        """best_effort=False: a failing shard surfaces as a 503 whose body
        names the shards and reasons — not a bare 500."""
        router = _router(
            sharded_parity, retries=0, breaker_threshold=1
        )
        plan = FaultPlan(seed=0)
        plan.fail_at("shard.query", at=1, times=10_000, shard=0)
        term = router.indexed_terms()[0]
        gateway = GatewayServer(router, port=0)
        with GatewayThread(gateway) as handle:
            with inject(plan):
                status, _headers, body = handle.get(f"/rank?q={term}")
        assert status == 503
        assert body["error"] == "degraded"
        assert "0" in body["failed"]
        assert "InjectedFault" in body["failed"]["0"]


class TestDeadlineUnit:
    def test_remaining_decreases_with_the_clock(self):
        ticks = [10.0]
        deadline = Deadline(0.5, clock=lambda: ticks[0])
        assert deadline.remaining() == pytest.approx(0.5)
        ticks[0] = 10.4
        assert deadline.remaining() == pytest.approx(0.1)
        assert not deadline.expired
        ticks[0] = 10.5
        assert deadline.expired

"""Crash-recovery tests: snapshot generations, WAL replay, the e2e pin.

The ISSUE 6 acceptance bar lives here: ingest a stream durably (WAL +
snapshot generations), kill the process mid-micro-batch with an injected
fault, ``recover()``, and show the recovered store's top-k answers agree
with an identically-seeded uninterrupted run on >=95% of indexed queries
— with zero acknowledged events lost.
"""

import pytest

from repro.core import CPDModel
from repro.resilience import (
    FaultPlan,
    InjectedFault,
    RecoveryError,
    SnapshotCatalog,
    WriteAheadLog,
    inject,
    recover,
    scan_wal,
)
from repro.serving import GraphSummary, ProfileStore
from repro.stream import (
    DocumentArrival,
    IncrementalRefresher,
    MicroBatchIngestor,
    Snapshotter,
    split_for_replay,
)

BATCH = 32
REFRESH_EVERY = 64


def _pipeline(plan, base_fit, *, wal=None, catalog=None):
    """One streaming pipeline over the plan, identically seeded each call."""
    store = ProfileStore.from_fit(base_fit, plan.base_graph)
    refresher = IncrementalRefresher(
        plan.base_graph, base_fit, rng=5, n_sweeps=3
    )
    snapshotter = Snapshotter(
        refresher,
        vocabulary=plan.base_graph.vocabulary,
        base_summary=GraphSummary.from_graph(plan.base_graph),
    )
    on_refresh = None
    if catalog is not None:
        on_refresh = lambda _report: catalog.save(snapshotter)  # noqa: E731
    ingestor = MicroBatchIngestor(
        store,
        refresher,
        batch_size=BATCH,
        refresh_interval=REFRESH_EVERY,
        rng=7,
        wal=wal,
        on_refresh=on_refresh,
    )
    return store, refresher, snapshotter, ingestor


@pytest.fixture(scope="module")
def crash_run(separated_tiny, parity_config, tmp_path_factory):
    """The killed run, its recovery, and the uninterrupted twin."""
    graph, _truth = separated_tiny
    plan = split_for_replay(graph, warm_fraction=0.5)
    base_fit = CPDModel(parity_config, rng=1).fit(plan.base_graph)

    # the uninterrupted twin: same seeds, no faults, runs to completion
    healthy_store, _, healthy_snap, healthy_ingestor = _pipeline(plan, base_fit)
    healthy_ingestor.submit_many(plan.events)
    healthy_ingestor.refresh()
    healthy_snap.hot_swap(healthy_store)

    # the durable run, killed mid-micro-batch on its final flush
    durable = tmp_path_factory.mktemp("durable")
    wal_path = durable / "events.wal"
    catalog = SnapshotCatalog(durable / "snaps")
    # kill the first post-refresh flush whose batch carries documents, so
    # a snapshot generation exists and the recovery tail exercises both
    # the fold-in path (documents) and the surfaced-links path
    flushes_per_refresh = REFRESH_EVERY // BATCH
    kill_flush = None
    for flush in range(flushes_per_refresh + 1, len(plan.events) // BATCH + 1):
        batch = plan.events[(flush - 1) * BATCH : flush * BATCH]
        follows_refresh = (flush - 1) % flushes_per_refresh == 0
        if follows_refresh and any(
            isinstance(event, DocumentArrival) for event in batch
        ):
            kill_flush = flush
            break
    assert kill_flush is not None
    faults = FaultPlan(seed=0)
    faults.fail_at("ingest.apply", at=kill_flush)
    wal = WriteAheadLog(wal_path)
    store, _, _, ingestor = _pipeline(plan, base_fit, wal=wal, catalog=catalog)
    with inject(faults), pytest.raises(InjectedFault):
        ingestor.submit_many(plan.events)
    wal.close()  # the "crash": no refresh, no snapshot, no clean shutdown

    report = recover(durable / "snaps", wal_path=wal_path, rng=11)
    return {
        "plan": plan,
        "wal_path": wal_path,
        "catalog": catalog,
        "killed_ingestor": ingestor,
        "healthy_store": healthy_store,
        "report": report,
    }


class TestCrashRecoveryEndToEnd:
    def test_the_kill_actually_interrupted_the_stream(self, crash_run):
        ingestor, plan = crash_run["killed_ingestor"], crash_run["plan"]
        assert ingestor.stats()["events"] < len(plan.events)

    def test_no_acknowledged_event_is_lost(self, crash_run):
        """Every event the WAL acknowledged is either in the snapshot's
        cursor or replayed from the tail."""
        report = crash_run["report"]
        status = scan_wal(crash_run["wal_path"])
        assert not status.missing
        assert report.cursor.events_ingested + report.events_replayed == (
            status.n_events
        )
        assert report.events_replayed == len(report.tail_events)

    def test_recovered_from_a_real_generation(self, crash_run):
        report = crash_run["report"]
        assert report.generation >= 1
        assert report.skipped_generations == []
        assert report.documents_replayed > 0 or report.links_replayed > 0

    def test_top_k_agreement_at_least_95_percent(self, crash_run):
        """The e2e pin: recovered answers vs the uninterrupted twin."""
        healthy = crash_run["healthy_store"]
        recovered = crash_run["report"].store
        terms = [query.term for query in healthy.indexed_queries()]
        assert len(terms) >= 50  # a real workload, not a handful
        agreements = sum(
            int(recovered.top_k(term, 1)[0] in healthy.top_k(term, 2))
            for term in terms
        )
        agreement = agreements / len(terms)
        assert agreement >= 0.95, (
            f"recovered vs uninterrupted top-k agreement {agreement:.1%} < 95%"
        )

    def test_recovered_store_folds_in_every_tail_document(self, crash_run):
        report = crash_run["report"]
        assert report.foldin is not None
        assert len(report.foldin) == report.documents_replayed
        assert (report.foldin.communities >= 0).all()

    def test_report_timing_and_paths_are_filled(self, crash_run):
        report = crash_run["report"]
        assert report.seconds > 0
        assert report.snapshot_path.endswith(".cpd.npz")
        assert report.wal_status is not None and not report.wal_status.torn


class TestSnapshotCatalog:
    def _fake_snapshotter(self, payload=b"x"):
        class _Snap:
            def save(self, path):
                path.write_bytes(payload)

        return _Snap()

    def test_generations_are_numbered_and_ordered(self, tmp_path):
        catalog = SnapshotCatalog(tmp_path)
        for _ in range(3):
            catalog.save(self._fake_snapshotter())
        assert [gen for gen, _p in catalog.generations()] == [1, 2, 3]
        assert catalog.next_generation() == 4

    def test_retention_prunes_the_oldest(self, tmp_path):
        catalog = SnapshotCatalog(tmp_path, retain=2)
        for _ in range(5):
            catalog.save(self._fake_snapshotter())
        assert [gen for gen, _p in catalog.generations()] == [4, 5]

    def test_foreign_files_are_ignored(self, tmp_path):
        catalog = SnapshotCatalog(tmp_path)
        catalog.save(self._fake_snapshotter())
        (tmp_path / "snapshot-junk.cpd.npz").write_bytes(b"?")
        assert [gen for gen, _p in catalog.generations()] == [1]

    def test_retain_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="retain"):
            SnapshotCatalog(tmp_path, retain=0)

    def test_newest_valid_skips_damage_with_a_record(
        self, crash_run, tmp_path
    ):
        # copy the crash run's generations, then damage the newest
        import shutil

        source = crash_run["catalog"]
        catalog = SnapshotCatalog(tmp_path)
        for _gen, path in source.generations():
            shutil.copy(path, tmp_path / path.name)
        generations = catalog.generations()
        newest_path = generations[-1][1]
        newest_path.write_bytes(newest_path.read_bytes()[:100])
        chosen, skipped = catalog.newest_valid()
        if len(generations) > 1:
            assert chosen is not None
            assert chosen[0] == generations[-2][0]
        else:
            assert chosen is None
        assert [gen for gen, _p, _e in skipped] == [generations[-1][0]]

    def test_recover_raises_with_detail_when_nothing_is_valid(self, tmp_path):
        (tmp_path / "snapshot-000001.cpd.npz").write_bytes(b"garbage")
        with pytest.raises(RecoveryError, match="snapshot-000001"):
            recover(tmp_path)
        with pytest.raises(RecoveryError, match="no generations found"):
            recover(tmp_path / "empty")


class TestRecoverVariants:
    def test_recover_without_wal_is_snapshot_only(self, crash_run):
        report = recover(crash_run["catalog"].directory)
        assert report.wal_status is None
        assert report.tail_events == []
        assert report.store.rank(
            report.store.indexed_queries(1)[0].term
        )

    def test_recover_can_skip_document_application(self, crash_run):
        report = recover(
            crash_run["catalog"].directory,
            wal_path=crash_run["wal_path"],
            apply_documents=False,
        )
        assert report.foldin is None
        # the tail is still surfaced for the caller to replay elsewhere
        assert report.events_replayed == len(report.tail_events)

    def test_recovered_ranks_match_the_snapshot_artifact(self, crash_run):
        """Rank answers derive from the model arrays, so recovery must not
        perturb what the snapshot itself would serve."""
        from repro.core import load_artifact

        report = crash_run["report"]
        frozen = ProfileStore.from_artifact_bundle(
            load_artifact(report.snapshot_path)
        )
        for query in frozen.indexed_queries(5):
            assert report.store.rank(query.term) == frozen.rank(query.term)

"""Tests for knapsack segment allocation (incl. hypothesis feasibility)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import allocate_segments, solve_knapsack


class TestSolveKnapsack:
    def test_exact_fit(self):
        chosen = solve_knapsack(np.array([3.0, 5.0, 2.0]), capacity=5.0)
        total = sum([3.0, 5.0, 2.0][i] for i in chosen)
        assert total <= 5.0 + 1e-9
        assert total >= 5.0 - 0.05  # 5.0 alone or 3+2

    def test_capacity_respected(self):
        workloads = np.array([4.0, 4.0, 4.0])
        chosen = solve_knapsack(workloads, capacity=7.0)
        assert sum(workloads[i] for i in chosen) <= 7.0 * 1.01

    def test_empty_inputs(self):
        assert solve_knapsack(np.array([]), 5.0) == []
        assert solve_knapsack(np.array([1.0]), 0.0) == []

    def test_single_item_larger_than_capacity(self):
        assert solve_knapsack(np.array([10.0]), capacity=1.0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            solve_knapsack(np.array([-1.0]), 1.0)

    @given(
        workloads=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=12),
        capacity=st.floats(1.0, 150.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_feasibility_property(self, workloads, capacity):
        workloads = np.asarray(workloads)
        chosen = solve_knapsack(workloads, capacity)
        assert len(set(chosen)) == len(chosen)  # no duplicates
        # scaled-integer rounding can overshoot by at most one bucket
        assert sum(workloads[i] for i in chosen) <= capacity * 1.01 + 0.01


class TestSolveKnapsackResolution:
    def test_coarse_resolution_still_feasible(self):
        workloads = np.array([0.3, 0.31, 0.29, 0.4])
        chosen = solve_knapsack(workloads, capacity=0.6, resolution=10)
        total = workloads[chosen].sum()
        # coarse buckets may overshoot by at most one bucket (capacity/res)
        assert total <= 0.6 * 1.1 + 1e-9

    def test_fine_resolution_finds_exact_subset(self):
        workloads = np.array([2.0, 3.0, 7.0])
        chosen = solve_knapsack(workloads, capacity=5.0, resolution=10_000)
        assert sorted(chosen) == [0, 1]

    def test_tiny_workloads_each_occupy_a_slot(self):
        # zero-ish items must not all be crammed into one worker's knapsack
        workloads = np.full(2000, 1e-12)
        chosen = solve_knapsack(workloads, capacity=1.0, resolution=1000)
        assert 0 < len(chosen) <= 1001


class TestAllocateSegments:
    def test_every_segment_assigned_once(self):
        workloads = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        allocation = allocate_segments(workloads, n_workers=2)
        assigned = [s for worker in allocation.assignments for s in worker]
        assert sorted(assigned) == list(range(5))

    def test_balanced_loads(self):
        workloads = np.array([4.0, 4.0, 4.0, 4.0])
        allocation = allocate_segments(workloads, n_workers=2)
        np.testing.assert_allclose(allocation.estimated_loads, [8.0, 8.0])
        assert allocation.imbalance() == pytest.approx(1.0)

    def test_single_worker_gets_everything(self):
        allocation = allocate_segments(np.array([1.0, 2.0]), n_workers=1)
        assert allocation.assignments == [[0, 1]]

    def test_more_workers_than_segments(self):
        allocation = allocate_segments(np.array([3.0]), n_workers=4)
        assigned = [s for worker in allocation.assignments for s in worker]
        assert assigned == [0]

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            allocate_segments(np.array([1.0]), 0)

    def test_skewed_workloads_rebalanced(self):
        workloads = np.array([10.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        allocation = allocate_segments(workloads, n_workers=3)
        # the heavy segment must sit alone-ish; no worker should carry
        # more than the heavy segment plus a little
        assert allocation.estimated_loads.max() <= 11.0

    @given(
        workloads=st.lists(st.floats(0.1, 50.0), min_size=1, max_size=10),
        n_workers=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_property(self, workloads, n_workers):
        workloads = np.asarray(workloads)
        allocation = allocate_segments(workloads, n_workers)
        assigned = sorted(s for worker in allocation.assignments for s in worker)
        assert assigned == list(range(len(workloads)))
        assert len(allocation.assignments) == n_workers
        np.testing.assert_allclose(
            allocation.estimated_loads.sum(), workloads.sum(), rtol=1e-9
        )

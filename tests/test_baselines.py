"""Tests for the baseline implementations (PMTLM, WTM, CRM, COLD, +Agg)."""

import numpy as np
import pytest

from repro.baselines import (
    COLD,
    COLDAgg,
    CRM,
    CRMAgg,
    PMTLM,
    WTM,
    aggregate_content_profile,
    aggregate_diffusion_profile,
)
from repro.evaluation import auc_score, diffusion_auc_folds
from repro.diffusion import sample_negative_diffusion_pairs


def links_arrays(graph):
    src = np.asarray([l.source_doc for l in graph.diffusion_links])
    tgt = np.asarray([l.target_doc for l in graph.diffusion_links])
    t = np.asarray([l.timestamp for l in graph.diffusion_links])
    return src, tgt, t


@pytest.fixture(scope="module")
def fitted_pmtlm(dblp_tiny):
    graph, _ = dblp_tiny
    return PMTLM(4, lda_iterations=15).fit(graph, rng=0)


@pytest.fixture(scope="module")
def fitted_wtm(dblp_tiny):
    graph, _ = dblp_tiny
    return WTM().fit(graph, rng=0)


@pytest.fixture(scope="module")
def fitted_crm(dblp_tiny):
    graph, _ = dblp_tiny
    return CRM(4, n_iterations=20).fit(graph, rng=0)


@pytest.fixture(scope="module")
def fitted_cold(dblp_tiny):
    graph, _ = dblp_tiny
    return COLD(4, 8, n_iterations=8, rho=0.5, alpha=0.5).fit(graph, rng=0)


class TestPMTLM:
    def test_memberships_normalised(self, fitted_pmtlm, dblp_tiny):
        graph, _ = dblp_tiny
        pi = fitted_pmtlm.memberships()
        assert pi.shape == (graph.n_users, 4)
        np.testing.assert_allclose(pi.sum(axis=1), 1.0, rtol=1e-6)

    def test_diffusion_scores_beat_chance(self, fitted_pmtlm, dblp_tiny, rng):
        graph, _ = dblp_tiny
        folded = diffusion_auc_folds(graph, fitted_pmtlm.diffusion_scores, rng=rng)
        assert folded.mean > 0.5

    def test_friendship_scores_default_similarity(self, fitted_pmtlm):
        scores = fitted_pmtlm.friendship_scores(np.array([0, 1]), np.array([2, 3]))
        assert scores.shape == (2,)

    def test_profiles_exposed(self, fitted_pmtlm):
        profiles = fitted_pmtlm.profiles()
        assert profiles is not None
        assert profiles.eta.shape == (4, 4, 4)
        np.testing.assert_allclose(profiles.theta.sum(axis=1), 1.0, rtol=1e-6)

    def test_requires_fit(self, dblp_tiny):
        graph, _ = dblp_tiny
        model = PMTLM(4)
        with pytest.raises(RuntimeError):
            model.diffusion_scores(np.array([0]), np.array([1]), np.array([0]))


class TestWTM:
    def test_no_membership(self, fitted_wtm):
        assert fitted_wtm.memberships() is None
        with pytest.raises(NotImplementedError):
            fitted_wtm.friendship_scores(np.array([0]), np.array([1]))

    def test_diffusion_beats_chance(self, fitted_wtm, dblp_tiny, rng):
        graph, _ = dblp_tiny
        src, tgt, t = links_arrays(graph)
        positives = fitted_wtm.diffusion_scores(src, tgt, t)
        negatives_raw = sample_negative_diffusion_pairs(graph, len(src), rng)
        ns = np.array([n[0] for n in negatives_raw])
        nt = np.array([n[1] for n in negatives_raw])
        ntt = np.array([n[2] for n in negatives_raw])
        negatives = fitted_wtm.diffusion_scores(ns, nt, ntt)
        assert auc_score(positives, negatives) > 0.55

    def test_scores_are_probabilities(self, fitted_wtm, dblp_tiny):
        graph, _ = dblp_tiny
        src, tgt, t = links_arrays(graph)
        scores = fitted_wtm.diffusion_scores(src[:10], tgt[:10], t[:10])
        assert np.all((scores >= 0) & (scores <= 1))


class TestCRM:
    def test_memberships_valid(self, fitted_crm, dblp_tiny):
        graph, _ = dblp_tiny
        pi = fitted_crm.memberships()
        assert pi.shape == (graph.n_users, 4)
        np.testing.assert_allclose(pi.sum(axis=1), 1.0, rtol=1e-6)
        assert np.all(pi > 0)  # smoothed

    def test_blocks_better_than_chance(self, fitted_crm, dblp_tiny, rng):
        """CRM must recover enough block structure to predict friendships."""
        from repro.evaluation import friendship_auc_folds

        graph, _ = dblp_tiny
        folded = friendship_auc_folds(graph, fitted_crm.friendship_scores, rng=rng)
        assert folded.mean > 0.6

    def test_roles_nonnegative(self, fitted_crm):
        assert np.all(fitted_crm.roles() >= 0)

    def test_diffusion_scores_shape(self, fitted_crm, dblp_tiny):
        graph, _ = dblp_tiny
        src, tgt, t = links_arrays(graph)
        scores = fitted_crm.diffusion_scores(src[:5], tgt[:5], t[:5])
        assert scores.shape == (5,)


class TestCOLD:
    def test_ignores_friendship_by_config(self, fitted_cold):
        assert fitted_cold.config.model_friendship is False
        assert fitted_cold.config.use_topic_factor is False
        assert fitted_cold.config.use_individual_factor is False

    def test_profiles_exposed(self, fitted_cold):
        profiles = fitted_cold.profiles()
        assert profiles.eta.sum() == pytest.approx(1.0)

    def test_memberships(self, fitted_cold, dblp_tiny):
        graph, _ = dblp_tiny
        assert fitted_cold.memberships().shape == (graph.n_users, 4)


class TestAggregation:
    def test_eq20_content_profile(self, dblp_tiny, rng):
        graph, _ = dblp_tiny
        memberships = rng.dirichlet(np.ones(3), size=graph.n_users)
        mixtures = rng.dirichlet(np.ones(5), size=graph.n_documents)
        theta = aggregate_content_profile(graph, memberships, mixtures)
        assert theta.shape == (3, 5)
        np.testing.assert_allclose(theta.sum(axis=1), 1.0, rtol=1e-9)

    def test_eq21_diffusion_profile(self, dblp_tiny, rng):
        graph, _ = dblp_tiny
        memberships = rng.dirichlet(np.ones(3), size=graph.n_users)
        mixtures = rng.dirichlet(np.ones(5), size=graph.n_documents)
        eta = aggregate_diffusion_profile(graph, memberships, mixtures)
        assert eta.shape == (3, 3, 5)
        assert eta.sum() == pytest.approx(1.0)

    def test_crm_agg_pipeline(self, dblp_tiny):
        graph, _ = dblp_tiny
        model = CRMAgg(4, 8, n_iterations=10).fit(graph, rng=0)
        profiles = model.profiles()
        assert profiles is not None
        np.testing.assert_allclose(profiles.theta.sum(axis=1), 1.0, rtol=1e-9)
        scores = model.diffusion_scores(*links_arrays(graph))
        assert scores.shape == (graph.n_diffusion_links,)

    def test_cold_agg_pipeline(self, dblp_tiny):
        graph, _ = dblp_tiny
        model = COLDAgg(4, 8, n_iterations=5, rho=0.5, alpha=0.5).fit(graph, rng=0)
        assert model.profiles() is not None
        assert model.memberships() is not None

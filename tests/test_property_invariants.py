"""Cross-cutting property tests on library invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import graph_from_dict, graph_to_dict
from repro.sampling import normalize, smoothed_probability
from repro.text import stem, tokenize

_WORDS = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15)


class TestStemmerProperties:
    @given(word=_WORDS)
    @settings(max_examples=200, deadline=None)
    def test_converges_to_fixpoint(self, word):
        """Porter stemming is famously not idempotent (e.g. 'aase' -> 'aas'
        -> 'aa'), but repeated application must converge fast: each pass
        never lengthens the word, so a fixpoint is reached within a few
        iterations and no oscillation is possible."""
        current = word
        for _ in range(6):
            following = stem(current)
            assert len(following) <= len(current)
            if following == current:
                break
            current = following
        assert stem(current) == current

    @given(word=_WORDS)
    @settings(max_examples=100, deadline=None)
    def test_never_longer(self, word):
        assert len(stem(word)) <= len(word)

    @given(word=_WORDS)
    @settings(max_examples=100, deadline=None)
    def test_nonempty_output(self, word):
        assert stem(word)


class TestTokenizerProperties:
    @given(text=st.text(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_never_crashes_and_lowercases(self, text):
        tokens = tokenize(text)
        assert all(token == token.lower() for token in tokens)

    @given(text=st.text(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_tokens_have_no_whitespace(self, text):
        assert all(" " not in token for token in tokenize(text))


class TestEstimatorProperties:
    @given(
        counts=st.lists(st.integers(0, 1000), min_size=1, max_size=20),
        prior=st.floats(0.01, 10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_smoothed_probability_simplex(self, counts, prior):
        out = smoothed_probability(np.asarray(counts, dtype=float), prior)
        assert out.sum() == pytest.approx(1.0)
        assert np.all(out > 0)

    @given(
        counts=st.lists(st.integers(0, 100), min_size=2, max_size=10),
        prior=st.floats(0.01, 5.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_smoothing_preserves_order(self, counts, prior):
        counts = np.asarray(counts, dtype=float)
        out = smoothed_probability(counts, prior)
        for i in range(len(counts)):
            for j in range(len(counts)):
                if counts[i] > counts[j]:
                    assert out[i] > out[j]

    @given(
        values=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_normalize_simplex(self, values):
        out = normalize(np.asarray(values))
        assert out.sum() == pytest.approx(1.0)


class TestGraphSerializationProperties:
    def test_double_roundtrip_stable(self, twitter_tiny):
        """Serialise twice: the payloads must be byte-identical."""
        graph, _ = twitter_tiny
        once = graph_to_dict(graph)
        twice = graph_to_dict(graph_from_dict(once))
        assert once == twice

    @pytest.mark.parametrize("missing", ["vocabulary", "users", "documents"])
    def test_missing_sections_rejected(self, twitter_tiny, missing):
        graph, _ = twitter_tiny
        payload = graph_to_dict(graph)
        del payload[missing]
        with pytest.raises((KeyError, ValueError, TypeError)):
            graph_from_dict(payload)

    def test_corrupt_link_rejected(self, twitter_tiny):
        graph, _ = twitter_tiny
        payload = graph_to_dict(graph)
        payload["friendship_links"][0] = [0, 10**6]
        with pytest.raises(ValueError):
            graph_from_dict(payload)


class TestResultInvariants:
    def test_eta_simplex_and_profiles_consistent(self, fitted_cpd):
        assert fitted_cpd.eta.sum() == pytest.approx(1.0)
        # openness values derive from eta rows consistently
        for community in range(fitted_cpd.n_communities):
            outgoing = fitted_cpd.eta[community].sum()
            internal = fitted_cpd.eta[community, community].sum()
            if outgoing > 0:
                expected = 1.0 - internal / outgoing
                assert fitted_cpd.openness(community) == pytest.approx(expected)

    def test_membership_rows_simplex(self, fitted_cpd):
        np.testing.assert_allclose(fitted_cpd.pi.sum(axis=1), 1.0, rtol=1e-9)
        assert np.all(fitted_cpd.pi > 0)

"""Tests for the CPD collapsed Gibbs sampler."""

import numpy as np
import pytest

from repro.core import CPDConfig, DiffusionParameters
from repro.core.gibbs import CPDSampler


@pytest.fixture()
def sampler(twitter_tiny, tiny_config):
    graph, _ = twitter_tiny
    params = DiffusionParameters.initial(
        tiny_config.n_communities, tiny_config.n_topics
    )
    return CPDSampler(graph, tiny_config, params, rng=0)


class TestInitialisation:
    def test_all_documents_assigned(self, sampler):
        assert np.all(sampler.state.doc_topic >= 0)
        sampler.state.check_consistency()

    def test_link_structures(self, sampler, twitter_tiny):
        graph, _ = twitter_tiny
        assert sampler.n_friend_links == graph.n_friendship_links
        assert sampler.n_diff_links == graph.n_diffusion_links
        assert sampler.e_features.shape == (graph.n_diffusion_links, 4)

    def test_augmentation_starts_at_pg_mean(self, sampler):
        np.testing.assert_allclose(sampler.lambdas, 0.25)
        np.testing.assert_allclose(sampler.deltas, 0.25)

    def test_popularity_tracks_assignments(self, sampler, twitter_tiny):
        graph, _ = twitter_tiny
        assert sampler.popularity.counts_matrix().sum() == graph.n_documents


class TestSweep:
    def test_sweep_keeps_consistency(self, sampler):
        sampler.sweep_documents()
        sampler.state.check_consistency()
        assert np.all(sampler.state.doc_topic >= 0)

    def test_sweep_subset(self, sampler):
        before = sampler.state.doc_topic.copy()
        sampler.sweep_documents(np.array([0, 1, 2]))
        # untouched documents keep their assignments
        np.testing.assert_array_equal(
            sampler.state.doc_topic[3:], before[3:]
        )

    def test_sweep_accepts_float_and_list_doc_ids(self, sampler):
        sampler.sweep_documents(np.array([0.0, 1.0]))
        sampler.sweep_documents([2, 3])
        sampler.state.check_consistency()

    def test_popularity_in_sync_after_sweep(self, sampler, twitter_tiny):
        graph, _ = twitter_tiny
        sampler.sweep_documents()
        counts = sampler.popularity.counts_matrix()
        assert counts.sum() == graph.n_documents
        # spot-check one (t, z) cell against the assignment vectors
        doc_times = np.array([d.timestamp for d in graph.documents])
        t, z = doc_times[0], sampler.state.doc_topic[0]
        expected = int(
            ((doc_times == t) & (sampler.state.doc_topic == z)).sum()
        )
        assert counts[t, z] == expected

    def test_fixed_communities_never_move(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        fixed = np.zeros(graph.n_documents, dtype=np.int64)
        params = DiffusionParameters.initial(4, 8)
        sampler = CPDSampler(graph, tiny_config, params, rng=0, fixed_communities=fixed)
        sampler.sweep_documents()
        np.testing.assert_array_equal(sampler.state.doc_community, 0)


class TestAugmentation:
    def test_lambda_draws_positive(self, sampler):
        sampler.sample_lambdas()
        assert np.all(sampler.lambdas > 0)
        assert sampler.lambdas.shape == (sampler.n_friend_links,)

    def test_delta_draws_positive(self, sampler):
        sampler.sample_deltas()
        assert np.all(sampler.deltas > 0)

    def test_friendship_dots_in_unit_range(self, sampler):
        dots = sampler.friendship_dots()
        assert np.all(dots >= 0.0) and np.all(dots <= 1.0)


class TestDiffusionScoring:
    def test_logits_shape(self, sampler):
        logits = sampler.diffusion_logits()
        assert logits.shape == (sampler.n_diff_links,)
        assert np.all(np.isfinite(logits))

    def test_components_zeroed_by_flags(self, twitter_tiny):
        graph, _ = twitter_tiny
        config = CPDConfig(
            n_communities=4, n_topics=8, rho=0.5, alpha=0.5,
            use_topic_factor=False, use_individual_factor=False,
        )
        params = DiffusionParameters.initial(4, 8)
        sampler = CPDSampler(graph, config, params, rng=0)
        components = sampler.diffusion_components(
            sampler.e_src, sampler.e_tgt, sampler.e_time
        )
        np.testing.assert_array_equal(components["popularity"], 0.0)
        np.testing.assert_array_equal(components["features"], 0.0)

    def test_empty_batch(self, sampler):
        components = sampler.diffusion_components(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert components["community"].shape == (0,)


class TestLinkCSRStructures:
    def test_friend_csr_covers_both_endpoints(self, sampler, twitter_tiny):
        graph, _ = twitter_tiny
        assert sampler.f_csr_indptr[-1] == 2 * graph.n_friendship_links
        assert len(sampler.f_csr_neighbor) == 2 * graph.n_friendship_links
        # every user's slice holds exactly the links incident to them
        for user in range(graph.n_users):
            start, end = sampler.f_csr_indptr[user], sampler.f_csr_indptr[user + 1]
            for position in range(start, end):
                link = int(sampler.f_csr_link[position])
                neighbor = int(sampler.f_csr_neighbor[position])
                endpoints = {int(sampler.f_src[link]), int(sampler.f_tgt[link])}
                assert user in endpoints
                assert neighbor in endpoints or neighbor == user

    def test_diffusion_csr_covers_both_endpoints(self, sampler, twitter_tiny):
        graph, _ = twitter_tiny
        assert sampler.d_csr_indptr[-1] == 2 * graph.n_diffusion_links
        for doc in range(graph.n_documents):
            start, end = sampler.d_csr_indptr[doc], sampler.d_csr_indptr[doc + 1]
            for position in range(start, end):
                link = int(sampler.d_csr_link[position])
                if sampler.d_csr_is_source[position]:
                    assert int(sampler.e_src[link]) == doc
                    assert int(sampler.d_csr_other[position]) == int(sampler.e_tgt[link])
                else:
                    assert int(sampler.e_tgt[link]) == doc
                    assert int(sampler.d_csr_other[position]) == int(sampler.e_src[link])

    def test_outgoing_csr_matches_sources(self, sampler, twitter_tiny):
        graph, _ = twitter_tiny
        assert sampler.dout_csr_indptr[-1] == graph.n_diffusion_links
        for doc in range(graph.n_documents):
            start, end = sampler.dout_csr_indptr[doc], sampler.dout_csr_indptr[doc + 1]
            links = sampler.dout_csr_link[start:end]
            np.testing.assert_array_equal(sampler.e_src[links], doc)
            np.testing.assert_array_equal(
                sampler.dout_csr_target[start:end], sampler.e_tgt[links]
            )


class TestEtaAggregation:
    def test_vectorized_matches_per_link_loop(self, sampler):
        sampler.sweep_documents()
        eta = sampler.aggregate_eta()
        config = sampler.config
        state = sampler.state
        counts = np.full(
            (config.n_communities, config.n_communities, config.n_topics),
            config.eta_smoothing,
        )
        for index in range(sampler.n_diff_links):
            c_source = int(state.doc_community[sampler.e_src[index]])
            c_target = int(state.doc_community[sampler.e_tgt[index]])
            z_source = int(state.doc_topic[sampler.e_src[index]])
            counts[c_source, c_target, z_source] += 1.0
        np.testing.assert_allclose(eta, counts / counts.sum())

    def test_eta_is_distribution(self, sampler):
        eta = sampler.aggregate_eta()
        assert eta.shape == (4, 4, 8)
        assert eta.sum() == pytest.approx(1.0)
        assert np.all(eta > 0)  # smoothing keeps every cell positive

    def test_eta_reflects_assignments(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        params = DiffusionParameters.initial(4, 8)
        sampler = CPDSampler(graph, tiny_config, params, rng=0)
        # force all docs into community 0 / topic 0: mass concentrates there
        snapshot = {
            "doc_community": np.zeros(graph.n_documents, dtype=np.int64),
            "doc_topic": np.zeros(graph.n_documents, dtype=np.int64),
            "lambdas": sampler.lambdas,
            "deltas": sampler.deltas,
        }
        sampler.load_snapshot(snapshot)
        eta = sampler.aggregate_eta()
        assert eta[0, 0, 0] == eta.max()


class TestSnapshots:
    def test_export_load_roundtrip(self, sampler):
        sampler.sweep_documents()
        snapshot = sampler.export_snapshot()
        theta = sampler.state.theta_hat().copy()
        sampler.load_snapshot(snapshot)
        np.testing.assert_allclose(sampler.state.theta_hat(), theta)
        sampler.state.check_consistency()

    def test_apply_assignments(self, sampler):
        doc_ids = np.array([0, 1])
        sampler.apply_assignments(doc_ids, np.array([2, 3]), np.array([5, 6]))
        assert sampler.state.doc_community[0] == 2
        assert sampler.state.doc_topic[1] == 6
        sampler.state.check_consistency()
        counts = sampler.popularity.counts_matrix()
        assert counts.sum() == sampler.graph.n_documents

    def test_apply_assignments_empty_batch(self, sampler):
        before = sampler.state.doc_topic.copy()
        sampler.apply_assignments(np.zeros(0, dtype=np.int64), np.zeros(0), np.zeros(0))
        np.testing.assert_array_equal(sampler.state.doc_topic, before)

    def test_apply_assignments_keeps_popularity_in_sync(self, sampler, twitter_tiny):
        graph, _ = twitter_tiny
        doc_ids = np.arange(graph.n_documents)
        communities = (sampler.state.doc_community + 1) % 4
        topics = (sampler.state.doc_topic + 2) % 8
        sampler.apply_assignments(doc_ids, communities, topics)
        sampler.state.check_consistency()
        doc_times = np.array([d.timestamp for d in graph.documents])
        expected = np.zeros_like(sampler.popularity.counts_matrix())
        np.add.at(expected, (doc_times, topics), 1.0)
        np.testing.assert_array_equal(sampler.popularity.counts_matrix(), expected)


class TestHeterogeneityModes:
    def test_similarity_mode_flags(self, twitter_tiny):
        graph, _ = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, heterogeneity=False, rho=0.5, alpha=0.5)
        params = DiffusionParameters.initial(4, 8)
        sampler = CPDSampler(graph, config, params, rng=0)
        assert sampler.uses_similarity_diffusion
        assert not sampler.uses_profile_diffusion
        sampler.sweep_documents()
        sampler.sample_deltas()
        sampler.state.check_consistency()

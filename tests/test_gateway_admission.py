"""Admission control and request deadlines: the gateway's overload core.

The admission controller's contract is exact, not statistical: at most
``max_in_flight`` requests hold a slot at any instant, at most
``max_queue`` wait, and everything else sheds immediately. These tests
pin the invariant with direct coroutine choreography (no sockets).
"""

import asyncio

import pytest

from repro.gateway import AdmissionController, Deadline, ShedError


def run(coro):
    return asyncio.run(coro)


class TestAcquireRelease:
    def test_grants_immediately_under_the_limit(self):
        async def body():
            admission = AdmissionController(max_in_flight=2, max_queue=0)
            await admission.acquire()
            await admission.acquire()
            assert admission.in_flight == 2
            admission.release()
            admission.release()
            assert admission.in_flight == 0

        run(body())

    def test_sheds_when_slots_and_queue_are_full(self):
        async def body():
            admission = AdmissionController(max_in_flight=1, max_queue=0)
            await admission.acquire()
            with pytest.raises(ShedError) as excinfo:
                await admission.acquire()
            assert admission.shed == 1
            assert excinfo.value.retry_after == 1.0

        run(body())

    def test_queued_request_admits_on_release_fifo(self):
        async def body():
            admission = AdmissionController(max_in_flight=1, max_queue=2)
            await admission.acquire()
            order: list[int] = []

            async def waiter(tag: int) -> None:
                await admission.acquire()
                order.append(tag)
                admission.release()

            first = asyncio.create_task(waiter(1))
            await asyncio.sleep(0)
            second = asyncio.create_task(waiter(2))
            await asyncio.sleep(0)
            assert admission.queued == 2
            admission.release()
            await asyncio.gather(first, second)
            assert order == [1, 2]

        run(body())

    def test_direct_handoff_never_dips_in_flight(self):
        """A release with waiters hands the slot over atomically — the
        in-flight count must not drop to 0 between requests (that gap is
        exactly what would let a flood overshoot the limit)."""

        async def body():
            admission = AdmissionController(max_in_flight=1, max_queue=4)
            await admission.acquire()

            async def held() -> None:
                await admission.acquire()
                assert admission.in_flight == 1
                admission.release()

            task = asyncio.create_task(held())
            await asyncio.sleep(0)
            admission.release()
            assert admission.in_flight == 1  # handed off, not released
            await task
            assert admission.in_flight == 0
            assert admission.peak_in_flight == 1

        run(body())

    def test_peak_in_flight_is_an_exact_bound_under_churn(self):
        async def body():
            admission = AdmissionController(max_in_flight=3, max_queue=50)

            async def request() -> None:
                await admission.acquire()
                assert admission.in_flight <= 3
                await asyncio.sleep(0)
                admission.release()

            await asyncio.gather(*(request() for _ in range(40)))
            assert admission.peak_in_flight <= 3
            assert admission.admitted == 40
            assert admission.shed == 0
            assert admission.in_flight == 0

        run(body())

    def test_cancelled_waiter_leaves_the_queue(self):
        async def body():
            admission = AdmissionController(max_in_flight=1, max_queue=1)
            await admission.acquire()
            task = asyncio.create_task(admission.acquire())
            await asyncio.sleep(0)
            assert admission.queued == 1
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert admission.queued == 0
            # the held slot is still intact and releasable
            admission.release()
            assert admission.in_flight == 0

        run(body())

    def test_validation(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            AdmissionController(max_in_flight=0)
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(max_queue=-1)


class TestWaitIdle:
    def test_returns_immediately_when_idle(self):
        async def body():
            admission = AdmissionController()
            await asyncio.wait_for(admission.wait_idle(), timeout=1)

        run(body())

    def test_blocks_until_the_last_slot_releases(self):
        async def body():
            admission = AdmissionController(max_in_flight=2)
            await admission.acquire()
            await admission.acquire()
            done = asyncio.Event()

            async def drain() -> None:
                await admission.wait_idle()
                done.set()

            task = asyncio.create_task(drain())
            await asyncio.sleep(0)
            admission.release()
            await asyncio.sleep(0)
            assert not done.is_set()  # one request still holds a slot
            admission.release()
            await asyncio.wait_for(task, timeout=1)
            assert done.is_set()

        run(body())


class TestDeadline:
    def test_no_header_no_default_is_unbounded(self):
        deadline = Deadline.from_header(None)
        assert deadline.cutoff is None
        assert deadline.remaining() is None
        assert not deadline.expired

    def test_no_header_falls_back_to_the_default_budget(self):
        ticks = [0.0]
        deadline = Deadline.from_header(None, 0.25, clock=lambda: ticks[0])
        assert deadline.remaining() == pytest.approx(0.25)
        ticks[0] = 0.3
        assert deadline.expired

    def test_header_is_milliseconds(self):
        ticks = [0.0]
        deadline = Deadline.from_header("80", clock=lambda: ticks[0])
        assert deadline.remaining() == pytest.approx(0.080)
        ticks[0] = 0.081
        assert deadline.expired

    def test_malformed_header_raises(self):
        with pytest.raises(ValueError):
            Deadline.from_header("soon")

    def test_zero_budget_is_expired_at_birth(self):
        assert Deadline.from_header("0").expired

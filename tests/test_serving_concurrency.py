"""Thread-safety of the serving layer under the gateway's executor.

The gateway runs store/router calls on a thread pool, so concurrent rank
calls, memo builds and hot swaps must be safe. These tests hammer the
structures from many threads and pin that the answers match single-thread
service exactly — a lock bug here shows up as a torn memo or a wrong
ranking, not (only) as a crash.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serving import ProfileStore
from repro.shard import ShardRouter


@pytest.fixture()
def store(fitted_cpd, twitter_tiny):
    """A fresh (cold-cache) store per test: builds race only on first use."""
    graph, _truth = twitter_tiny
    return ProfileStore.from_fit(fitted_cpd, graph)


@pytest.fixture()
def terms(store):
    return list(store.query_index())[:8]


class TestConcurrentRank:
    def test_eight_thread_hammer_matches_serial_answers(self, store, terms):
        """The satellite regression test: 8 threads x 50 ranks on a cold
        store — every answer must equal the serial one."""
        serial = {term: store.rank(term) for term in terms}
        cold = ProfileStore.from_fit(store.result, store.graph)
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            try:
                for i in range(50):
                    term = terms[(seed + i) % len(terms)]
                    assert cold.rank(term) == serial[term]
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []

    def test_concurrent_memo_builds_are_consistent(self, store):
        """First-touch memo builds (labels, members, popularity) raced
        from many threads must all see one coherent value."""
        with ThreadPoolExecutor(max_workers=8) as pool:
            labels = list(pool.map(lambda _: store.labels(3), range(16)))
            members = list(
                pool.map(lambda _: store.community_members(3), range(16))
            )
        assert all(l == labels[0] for l in labels)
        first = members[0]
        for other in members:
            assert all(
                (a == b).all() for a, b in zip(first, other)
            )

    def test_rank_many_matches_rank(self, store, terms):
        batch = store.rank_many(terms + terms[:3])  # duplicates batch fine
        for term, ranking in zip(terms + terms[:3], batch):
            assert ranking == store.rank(term)

    def test_rank_many_rejects_unknown_terms_wholesale(self, store, terms):
        with pytest.raises(KeyError):
            store.rank_many([terms[0], "zzz-not-a-word"])


class TestConcurrentHotSwap:
    def test_rank_during_hot_swap_never_tears(self, store, terms, fitted_cpd):
        """Readers racing a hot swap observe old-or-new answers, never an
        exception or a mixture (same result swapped in: answers must stay
        byte-identical throughout)."""
        serial = {term: store.rank(term) for term in terms}
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    for term in terms:
                        assert store.rank(term) == serial[term]
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(10):
                store.hot_swap(fitted_cpd)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
        assert errors == []


class TestConcurrentRouter:
    def test_eight_thread_router_hammer(self, sharded_parity):
        router = ShardRouter(
            [
                ProfileStore.from_fit(result, part.graph)
                for result, part in zip(
                    sharded_parity.results, sharded_parity.plan.shards
                )
            ],
            [part.users for part in sharded_parity.plan.shards],
            sharded_parity.alignment,
        )
        terms = router.indexed_terms()[:4]
        serial = {term: router.rank(term) for term in terms}
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            try:
                for i in range(25):
                    term = terms[(seed + i) % len(terms)]
                    assert router.rank(term) == serial[term]
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []

"""Tests for repro.graph.vocabulary."""

import numpy as np
import pytest

from repro.graph import Vocabulary


class TestAddAndLookup:
    def test_ids_are_dense(self):
        vocab = Vocabulary()
        assert vocab.add("alpha") == 0
        assert vocab.add("beta") == 1
        assert len(vocab) == 2

    def test_duplicate_add_bumps_frequency(self):
        vocab = Vocabulary()
        vocab.add("alpha")
        assert vocab.add("alpha") == 0
        assert vocab.frequency("alpha") == 2

    def test_id_word_roundtrip(self):
        vocab = Vocabulary()
        vocab.add("alpha")
        assert vocab.word_of(vocab.id_of("alpha")) == "alpha"

    def test_unknown_word_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().id_of("ghost")

    def test_contains(self):
        vocab = Vocabulary()
        vocab.add("alpha")
        assert "alpha" in vocab and "beta" not in vocab

    def test_iteration_order(self):
        vocab = Vocabulary()
        for word in ("c", "a", "b"):
            vocab.add(word)
        assert list(vocab) == ["c", "a", "b"]


class TestFreeze:
    def test_frozen_rejects_new_words(self):
        vocab = Vocabulary()
        vocab.add("alpha")
        vocab.freeze()
        assert vocab.frozen
        with pytest.raises(KeyError):
            vocab.add("beta")

    def test_frozen_still_counts_existing(self):
        vocab = Vocabulary()
        vocab.add("alpha")
        vocab.freeze()
        assert vocab.add("alpha") == 0


class TestEncode:
    def test_growing_encode(self):
        vocab = Vocabulary()
        ids = vocab.encode(["a", "b", "a"])
        np.testing.assert_array_equal(ids, [0, 1, 0])

    def test_non_growing_encode_skips_unknown(self):
        vocab = Vocabulary()
        vocab.add("a")
        ids = vocab.encode(["a", "zzz"], grow=False)
        np.testing.assert_array_equal(ids, [0])

    def test_decode(self):
        vocab = Vocabulary()
        vocab.encode(["x", "y"])
        assert vocab.decode([1, 0]) == ["y", "x"]


class TestTopWordsAndSerialization:
    def test_top_words(self):
        vocab = Vocabulary()
        vocab.encode(["a", "a", "b", "c", "a", "b"])
        top = vocab.top_words(2)
        assert top[0] == ("a", 3)
        assert top[1] == ("b", 2)

    def test_from_token_lists(self):
        vocab = Vocabulary.from_token_lists([["b", "a"], ["a"]])
        assert len(vocab) == 2
        assert vocab.frequency("a") == 2

    def test_dict_roundtrip(self):
        vocab = Vocabulary.from_token_lists([["x", "y", "x"]])
        clone = Vocabulary.from_dict(vocab.to_dict())
        assert list(clone) == list(vocab)
        assert clone.frequency("x") == vocab.frequency("x")

"""Tests for the preprocessing pipeline and stop-word lists."""

from repro.text import (
    FUNCTION_WORDS,
    STOP_WORDS,
    PreprocessOptions,
    Preprocessor,
    is_function_word,
    is_stop_word,
)


class TestStopWords:
    def test_common_stop_words_present(self):
        for word in ("the", "and", "of", "is"):
            assert is_stop_word(word)

    def test_content_words_absent(self):
        for word in ("network", "database", "learning"):
            assert not is_stop_word(word)

    def test_function_words_superset(self):
        assert STOP_WORDS <= FUNCTION_WORDS

    def test_twitter_noise_removed(self):
        assert is_stop_word("rt")

    def test_function_word_examples(self):
        assert is_function_word("really")
        assert not is_function_word("query")


class TestPreprocessor:
    def test_full_pipeline(self):
        pre = Preprocessor()
        tokens = pre.process_document("The networks are learning quickly! #AI")
        assert "#ai" in tokens
        assert "network" in tokens  # stemmed plural
        assert "the" not in tokens

    def test_min_word_filter(self):
        pre = Preprocessor()
        assert not pre.is_document_kept(["one"])
        assert pre.is_document_kept(["one", "two"])

    def test_stemming_can_be_disabled(self):
        pre = Preprocessor(PreprocessOptions(apply_stemming=False))
        tokens = pre.process_document("deep networks")
        assert "networks" in tokens

    def test_stop_word_removal_can_be_disabled(self):
        pre = Preprocessor(
            PreprocessOptions(remove_stop_words=False, pos_filter=False, apply_stemming=False)
        )
        tokens = pre.process_document("the network")
        assert "the" in tokens

    def test_hashtags_can_be_dropped(self):
        pre = Preprocessor(PreprocessOptions(keep_hashtags=False))
        tokens = pre.process_document("great stuff #tag")
        assert all(not t.startswith("#") for t in tokens)

    def test_short_tokens_dropped(self):
        pre = Preprocessor(PreprocessOptions(min_token_length=3, apply_stemming=False))
        tokens = pre.process_document("ab abc abcd")
        assert tokens == ["abc", "abcd"]

    def test_process_corpus_filters_short_documents(self):
        pre = Preprocessor()
        corpus = pre.process_corpus(
            ["database systems rule", "ok", "graph mining networks"]
        )
        assert len(corpus) == 2

    def test_hashtags_not_stemmed(self):
        pre = Preprocessor()
        tokens = pre.process_document("#running fast marathon training")
        assert "#running" in tokens

"""Tests for the zero-copy process-parallel E-step runner."""

import numpy as np
import pytest

from repro.core import CPDConfig, CPDModel, DiffusionParameters, FitOptions
from repro.core.gibbs import CPDSampler
from repro.datasets import twitter_scenario
from repro.evaluation import normalized_mutual_information
from repro.parallel import ParallelEStepRunner, SerialSweeper


@pytest.fixture(scope="module")
def runner_setup(twitter_tiny):
    graph, _ = twitter_tiny
    config = CPDConfig(n_communities=4, n_topics=8, n_iterations=4, rho=0.5, alpha=0.5)
    return graph, config


class TestSerialSweeper:
    def test_records_stats(self, runner_setup):
        graph, config = runner_setup
        sweeper = SerialSweeper()
        CPDModel(config, rng=0).fit(graph, FitOptions(document_sweeper=sweeper))
        assert sweeper.stats.iterations == config.n_iterations
        assert sweeper.stats.worker_seconds[0] > 0


class TestParallelRunner:
    def test_parallel_fit_produces_valid_result(self, runner_setup):
        graph, config = runner_setup
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            result = CPDModel(config, rng=0).fit(
                graph, FitOptions(document_sweeper=runner)
            )
        np.testing.assert_allclose(result.pi.sum(axis=1), 1.0, rtol=1e-9)
        assert result.eta.sum() == pytest.approx(1.0)
        assert runner.stats.iterations == config.n_iterations
        assert runner.stats.worker_seconds.sum() > 0

    def test_parallel_matches_serial_quality(self, twitter_tiny):
        """AD-LDA-style merging should not destroy community recovery."""
        graph, truth = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=12, rho=0.5, alpha=0.5)
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            result = CPDModel(config, rng=0).fit(
                graph, FitOptions(document_sweeper=runner)
            )
        nmi = normalized_mutual_information(
            result.hard_community_per_user(), truth.primary_community
        )
        assert nmi > 0.2

    def test_workers_cover_all_documents(self, runner_setup):
        graph, config = runner_setup
        with ParallelEStepRunner(graph, config, n_workers=3, rng=0) as runner:
            docs = np.sort(
                np.concatenate(
                    [runner.schedule.worker_doc_ids(w) for w in range(3)]
                )
            )
            np.testing.assert_array_equal(docs, np.arange(graph.n_documents))

    def test_closed_runner_rejected(self, runner_setup):
        graph, config = runner_setup
        runner = ParallelEStepRunner(graph, config, n_workers=1, rng=0)
        runner.close()
        with pytest.raises(RuntimeError):
            runner(None)

    def test_invalid_worker_count(self, runner_setup):
        graph, config = runner_setup
        with pytest.raises(ValueError):
            ParallelEStepRunner(graph, config, n_workers=0)

    def test_sweep_kernel_override(self, runner_setup):
        graph, config = runner_setup
        with ParallelEStepRunner(
            graph, config, n_workers=1, rng=0, sweep_kernel="reference"
        ) as runner:
            assert runner.config.sweep_kernel == "reference"
            result = CPDModel(runner.config, rng=0).fit(
                graph, FitOptions(document_sweeper=runner)
            )
        np.testing.assert_allclose(result.pi.sum(axis=1), 1.0, rtol=1e-9)

    def test_delta_headers_stay_tiny(self, runner_setup):
        """Per-sweep coordinator->worker IPC is headers, not state."""
        graph, config = runner_setup
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            CPDModel(config, rng=0).fit(graph, FitOptions(document_sweeper=runner))
            per_sweep = runner.stats.payload_bytes_per_sweep()
        assert 0 < per_sweep < 1024  # two ~65-byte pickled headers

    def test_unfused_runner_leaves_augmentation_to_model(self, runner_setup):
        graph, config = runner_setup
        with ParallelEStepRunner(
            graph, config, n_workers=2, rng=0, fuse_augmentation=False
        ) as runner:
            assert not runner.fused_augmentation
            result = CPDModel(config, rng=0).fit(
                graph, FitOptions(document_sweeper=runner)
            )
        np.testing.assert_allclose(result.pi.sum(axis=1), 1.0, rtol=1e-9)
        assert runner.aggregated_eta() is None

    def test_fused_runner_updates_augmentation(self, runner_setup):
        graph, config = runner_setup
        sampler = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=1)
        lambdas_before = sampler.lambdas.copy()
        deltas_before = sampler.deltas.copy()
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            runner(sampler)
            eta = runner.aggregated_eta()
        assert not np.array_equal(sampler.lambdas, lambdas_before)
        assert not np.array_equal(sampler.deltas, deltas_before)
        assert eta is not None
        assert eta.sum() == pytest.approx(1.0)
        assert np.all(eta > 0)  # smoothing keeps every cell alive
        # the workers' partial counts cover every diffusion link exactly once
        raw = eta * (graph.n_diffusion_links + eta.size * config.eta_smoothing)
        assert raw.sum() == pytest.approx(
            graph.n_diffusion_links + eta.size * config.eta_smoothing
        )

    def test_full_sweep_covers_appended_documents(self, runner_setup, rng):
        """doc_ids=None resamples stream-appended overflow docs too."""
        graph, config = runner_setup
        sampler = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=1)
        words = [np.asarray(graph.documents[0].words, dtype=np.int64)] * 3
        new_ids = sampler.append_documents(
            words,
            users=np.array([0, 1, 2]),
            timestamps=np.array([0, 0, 0]),
            communities=np.array([0, 0, 0]),
            topics=np.array([0, 0, 0]),
        )
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            topics_moved = False
            for sweep_seed in range(5):
                runner(sampler)
                state = sampler.state
                topics_moved = topics_moved or bool(
                    np.any(state.doc_topic[new_ids] != 0)
                    or np.any(state.doc_community[new_ids] != 0)
                )
            sampler.state.check_consistency()
        assert topics_moved  # overflow docs were actually resampled

    def test_readoption_hands_first_sampler_back(self, runner_setup):
        """Adopting a second sampler must privatise the first one's arrays."""
        graph, config = runner_setup
        first = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=1)
        second = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=2)
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            runner(first)
            snapshot = first.state.doc_community.copy()
            runner(second)
            # first's arrays no longer alias the plane: second's sweep must
            # not have bled into them
            np.testing.assert_array_equal(first.state.doc_community, snapshot)
            first.state.check_consistency()
        first.state.check_consistency()  # and both survive the unmap
        second.state.check_consistency()

    def test_per_call_fuse_override(self, runner_setup):
        graph, config = runner_setup
        sampler = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=1)
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            lambdas_before = sampler.lambdas.copy()
            runner(sampler, fuse=False)  # sweep only: no link draws
            np.testing.assert_array_equal(sampler.lambdas, lambdas_before)
            assert runner.aggregated_eta() is None
            runner(sampler, fuse=True)
            assert not np.array_equal(sampler.lambdas, lambdas_before)
            assert runner.aggregated_eta() is not None

    def test_subset_sweep_touches_only_subset(self, runner_setup):
        graph, config = runner_setup
        sampler = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=1)
        subset = np.arange(0, graph.n_documents, 3)
        others = np.setdiff1d(np.arange(graph.n_documents), subset)
        before_c = sampler.state.doc_community.copy()
        before_t = sampler.state.doc_topic.copy()
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            runner(sampler, doc_ids=subset)
        np.testing.assert_array_equal(
            sampler.state.doc_community[others], before_c[others]
        )
        np.testing.assert_array_equal(sampler.state.doc_topic[others], before_t[others])
        sampler.state.check_consistency()


class TestSerialParallelParity:
    """ISSUE 4 acceptance: parallel and serial fits stay interchangeable.

    Both branches continue the *same* converged chain (warm-started from one
    offline fit on a crisply-planted scenario), one through plain sweeps and
    one through the shared-memory runner; their document assignments must
    agree to NMI >= 0.8 at 2 and 4 workers (observed ~0.9, see DESIGN.md §7
    for why stale reads keep the chains statistically interchangeable).
    """

    @pytest.fixture(scope="class")
    def converged_base(self):
        graph, _ = twitter_scenario(
            "tiny",
            rng=42,
            pi_concentration=0.02,
            pi_primary_boost=12.0,
            community_topic_boost=20.0,
            conforming_fraction=0.95,
            docs_per_user_mean=6.0,
        )
        config = CPDConfig(
            n_communities=4, n_topics=8, n_iterations=25, rho=0.5, alpha=0.5
        )
        base = CPDModel(config, rng=0).fit(graph)
        serial = CPDSampler.warm_start(graph, base, rng=101)
        for _ in range(2):
            serial.sweep_documents()
            serial.sample_lambdas()
            serial.sample_deltas()
        return graph, config, base, serial.state.doc_community.copy()

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_doc_assignment_nmi(self, converged_base, n_workers):
        graph, config, base, serial_communities = converged_base
        with ParallelEStepRunner(graph, config, n_workers=n_workers, rng=202) as runner:
            parallel = CPDSampler.warm_start(graph, base, rng=303)
            for _ in range(2):
                runner(parallel)
        nmi = normalized_mutual_information(
            parallel.state.doc_community, serial_communities
        )
        assert nmi >= 0.8

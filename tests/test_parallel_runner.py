"""Tests for the process-parallel E-step runner."""

import numpy as np
import pytest

from repro.core import CPDConfig, CPDModel, FitOptions
from repro.evaluation import normalized_mutual_information
from repro.parallel import ParallelEStepRunner, SerialSweeper


@pytest.fixture(scope="module")
def runner_setup(twitter_tiny):
    graph, _ = twitter_tiny
    config = CPDConfig(n_communities=4, n_topics=8, n_iterations=4, rho=0.5, alpha=0.5)
    return graph, config


class TestSerialSweeper:
    def test_records_stats(self, runner_setup):
        graph, config = runner_setup
        sweeper = SerialSweeper()
        CPDModel(config, rng=0).fit(graph, FitOptions(document_sweeper=sweeper))
        assert sweeper.stats.iterations == config.n_iterations
        assert sweeper.stats.worker_seconds[0] > 0


class TestParallelRunner:
    def test_parallel_fit_produces_valid_result(self, runner_setup):
        graph, config = runner_setup
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            result = CPDModel(config, rng=0).fit(
                graph, FitOptions(document_sweeper=runner)
            )
        np.testing.assert_allclose(result.pi.sum(axis=1), 1.0, rtol=1e-9)
        assert result.eta.sum() == pytest.approx(1.0)
        assert runner.stats.iterations == config.n_iterations
        assert runner.stats.worker_seconds.sum() > 0

    def test_parallel_matches_serial_quality(self, twitter_tiny):
        """AD-LDA-style merging should not destroy community recovery."""
        graph, truth = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=12, rho=0.5, alpha=0.5)
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            result = CPDModel(config, rng=0).fit(
                graph, FitOptions(document_sweeper=runner)
            )
        nmi = normalized_mutual_information(
            result.hard_community_per_user(), truth.primary_community
        )
        assert nmi > 0.2

    def test_workers_cover_all_documents(self, runner_setup):
        graph, config = runner_setup
        with ParallelEStepRunner(graph, config, n_workers=3, rng=0) as runner:
            docs = np.sort(
                np.concatenate(
                    [runner.schedule.worker_doc_ids(w) for w in range(3)]
                )
            )
            np.testing.assert_array_equal(docs, np.arange(graph.n_documents))

    def test_closed_runner_rejected(self, runner_setup):
        graph, config = runner_setup
        runner = ParallelEStepRunner(graph, config, n_workers=1, rng=0)
        runner.close()
        with pytest.raises(RuntimeError):
            runner(None)

    def test_invalid_worker_count(self, runner_setup):
        graph, config = runner_setup
        with pytest.raises(ValueError):
            ParallelEStepRunner(graph, config, n_workers=0)

    def test_sweep_kernel_override(self, runner_setup):
        graph, config = runner_setup
        with ParallelEStepRunner(
            graph, config, n_workers=1, rng=0, sweep_kernel="reference"
        ) as runner:
            assert runner.config.sweep_kernel == "reference"
            result = CPDModel(runner.config, rng=0).fit(
                graph, FitOptions(document_sweeper=runner)
            )
        np.testing.assert_allclose(result.pi.sum(axis=1), 1.0, rtol=1e-9)

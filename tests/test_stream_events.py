"""Tests for stream events and the replay splitter."""

import numpy as np
import pytest

from repro.stream import DocumentArrival, LinkArrival, iter_event_batches, split_for_replay


@pytest.fixture(scope="module")
def plan(twitter_tiny):
    graph, _ = twitter_tiny
    return split_for_replay(graph, warm_fraction=0.5)


class TestEventTypes:
    def test_document_arrival_coerces_words(self):
        event = DocumentArrival(user_id=3, words=[1, 2, 2], timestamp=5)
        assert event.words.dtype == np.int64
        assert event.words.tolist() == [1, 2, 2]

    def test_link_arrival_rejects_self_links(self):
        with pytest.raises(ValueError):
            LinkArrival(source_doc=4, target_doc=4)


class TestSplitForReplay:
    def test_base_plus_events_cover_the_corpus(self, twitter_tiny, plan):
        graph, _ = twitter_tiny
        assert plan.base_graph.n_documents + plan.n_document_events == graph.n_documents
        assert (
            plan.base_graph.n_diffusion_links + plan.n_link_events
            == graph.n_diffusion_links
        )

    def test_full_graph_matches_original_sizes(self, twitter_tiny, plan):
        graph, _ = twitter_tiny
        assert plan.full_graph.stats() == graph.stats()

    def test_doc_id_map_is_a_permutation(self, twitter_tiny, plan):
        graph, _ = twitter_tiny
        assert sorted(plan.doc_id_map.tolist()) == list(range(graph.n_documents))

    def test_base_documents_are_the_earliest(self, plan):
        base_max = max(doc.timestamp for doc in plan.base_graph.documents)
        stream_min = min(
            event.timestamp
            for event in plan.events
            if isinstance(event, DocumentArrival)
        )
        assert stream_min >= base_max

    def test_document_ids_follow_arrival_order(self, twitter_tiny, plan):
        """Applying events in order must reproduce full_graph's id space."""
        graph, _ = twitter_tiny
        next_id = plan.base_graph.n_documents
        for event in plan.events:
            if isinstance(event, DocumentArrival):
                expected = plan.full_graph.documents[next_id]
                assert event.user_id == expected.user_id
                assert event.timestamp == expected.timestamp
                np.testing.assert_array_equal(event.words, expected.words)
                next_id += 1
        assert next_id == graph.n_documents

    def test_links_arrive_after_both_endpoints(self, plan):
        n_docs = plan.base_graph.n_documents
        for event in plan.events:
            if isinstance(event, DocumentArrival):
                n_docs += 1
            else:
                assert event.source_doc < n_docs
                assert event.target_doc < n_docs

    def test_replayed_links_match_full_graph(self, plan):
        replayed = {
            (event.source_doc, event.target_doc)
            for event in plan.events
            if isinstance(event, LinkArrival)
        }
        base = {
            (link.source_doc, link.target_doc)
            for link in plan.base_graph.diffusion_links
        }
        full = {
            (link.source_doc, link.target_doc)
            for link in plan.full_graph.diffusion_links
        }
        assert replayed | base == full
        assert not replayed & base

    def test_warm_fraction_one_streams_nothing(self, twitter_tiny):
        graph, _ = twitter_tiny
        plan = split_for_replay(graph, warm_fraction=1.0)
        assert plan.events == []
        assert plan.base_graph.n_documents == graph.n_documents
        assert plan.base_graph.n_diffusion_links == graph.n_diffusion_links

    def test_invalid_warm_fraction_raises(self, twitter_tiny):
        graph, _ = twitter_tiny
        with pytest.raises(ValueError):
            split_for_replay(graph, warm_fraction=0.0)


class TestEventBatches:
    def test_chunks_preserve_order_and_cover_all(self, plan):
        batches = list(iter_event_batches(plan.events, 7))
        assert sum(len(b) for b in batches) == len(plan.events)
        flattened = [event for batch in batches for event in batch]
        assert flattened == plan.events
        assert all(len(b) == 7 for b in batches[:-1])

    def test_batch_size_must_be_positive(self, plan):
        with pytest.raises(ValueError):
            list(iter_event_batches(plan.events, 0))

"""Degraded scatter-gather: breakers, retries, stale fallback, best-effort.

The ISSUE 6 acceptance bar lives here: a router over 4 shards with one
shard persistently failing must keep serving best-effort (coverage
reported, no exception) and return to exact service once the failed
shard is hot-swapped.
"""

import pytest

from repro.resilience import FaultPlan, inject
from repro.resilience.faults import FaultSpec
from repro.serving import ProfileStore
from repro.shard import DegradedError, ShardRouter, fit_shards
from repro.shard.health import CLOSED, OPEN


@pytest.fixture(scope="module")
def four_shard(separated_tiny, parity_config):
    """A 4-shard hash-partitioned fit: the degraded-serving substrate."""
    graph, _truth = separated_tiny
    return fit_shards(graph, parity_config, 4, strategy="hash", rng=9)


def _router(fit, **options):
    return ShardRouter(
        [
            ProfileStore.from_fit(result, part.graph)
            for result, part in zip(fit.results, fit.plan.shards)
        ],
        [part.users for part in fit.plan.shards],
        fit.alignment,
        **options,
    )


def _always_fail(shard_id):
    plan = FaultPlan(seed=0)
    plan.arm(
        FaultSpec(
            point="shard.query", at=1, times=10_000, match={"shard": shard_id}
        )
    )
    return plan


@pytest.fixture(scope="module")
def healthy(four_shard):
    """A fault-free comparison router (module-scoped, read-only)."""
    return _router(four_shard)


class TestBestEffortOneOfFour:
    def test_serves_with_coverage_then_heals_on_hot_swap(
        self, four_shard, healthy
    ):
        router = _router(
            four_shard,
            best_effort=True,
            retries=0,
            backoff=0.0,
            breaker_threshold=1,
        )
        term = router.indexed_terms()[0]
        with inject(_always_fail(2)):
            envelope = router.gather(term)
            assert not envelope.exact
            assert sorted(envelope.answered) == [0, 1, 3]
            assert envelope.failed == [2]
            assert envelope.coverage == pytest.approx(0.75)
            assert "InjectedFault" in envelope.errors[2]
            assert envelope.ranking  # a partial merge, not an exception
            # rank() keeps serving too: the router was built best-effort
            assert router.rank(term) == envelope.ranking

        # the fault is gone but the breaker remembers: still degraded
        assert router.breakers[2].state == OPEN
        tripped = router.gather(term)
        assert not tripped.exact
        assert "circuit breaker open" in tripped.errors[2]

        # hot-swapping the shard revives it: exact service resumes
        router.hot_swap_shard(2, four_shard.results[2])
        assert router.breakers[2].state == CLOSED
        healed = router.gather(term)
        assert healed.exact and healed.coverage == 1.0
        assert healed.ranking == healthy.rank(term)

    def test_degraded_answers_never_enter_the_router_cache(self, four_shard):
        router = _router(
            four_shard, best_effort=True, retries=0, breaker_threshold=1
        )
        term = router.indexed_terms()[0]
        with inject(_always_fail(0)):
            router.rank(term)
        assert router.cache_info()["router"]["size"] == 0

    def test_partial_merge_misses_only_the_failed_shards_labels(
        self, four_shard, healthy
    ):
        router = _router(
            four_shard, best_effort=True, retries=0, breaker_threshold=1
        )
        term = router.indexed_terms()[0]
        with inject(_always_fail(3)):
            partial = {c for c, _s in router.gather(term).ranking}
        full = {c for c, _s in healthy.rank(term)}
        assert partial <= full
        lost = {
            int(g)
            for g in four_shard.alignment.local_to_global[3]
        }
        assert full - partial <= lost


class TestStrictMode:
    def test_default_rank_raises_degraded_error(self, four_shard):
        router = _router(four_shard, retries=0, breaker_threshold=1)
        term = router.indexed_terms()[0]
        with inject(_always_fail(1)):
            with pytest.raises(DegradedError, match="shard 1") as excinfo:
                router.rank(term)
        assert set(excinfo.value.failed) == {1}
        assert "best_effort" in str(excinfo.value)

    def test_unknown_term_is_a_caller_error_even_best_effort(self, four_shard):
        router = _router(four_shard, best_effort=True)
        with pytest.raises(KeyError):
            router.rank("zzzz-not-a-word")

    def test_gather_still_works_for_strict_routers(self, four_shard):
        router = _router(four_shard, retries=0, breaker_threshold=1)
        term = router.indexed_terms()[0]
        with inject(_always_fail(1)):
            envelope = router.gather(term)
        assert not envelope.exact and envelope.ranking


class TestRetriesAndDeadline:
    def test_transient_fault_is_absorbed_by_the_retry(self, four_shard):
        plan = FaultPlan(seed=0)
        plan.fail_at("shard.query", at=1, shard=0)  # first consult only
        router = _router(four_shard, retries=1, backoff=0.0)
        term = router.indexed_terms()[0]
        with inject(plan):
            envelope = router.gather(term)
        assert envelope.exact
        assert envelope.errors == {}
        assert router.breakers[0].state == CLOSED

    def test_deadline_overrun_counts_as_a_failure(self, four_shard):
        plan = FaultPlan(seed=0)
        plan.timeout_at("shard.query", delay=0.02, shard=1)
        router = _router(
            four_shard, best_effort=True, retries=0, deadline=0.001,
            breaker_threshold=1,
        )
        term = router.indexed_terms()[0]
        with inject(plan):
            envelope = router.gather(term)
        assert envelope.failed == [1]
        assert "TimeoutError" in envelope.errors[1]

    def test_timeout_fault_trips_the_deadline_under_a_fake_clock(
        self, four_shard
    ):
        """The injected stall is charged via the router's own clock, so a
        frozen fake clock still sees the deadline overrun (and the test
        does not burn real wall-clock time)."""
        plan = FaultPlan(seed=0)
        plan.timeout_at("shard.query", delay=5.0, shard=1)
        router = _router(
            four_shard, best_effort=True, retries=0, deadline=1.0,
            breaker_threshold=1, clock=lambda: 0.0,
        )
        term = router.indexed_terms()[0]
        with inject(plan):
            envelope = router.gather(term)
        assert envelope.failed == [1]
        assert "TimeoutError" in envelope.errors[1]

    def test_retries_validated(self, four_shard):
        with pytest.raises(ValueError, match="retries"):
            _router(four_shard, retries=-1)


class TestStaleFallback:
    def test_tripped_shard_serves_its_last_known_ranking(
        self, four_shard, healthy
    ):
        router = _router(
            four_shard,
            best_effort=True,
            retries=0,
            breaker_threshold=1,
            query_cache_size=1,
        )
        term_a, term_b = router.indexed_terms()[:2]
        assert router.gather(term_a).exact  # primes the stale cache ...
        assert router.gather(term_b).exact  # ... and evicts A from the LRU
        with inject(_always_fail(1)):
            envelope = router.gather(term_a)
        assert not envelope.exact
        assert envelope.stale == [1]
        assert envelope.coverage == 1.0  # every shard contributed
        # the stale entry is the live answer the shard gave moments ago,
        # so the merged ranking is indistinguishable from the exact one
        assert envelope.ranking == healthy.rank(term_a)
        assert router.stale_served[1] == 1

    def test_hot_swap_drops_the_shards_stale_entries(self, four_shard):
        router = _router(
            four_shard,
            best_effort=True,
            retries=0,
            breaker_threshold=1,
            query_cache_size=1,
        )
        term_a, term_b = router.indexed_terms()[:2]
        router.gather(term_a)
        router.gather(term_b)
        router.hot_swap_shard(1, four_shard.results[1])
        with inject(_always_fail(1)):
            envelope = router.gather(term_a)
        # no stale ranking survives the swap: the shard is simply absent
        assert envelope.failed == [1] and envelope.stale == []


class TestObservabilityWhileTripped:
    def test_cache_info_works_and_reports_health_while_tripped(
        self, four_shard
    ):
        router = _router(
            four_shard, best_effort=True, retries=0, breaker_threshold=1
        )
        term = router.indexed_terms()[0]
        with inject(_always_fail(2)):
            router.gather(term)
            info = router.cache_info()  # must not scatter, must not raise
        health = info["health"]
        assert len(health) == router.n_shards
        assert health[2]["state"] == OPEN
        assert health[2]["trips"] == 1
        assert all(entry["state"] == CLOSED for i, entry in enumerate(health) if i != 2)
        assert all("stale_served" in entry for entry in health)

    def test_hot_swap_while_tripped_revives_but_faults_retrip(self, four_shard):
        """Swapping in a fresh result closes the breaker; if the underlying
        fault persists, the next query trips it again."""
        router = _router(
            four_shard, best_effort=True, retries=0, breaker_threshold=1
        )
        term = router.indexed_terms()[0]
        with inject(_always_fail(2)):
            router.gather(term)
            assert router.breakers[2].state == OPEN
            router.hot_swap_shard(2, four_shard.results[2])
            assert router.breakers[2].state == CLOSED
            router.gather(term)
            assert router.breakers[2].state == OPEN
            assert router.breakers[2].n_trips == 2

    def test_breaker_half_open_probe_recloses_on_success(self, four_shard):
        ticks = [0.0]
        router = _router(
            four_shard,
            best_effort=True,
            retries=0,
            breaker_threshold=1,
            breaker_cooldown=10.0,
            clock=lambda: ticks[0],
        )
        term = router.indexed_terms()[0]
        with inject(_always_fail(3)):
            router.gather(term)
        assert router.breakers[3].state == OPEN
        ticks[0] = 11.0  # past the cooldown: the probe goes through
        envelope = router.gather(term)
        assert envelope.exact
        assert router.breakers[3].state == CLOSED


class TestBreakerTuning:
    """ISSUE 9 satellites: half-open probe count and stale max-age are
    configurable per deployment, threaded through the router kwargs."""

    def test_two_probes_required_before_reclosing(self, four_shard):
        ticks = [0.0]
        router = _router(
            four_shard,
            best_effort=True,
            retries=0,
            breaker_threshold=1,
            breaker_cooldown=10.0,
            breaker_half_open_probes=2,
            clock=lambda: ticks[0],
        )
        # distinct terms per probe: a repeat would hit the merged-rank
        # cache and never scatter, so the breaker would see no probe
        term_a, term_b = router.indexed_terms()[:2]
        with inject(_always_fail(3)):
            router.gather(term_a)
        assert router.breakers[3].state == OPEN
        ticks[0] = 11.0  # past the cooldown: probes go through
        assert router.gather(term_b).exact
        # one good probe is not enough at half_open_probes=2
        assert router.breakers[3].state == "half-open"
        assert router.breakers[3].info()["probe_successes"] == 1
        router.invalidate()
        assert router.gather(term_a).exact
        assert router.breakers[3].state == CLOSED

    def test_failed_probe_resets_the_success_streak(self, four_shard):
        ticks = [0.0]
        router = _router(
            four_shard,
            best_effort=True,
            retries=0,
            breaker_threshold=1,
            breaker_cooldown=10.0,
            breaker_half_open_probes=2,
            clock=lambda: ticks[0],
        )
        term_a, term_b = router.indexed_terms()[:2]
        with inject(_always_fail(3)):
            router.gather(term_a)
        ticks[0] = 11.0
        router.gather(term_b)  # probe 1 succeeds
        assert router.breakers[3].info()["probe_successes"] == 1
        ticks[0] = 12.0
        router.invalidate()
        with inject(_always_fail(3)):
            router.gather(term_a)  # probe 2 fails: back to open, streak reset
        assert router.breakers[3].state == OPEN
        ticks[0] = 23.0
        router.invalidate()
        router.gather(term_b)
        assert router.breakers[3].info()["probe_successes"] == 1  # restarted

    def test_probe_count_validated(self, four_shard):
        with pytest.raises(ValueError, match="half_open_probes"):
            _router(four_shard, breaker_half_open_probes=0)

    def test_kwargs_pass_through_sharded_fit_router(self, four_shard):
        router = four_shard.router(
            best_effort=True,
            breaker_half_open_probes=3,
            stale_max_age=42.0,
        )
        assert router.best_effort is True
        assert router.stale_max_age == 42.0
        assert all(b.half_open_probes == 3 for b in router.breakers)


class TestStaleMaxAge:
    def test_expired_stale_entries_are_dropped_not_served(self, four_shard):
        """A last-known ranking older than stale_max_age is too stale to
        serve: the shard reports as failed, not stale."""
        ticks = [0.0]
        router = _router(
            four_shard,
            best_effort=True,
            retries=0,
            breaker_threshold=1,
            stale_max_age=60.0,
            clock=lambda: ticks[0],
        )
        term = router.indexed_terms()[0]
        assert router.gather(term).exact  # primes the stale cache at t=0
        router.invalidate()  # drop the exact merge, keep the stale entries
        ticks[0] = 61.0  # past the max age
        with inject(_always_fail(1)):
            envelope = router.gather(term)
        assert envelope.stale == []
        assert envelope.failed == [1]

    def test_fresh_stale_entries_still_serve(self, four_shard):
        ticks = [0.0]
        router = _router(
            four_shard,
            best_effort=True,
            retries=0,
            breaker_threshold=1,
            stale_max_age=60.0,
            clock=lambda: ticks[0],
        )
        term = router.indexed_terms()[0]
        assert router.gather(term).exact
        router.invalidate()
        ticks[0] = 59.0  # inside the window
        with inject(_always_fail(1)):
            envelope = router.gather(term)
        assert envelope.stale == [1]
        assert envelope.coverage == 1.0

    def test_stale_max_age_validated(self, four_shard):
        with pytest.raises(ValueError, match="stale_max_age"):
            _router(four_shard, stale_max_age=-1.0)

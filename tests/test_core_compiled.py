"""The compiled sweep backend: fallback, env switches, draw/PG contracts.

Kernel-vs-kernel *parity* lives in ``test_core_kernel.py`` (the compiled
kernel rides its matrices); this file pins the machinery around the
backend — graceful degradation without a C toolchain, the environment
switches, and the cross-language RNG contracts (DESIGN.md §10). Every
test here must pass whether or not the host can actually compile.
"""

import ctypes
import warnings

import numpy as np
import pytest

from repro.core import CPDConfig, DiffusionParameters
from repro.core import _compiled
from repro.core.config import SWEEP_KERNEL_ENV, SWEEP_KERNELS
from repro.core.gibbs import CPDSampler
from repro.core.kernel import (
    VectorizedKernel,
    compiled_fallback_reason,
    make_kernel,
    reset_fallback_state,
)
from repro.sampling.categorical import (
    draw_log_categorical,
    draw_log_categorical_from_uniform,
)
from repro.sampling.polya_gamma import sample_pg_array

BACKEND_AVAILABLE = _compiled.backend_status()[0]

needs_backend = pytest.mark.skipif(
    not BACKEND_AVAILABLE, reason="no C toolchain on this host"
)


def _tiny_sampler(graph, sweep_kernel="compiled", rng=0, **overrides):
    config = CPDConfig(
        n_communities=4, n_topics=8, rho=0.5, alpha=0.5,
        sweep_kernel=sweep_kernel, **overrides,
    )
    return CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=rng)


class TestFallback:
    @pytest.fixture()
    def broken_backend(self, monkeypatch):
        """A backend that refuses to load, plus clean fallback bookkeeping."""

        def refuse():
            raise _compiled.CompiledBackendUnavailable("no toolchain (test)")

        monkeypatch.setattr(_compiled, "load_library", refuse)
        reset_fallback_state()
        yield
        reset_fallback_state()

    def test_falls_back_with_single_warning(self, twitter_tiny, broken_backend):
        graph, _ = twitter_tiny
        with pytest.warns(RuntimeWarning, match="no toolchain \\(test\\)"):
            sampler = _tiny_sampler(graph)
        assert type(sampler.kernel) is VectorizedKernel
        assert sampler.kernel.name == "vectorized"
        assert sampler.kernel.fallback_reason == "no toolchain (test)"
        assert compiled_fallback_reason() == "no toolchain (test)"
        # the warning fires once per process, not once per sampler
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = _tiny_sampler(graph)
        assert again.kernel.name == "vectorized"

    def test_fallback_results_identical_to_vectorized(
        self, twitter_tiny, broken_backend
    ):
        graph, _ = twitter_tiny
        with pytest.warns(RuntimeWarning):
            degraded = _tiny_sampler(graph, rng=7)
        plain = _tiny_sampler(graph, sweep_kernel="vectorized", rng=7)
        for sampler in (degraded, plain):
            sampler.sweep_documents()
        np.testing.assert_array_equal(
            degraded.state.doc_topic, plain.state.doc_topic
        )
        np.testing.assert_array_equal(
            degraded.state.doc_community, plain.state.doc_community
        )

    def test_reference_kernel_untouched_by_broken_backend(
        self, twitter_tiny, broken_backend
    ):
        graph, _ = twitter_tiny
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sampler = _tiny_sampler(graph, sweep_kernel="reference")
        assert sampler.kernel.name == "reference"


class TestEnvironmentSwitches:
    def test_sweep_kernel_env_sets_default(self, monkeypatch):
        for kernel in SWEEP_KERNELS:
            monkeypatch.setenv(SWEEP_KERNEL_ENV, kernel)
            assert CPDConfig().sweep_kernel == kernel

    def test_explicit_value_beats_env(self, monkeypatch):
        monkeypatch.setenv(SWEEP_KERNEL_ENV, "reference")
        assert CPDConfig(sweep_kernel="vectorized").sweep_kernel == "vectorized"

    def test_unset_or_empty_env_means_vectorized(self, monkeypatch):
        monkeypatch.delenv(SWEEP_KERNEL_ENV, raising=False)
        assert CPDConfig().sweep_kernel == "vectorized"
        monkeypatch.setenv(SWEEP_KERNEL_ENV, "")
        assert CPDConfig().sweep_kernel == "vectorized"

    def test_invalid_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(SWEEP_KERNEL_ENV, "turbo")
        with pytest.raises(ValueError, match=SWEEP_KERNEL_ENV):
            CPDConfig()

    def test_validation_message_names_all_kernels(self):
        with pytest.raises(ValueError, match=", ".join(SWEEP_KERNELS)):
            CPDConfig(sweep_kernel="turbo")

    def test_disable_env_kills_the_backend(self, monkeypatch):
        monkeypatch.setenv(_compiled.DISABLE_ENV, "1")
        available, reason = _compiled.backend_status()
        assert not available
        assert _compiled.DISABLE_ENV in reason
        with pytest.raises(_compiled.CompiledBackendUnavailable):
            _compiled.load_library()

    def test_disable_env_zero_or_empty_is_off(self, monkeypatch):
        # "0"/"" must not disable — only the probe outcome decides
        monkeypatch.delenv(_compiled.DISABLE_ENV, raising=False)
        expected = _compiled.backend_status()[0]
        for value in ("0", ""):
            monkeypatch.setenv(_compiled.DISABLE_ENV, value)
            assert _compiled.backend_status()[0] == expected


@needs_backend
class TestDrawContract:
    """The C categorical draw is bit-for-bit the Python algorithm."""

    def test_matches_pure_function_and_generator_path(self):
        library = _compiled.load_library()
        rng = np.random.default_rng(123)
        for size in (1, 2, 5, 8, 32):
            for _ in range(50):
                log_weights = rng.normal(scale=5.0, size=size)
                uniform = rng.random()
                out = np.empty(size, dtype=np.float64)

                class _Emitter:
                    def random(self):
                        return uniform

                expected = draw_log_categorical_from_uniform(log_weights, uniform)
                via_generator = draw_log_categorical(log_weights.copy(), _Emitter())
                from_c = library.cpd_draw_log_categorical(
                    np.ascontiguousarray(log_weights).ctypes.data_as(
                        ctypes.POINTER(ctypes.c_double)
                    ),
                    ctypes.c_int64(size),
                    ctypes.c_double(uniform),
                    out.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
                )
                assert from_c == expected == via_generator

    def test_tie_walk_back_on_rounded_up_uniform(self):
        library = _compiled.load_library()
        # trailing -inf outcomes have zero weight: a uniform of ~1.0 must
        # walk back to the last positive-weight index, never return them
        log_weights = np.array([0.0, 1.0, -np.inf, -np.inf])
        out = np.empty(4, dtype=np.float64)
        index = library.cpd_draw_log_categorical(
            log_weights.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            ctypes.c_int64(4),
            ctypes.c_double(1.0),
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        )
        assert index == draw_log_categorical_from_uniform(log_weights, 1.0) == 1


@needs_backend
class TestCompiledPolyaGamma:
    def test_same_bit_stream_and_close_values(self):
        z = np.linspace(-4.0, 4.0, 37)
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        plain = sample_pg_array(z, rng_a)
        fused = sample_pg_array(z, rng_b, compiled=True)
        np.testing.assert_allclose(plain, fused, rtol=1e-12, atol=1e-15)
        # both paths consumed identical Generator state: next draws agree
        np.testing.assert_array_equal(rng_a.random(8), rng_b.random(8))

    def test_b_greater_than_one(self):
        z = np.array([0.0, 0.5, -2.0])
        plain = sample_pg_array(z, np.random.default_rng(9), b=3)
        fused = sample_pg_array(z, np.random.default_rng(9), b=3, compiled=True)
        np.testing.assert_allclose(plain, fused, rtol=1e-12, atol=1e-15)


@needs_backend
class TestCompiledSweepMachinery:
    def test_rejects_out_of_range_ids(self, twitter_tiny):
        graph, _ = twitter_tiny
        sampler = _tiny_sampler(graph)
        with pytest.raises(ValueError, match="out of range"):
            sampler.kernel.sweep(np.array([graph.n_documents], dtype=np.int64))
        with pytest.raises(ValueError, match="out of range"):
            sampler.kernel.sweep(np.array([-1], dtype=np.int64))

    def test_rejects_unassigned_documents(self, twitter_tiny):
        graph, _ = twitter_tiny
        sampler = _tiny_sampler(graph)
        sampler.state.unassign(0)
        with pytest.raises(ValueError, match="assigned"):
            sampler.kernel.sweep(np.array([0], dtype=np.int64))

    def test_partial_sweep_matches_vectorized(self, twitter_tiny):
        graph, _ = twitter_tiny
        subset = np.arange(0, graph.n_documents, 3, dtype=np.int64)
        samplers = [
            _tiny_sampler(graph, sweep_kernel=kernel, rng=21)
            for kernel in ("vectorized", "compiled")
        ]
        for sampler in samplers:
            sampler.sweep_documents(subset)
            sampler.state.check_consistency()
        np.testing.assert_array_equal(
            samplers[0].state.doc_topic, samplers[1].state.doc_topic
        )
        np.testing.assert_array_equal(
            samplers[0].state.doc_community, samplers[1].state.doc_community
        )

    def test_streaming_append_then_sweep(self, twitter_tiny):
        graph, _ = twitter_tiny
        samplers = [
            _tiny_sampler(graph, sweep_kernel=kernel, rng=13)
            for kernel in ("vectorized", "compiled")
        ]
        new_docs = [np.array([0, 1, 1, 2]), np.array([3, 3])]
        for sampler in samplers:
            sampler.sweep_documents()
            ids = sampler.append_documents(
                new_docs,
                users=np.array([0, 1]),
                timestamps=np.array([5, 6]),
                communities=np.array([1, 2]),
                topics=np.array([0, 3]),
            )
            sampler.sweep_documents(ids)
            sampler.sweep_documents()
            sampler.state.check_consistency()
        np.testing.assert_array_equal(
            samplers[0].state.doc_topic, samplers[1].state.doc_topic
        )
        np.testing.assert_array_equal(
            samplers[0].state.doc_community, samplers[1].state.doc_community
        )

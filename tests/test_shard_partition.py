"""Tests for the graph partitioner: disjointness, remapping, spill set."""

import numpy as np
import pytest

from repro.shard import GraphPartitioner, build_plan


@pytest.fixture(scope="module", params=["hash", "community"])
def plan(request, twitter_tiny):
    graph, _ = twitter_tiny
    partitioner = GraphPartitioner(strategy=request.param, rng=3)
    return graph, partitioner.partition(graph, 2)


class TestPartitionContract:
    def test_users_are_disjointly_covered(self, plan):
        graph, shard_plan = plan
        covered = np.concatenate([part.users for part in shard_plan.shards])
        assert covered.shape == (graph.n_users,)
        assert len(np.unique(covered)) == graph.n_users

    def test_every_shard_nonempty(self, plan):
        _graph, shard_plan = plan
        for part in shard_plan.shards:
            assert part.n_users > 0
            assert part.graph.n_users == part.n_users

    def test_documents_follow_their_user(self, plan):
        graph, shard_plan = plan
        doc_user = graph.document_user_array()
        for part in shard_plan.shards:
            for local_doc, global_doc in enumerate(part.doc_ids):
                global_user = doc_user[global_doc]
                assert shard_plan.user_shard[global_user] == part.shard_id
                local = part.graph.documents[local_doc]
                assert part.users[local.user_id] == global_user
                np.testing.assert_array_equal(
                    local.words, graph.documents[global_doc].words
                )
                assert local.timestamp == graph.documents[global_doc].timestamp

    def test_vocabulary_is_shared_globally(self, plan):
        graph, shard_plan = plan
        for part in shard_plan.shards:
            assert part.graph.vocabulary is graph.vocabulary

    def test_local_global_maps_roundtrip(self, plan):
        _graph, shard_plan = plan
        part = shard_plan.shards[0]
        for local, global_user in enumerate(part.users[:5]):
            assert part.local_user(int(global_user)) == local
        for local, global_doc in enumerate(part.doc_ids[:5]):
            assert part.local_doc(int(global_doc)) == local
        foreign = shard_plan.shards[1].users[0]
        with pytest.raises(KeyError):
            part.local_user(int(foreign))

    def test_every_link_kept_or_spilled_exactly_once(self, plan):
        graph, shard_plan = plan
        kept_friend = sum(part.graph.n_friendship_links for part in shard_plan.shards)
        kept_diff = sum(part.graph.n_diffusion_links for part in shard_plan.shards)
        assert kept_friend + shard_plan.spill.n_friendship == graph.n_friendship_links
        assert kept_diff + shard_plan.spill.n_diffusion == graph.n_diffusion_links

    def test_spill_links_really_cross_shards(self, plan):
        graph, shard_plan = plan
        doc_user = graph.document_user_array()
        for source, target in shard_plan.spill.friendship:
            assert shard_plan.user_shard[source] != shard_plan.user_shard[target]
        for source_doc, target_doc, _t in shard_plan.spill.diffusion:
            assert (
                shard_plan.user_shard[doc_user[source_doc]]
                != shard_plan.user_shard[doc_user[target_doc]]
            )

    def test_kept_links_remap_to_the_same_endpoints(self, plan):
        graph, shard_plan = plan
        for part in shard_plan.shards:
            global_pairs = {
                (int(part.users[link.source]), int(part.users[link.target]))
                for link in part.graph.friendship_links
            }
            expected = {
                (link.source, link.target)
                for link in graph.friendship_links
                if shard_plan.user_shard[link.source] == part.shard_id
                and shard_plan.user_shard[link.target] == part.shard_id
            }
            assert global_pairs == expected


class TestStrategies:
    def test_single_shard_is_identity(self, twitter_tiny):
        graph, _ = twitter_tiny
        plan = GraphPartitioner(strategy="hash", rng=0).partition(graph, 1)
        assert plan.n_shards == 1
        assert plan.spill.n_friendship == 0
        assert plan.spill.n_diffusion == 0
        assert plan.shards[0].graph.n_documents == graph.n_documents

    def test_community_strategy_records_segments(self, twitter_tiny):
        graph, _ = twitter_tiny
        plan = GraphPartitioner(strategy="community", rng=3).partition(graph, 2)
        assert plan.segments  # the reused DataSegment machinery is visible
        segmented = np.concatenate([segment.users for segment in plan.segments])
        assert len(np.unique(segmented)) == graph.n_users

    def test_community_spills_fewer_links_than_hash(self, separated_tiny):
        """On a community-structured graph the aware strategy must win."""
        graph, _ = separated_tiny
        community = GraphPartitioner(strategy="community", rng=9).partition(graph, 2)
        hashed = GraphPartitioner(strategy="hash", rng=9).partition(graph, 2)
        assert community.spill_fraction() < hashed.spill_fraction()

    def test_rejects_bad_parameters(self, twitter_tiny):
        graph, _ = twitter_tiny
        with pytest.raises(ValueError):
            GraphPartitioner(strategy="nope")
        with pytest.raises(ValueError):
            GraphPartitioner().partition(graph, 0)
        with pytest.raises(ValueError):
            GraphPartitioner().partition(graph, graph.n_users + 1)

    def test_build_plan_validates_shape(self, twitter_tiny):
        graph, _ = twitter_tiny
        with pytest.raises(ValueError):
            build_plan(graph, np.zeros(3, dtype=np.int64))

    def test_shard_of_user_matches_plan(self, plan):
        _graph, shard_plan = plan
        for part in shard_plan.shards:
            for global_user in part.users[:3]:
                assert shard_plan.shard_of_user(int(global_user)) == part.shard_id

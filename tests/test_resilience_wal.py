"""Tests for the checksummed write-ahead log: append, replay, torn tails."""

import struct

import numpy as np
import pytest

from repro.resilience import (
    FaultPlan,
    InjectedFault,
    WalCorruptError,
    WriteAheadLog,
    decode_event,
    encode_event,
    inject,
    replay_wal,
    scan_wal,
)
from repro.stream import DocumentArrival, LinkArrival


def _events(n_docs=3, n_links=2, start_ts=0):
    events = []
    for index in range(n_docs):
        events.append(
            DocumentArrival(
                user_id=index,
                words=np.asarray([1, 2, 3 + index], dtype=np.int64),
                timestamp=start_ts + index,
            )
        )
    for index in range(n_links):
        events.append(
            LinkArrival(
                source_doc=index, target_doc=index + 1,
                timestamp=start_ts + n_docs + index,
            )
        )
    return events


class TestEventCodec:
    def test_document_roundtrip(self):
        event = DocumentArrival(
            user_id=7, words=np.asarray([4, 4, 9], dtype=np.int64), timestamp=12
        )
        revived = decode_event(encode_event(event))
        assert isinstance(revived, DocumentArrival)
        assert revived.user_id == 7 and revived.timestamp == 12
        np.testing.assert_array_equal(revived.words, event.words)

    def test_link_roundtrip(self):
        event = LinkArrival(source_doc=3, target_doc=8, timestamp=5)
        revived = decode_event(encode_event(event))
        assert isinstance(revived, LinkArrival)
        assert (revived.source_doc, revived.target_doc) == (3, 8)

    def test_unknown_type_rejected(self):
        with pytest.raises(WalCorruptError):
            decode_event({"type": "mystery"})


class TestAppendReplay:
    def test_append_advances_cursor_and_replay_roundtrips(self, tmp_path):
        path = tmp_path / "events.wal"
        events = _events()
        with WriteAheadLog(path) as wal:
            cursor = wal.append(events[:3])
            assert cursor == 3
            assert wal.append(events[3:]) == len(events)
        replayed = list(replay_wal(path))
        assert len(replayed) == len(events)
        for original, revived in zip(events, replayed):
            assert type(original) is type(revived)

    def test_replay_from_cursor_skips_acknowledged_events(self, tmp_path):
        path = tmp_path / "events.wal"
        events = _events(n_docs=4, n_links=0)
        with WriteAheadLog(path) as wal:
            wal.append(events[:2])
            wal.append(events[2:])
        tail = list(replay_wal(path, from_event=3))
        assert len(tail) == 1
        assert tail[0].user_id == events[3].user_id

    def test_empty_append_is_a_noop(self, tmp_path):
        path = tmp_path / "events.wal"
        with WriteAheadLog(path) as wal:
            assert wal.append([]) == 0
            assert wal.n_records == 0

    def test_reopen_resumes_the_cursor(self, tmp_path):
        path = tmp_path / "events.wal"
        with WriteAheadLog(path) as wal:
            wal.append(_events(n_docs=2, n_links=0))
        with WriteAheadLog(path) as wal:
            assert wal.n_events == 2
            wal.append(_events(n_docs=1, n_links=0, start_ts=10))
            assert wal.n_events == 3
        assert len(list(replay_wal(path))) == 3

    def test_closed_log_status_still_scans(self, tmp_path):
        path = tmp_path / "events.wal"
        wal = WriteAheadLog(path)
        wal.append(_events(n_docs=2, n_links=0))
        wal.close()
        status = wal.status()
        assert status.n_events == 2 and not status.torn

    def test_closed_log_rejects_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "events.wal")
        wal.close()
        with pytest.raises(ValueError, match="closed"):
            wal.append(_events(n_docs=1, n_links=0))

    def test_replay_past_the_log_end_raises(self, tmp_path):
        path = tmp_path / "events.wal"
        with WriteAheadLog(path) as wal:
            wal.append(_events(n_docs=2, n_links=0))
        with pytest.raises(WalCorruptError, match="snapshot is newer"):
            list(replay_wal(path, from_event=5))

    def test_missing_log_raises_on_replay(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(replay_wal(tmp_path / "nope.wal"))


class TestTornTails:
    def _torn_log(self, tmp_path, cut):
        """A log with two good records then a record cut short by ``cut``."""
        path = tmp_path / "events.wal"
        with WriteAheadLog(path) as wal:
            wal.append(_events(n_docs=2, n_links=0))
            wal.append(_events(n_docs=1, n_links=1, start_ts=5))
        good = path.read_bytes()
        with WriteAheadLog(path) as wal:
            wal.append(_events(n_docs=3, n_links=0, start_ts=9))
        full = path.read_bytes()
        path.write_bytes(full[: len(good) + cut])
        return path, len(good)

    def test_truncated_payload_reports_torn_not_raises(self, tmp_path):
        path, valid = self._torn_log(tmp_path, cut=12)
        status = scan_wal(path)
        assert status.torn and status.torn_reason == "truncated record payload"
        assert status.valid_bytes == valid
        assert status.n_events == 4  # the acknowledged prefix only

    def test_truncated_header_reports_torn(self, tmp_path):
        path, _valid = self._torn_log(tmp_path, cut=3)
        status = scan_wal(path)
        assert status.torn and status.torn_reason == "truncated record header"

    def test_replay_serves_the_valid_prefix(self, tmp_path):
        path, _valid = self._torn_log(tmp_path, cut=12)
        assert len(list(replay_wal(path))) == 4

    def test_reopen_truncates_the_torn_tail_and_appends_clean(self, tmp_path):
        path, valid = self._torn_log(tmp_path, cut=12)
        with WriteAheadLog(path) as wal:
            assert wal.opened_status.torn
            assert wal.n_events == 4
            wal.append(_events(n_docs=1, n_links=0, start_ts=20))
        status = scan_wal(path)
        assert not status.torn
        assert status.n_events == 5
        assert len(list(replay_wal(path))) == 5

    def test_checksum_mismatch_stops_the_scan(self, tmp_path):
        path = tmp_path / "events.wal"
        with WriteAheadLog(path) as wal:
            wal.append(_events(n_docs=2, n_links=0))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte in the (only) record
        path.write_bytes(bytes(data))
        status = scan_wal(path)
        assert status.torn and status.torn_reason == "record checksum mismatch"
        assert status.n_events == 0

    def test_bad_magic_is_torn_at_offset_zero(self, tmp_path):
        path = tmp_path / "events.wal"
        path.write_bytes(b"not a wal at all")
        status = scan_wal(path)
        assert status.torn and status.torn_reason == "bad magic header"
        assert status.valid_bytes == 0

    def test_reopen_heals_a_header_less_file(self, tmp_path):
        """A crash between open() and the magic write leaves a zero-byte
        file; reopening must restore the header so appends stay readable."""
        path = tmp_path / "events.wal"
        path.write_bytes(b"")
        with WriteAheadLog(path) as wal:
            assert wal.opened_status.torn
            cursor = wal.append(_events(n_docs=2, n_links=0))
        assert cursor == 2
        status = scan_wal(path)
        assert not status.torn
        assert status.n_events == 2
        assert len(list(replay_wal(path))) == 2

    def test_reopen_heals_a_garbage_header(self, tmp_path):
        path = tmp_path / "events.wal"
        path.write_bytes(b"not a wal at all")
        with WriteAheadLog(path) as wal:
            assert wal.n_events == 0
            wal.append(_events(n_docs=1, n_links=1))
        # a second reopen must still see the acknowledged events
        with WriteAheadLog(path) as wal:
            assert wal.n_events == 2
            assert not wal.status().torn

    def test_interior_damage_raises_on_replay(self, tmp_path):
        """A valid-looking record with the wrong seq cannot be skipped."""
        path = tmp_path / "events.wal"
        with WriteAheadLog(path) as wal:
            wal.append(_events(n_docs=2, n_links=0))
        # forge a record claiming to continue from event 7 (should be 2)
        import json
        import zlib

        payload = json.dumps(
            {"seq": 7, "events": [encode_event(e) for e in _events(1, 0)]}
        ).encode()
        header = struct.pack("<II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        with open(path, "ab") as handle:
            handle.write(header + payload)
        with pytest.raises(WalCorruptError, match="skips from event 2 to 7"):
            list(replay_wal(path))


class TestInjectedTornWrite:
    def test_wal_append_fault_leaves_a_torn_tail(self, tmp_path):
        path = tmp_path / "events.wal"
        plan = FaultPlan(seed=0)
        plan.fail_at("wal.append", at=2)
        with WriteAheadLog(path) as wal, inject(plan):
            wal.append(_events(n_docs=2, n_links=0))
            with pytest.raises(InjectedFault):
                wal.append(_events(n_docs=1, n_links=0, start_ts=5))
            # the cursor never acknowledged the torn batch
            assert wal.n_events == 2
        status = scan_wal(path)
        assert status.torn
        assert status.n_events == 2
        # reopening self-heals, exactly like a real crash
        with WriteAheadLog(path) as wal:
            assert not wal.status().torn

"""Tests for the benchmark diff engine behind ``repro bench-diff``."""

import json

import pytest

from repro.benchdiff import (
    diff_benchmarks,
    flatten_metrics,
    load_bench,
    metric_direction,
    render_diff,
)


class TestFlatten:
    def test_nested_paths_and_leaf_filtering(self):
        flat = flatten_metrics({
            "a": 1,
            "b": {"c": 2.5, "d": {"e": 3}},
            "flag": True,          # booleans are not metrics
            "name": "vectorized",  # strings are not metrics
            "list": [1, 2, 3],     # lists are positional, skipped
            "nothing": None,
        })
        assert flat == {"a": 1.0, "b.c": 2.5, "b.d.e": 3.0}


class TestDirection:
    @pytest.mark.parametrize("path,expected", [
        ("legs.store.rank_per_second", "higher"),
        ("throughput", "higher"),
        ("results.agreement", "higher"),
        ("coverage_mean", "higher"),
        ("raw_seconds", "lower"),
        ("legs.store.latency.p99", "lower"),
        ("enabled_overhead", "lower"),
        ("admission.shed", "lower"),
        ("kernel_flag", None),
        ("rounds", None),
    ])
    def test_name_heuristics(self, path, expected):
        assert metric_direction(path) == expected

    def test_higher_better_wins_over_seconds_suffix(self):
        # "rank_per_second" contains "seconds"-adjacent text; per_second
        # is checked first so throughput metrics never read as latencies
        assert metric_direction("rank_per_second") == "higher"


class TestDiff:
    def test_regression_and_improvement_classification(self):
        old = {"p99": 0.100, "rank_per_second": 1000.0, "rounds": 5}
        new = {"p99": 0.150, "rank_per_second": 1100.0, "rounds": 7}
        report = diff_benchmarks(old, new, threshold=0.05)
        verdicts = {e["metric"]: e["verdict"] for e in report["entries"]}
        assert verdicts == {
            "p99": "regression",          # latency up 50%
            "rank_per_second": "improvement",  # throughput up 10%
            "rounds": "info",             # unknown direction never gates
        }
        assert report["regressions"] == ["p99"]
        assert report["counts"] == {
            "regression": 1, "improvement": 1, "unchanged": 0, "info": 1
        }

    def test_within_threshold_is_unchanged(self):
        report = diff_benchmarks({"p99": 0.100}, {"p99": 0.104}, threshold=0.05)
        assert report["entries"][0]["verdict"] == "unchanged"
        assert report["regressions"] == []

    def test_direction_matters_both_ways(self):
        # throughput falling is a regression even though the value dropped
        report = diff_benchmarks(
            {"rank_per_second": 1000.0}, {"rank_per_second": 800.0}
        )
        assert report["regressions"] == ["rank_per_second"]
        # latency falling is an improvement
        report = diff_benchmarks({"p99": 0.100}, {"p99": 0.050})
        assert report["entries"][0]["verdict"] == "improvement"

    def test_zero_baseline_yields_infinite_relative(self):
        report = diff_benchmarks({"shed": 0}, {"shed": 3})
        entry = report["entries"][0]
        assert entry["relative"] == float("inf")
        assert entry["verdict"] == "regression"

    def test_added_and_removed_metrics_are_reported_not_compared(self):
        report = diff_benchmarks({"old_only": 1, "p99": 0.1},
                                 {"new_only": 2, "p99": 0.1})
        assert report["only_old"] == ["old_only"]
        assert report["only_new"] == ["new_only"]
        assert report["compared"] == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            diff_benchmarks({}, {}, threshold=-0.1)


class TestRender:
    def test_quiet_render_shows_only_meaningful_moves(self):
        report = diff_benchmarks(
            {"p99": 0.100, "rounds": 5}, {"p99": 0.200, "rounds": 5}
        )
        lines = render_diff(report)
        text = "\n".join(lines)
        assert "regression" in text and "p99" in text
        assert "rounds" not in text

    def test_verbose_render_shows_everything(self):
        report = diff_benchmarks(
            {"p99": 0.100, "rounds": 5}, {"p99": 0.100, "rounds": 5}
        )
        text = "\n".join(render_diff(report, verbose=True))
        assert "unchanged" in text
        assert "rounds" in text

    def test_added_and_removed_always_listed(self):
        report = diff_benchmarks({"gone": 1.0}, {"fresh": 2.0})
        text = "\n".join(render_diff(report))
        assert "removed" in text and "gone" in text
        assert "added" in text and "fresh" in text


class TestLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"a": 1}), encoding="utf-8")
        assert load_bench(path) == {"a": 1}

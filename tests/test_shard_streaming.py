"""Tests for shard-local streaming: routing, spill, per-shard hot swap."""

import numpy as np
import pytest

from repro.shard import ShardedIngestor
from repro.stream import DocumentArrival, LinkArrival


@pytest.fixture()
def streaming(sharded_parity):
    """A fresh router + sharded ingestor with per-shard refreshers."""
    router = sharded_parity.router()
    ingestor = ShardedIngestor.from_sharded_fit(
        sharded_parity, router=router, with_refresh=True, batch_size=8, rng=11
    )
    return router, ingestor


def _doc_event(sharded_parity, shard_id, rng, timestamp=3):
    part = sharded_parity.plan.shards[shard_id]
    global_user = int(part.users[0])
    words = rng.integers(0, part.graph.n_words, size=6)
    return DocumentArrival(user_id=global_user, words=words, timestamp=timestamp)


class TestRouting:
    def test_documents_route_to_the_publishers_shard(self, streaming, sharded_parity, rng):
        router, ingestor = streaming
        before = [ing.n_documents for ing in ingestor.ingestors]
        ingestor.submit(_doc_event(sharded_parity, 0, rng))
        ingestor.submit(_doc_event(sharded_parity, 1, rng))
        ingestor.submit(_doc_event(sharded_parity, 1, rng))
        ingestor.flush()
        after = [ing.n_documents for ing in ingestor.ingestors]
        assert after[0] - before[0] == 1
        assert after[1] - before[1] == 2

    def test_new_documents_get_sequential_global_ids(self, streaming, sharded_parity, rng):
        _router, ingestor = streaming
        next_global = ingestor._next_global_doc
        ingestor.submit(_doc_event(sharded_parity, 0, rng))
        ingestor.submit(_doc_event(sharded_parity, 1, rng))
        assert ingestor.doc_location[next_global][0] == 0
        assert ingestor.doc_location[next_global + 1][0] == 1

    def test_same_shard_link_is_applied(self, streaming, sharded_parity, rng):
        _router, ingestor = streaming
        part = sharded_parity.plan.shards[0]
        source, target = int(part.doc_ids[0]), int(part.doc_ids[1])
        ingestor.submit(LinkArrival(source_doc=source, target_doc=target, timestamp=3))
        ingestor.flush()
        assert ingestor.ingestors[0].n_links == 1
        assert not ingestor.spilled_links

    def test_cross_shard_link_spills(self, streaming, sharded_parity, rng):
        _router, ingestor = streaming
        source = int(sharded_parity.plan.shards[0].doc_ids[0])
        target = int(sharded_parity.plan.shards[1].doc_ids[0])
        report = ingestor.submit(
            LinkArrival(source_doc=source, target_doc=target, timestamp=3)
        )
        assert report is None
        assert ingestor.spilled_links == [(source, target, 3)]
        assert ingestor.stats()["spilled_links"] == 1
        assert all(ing.n_links == 0 for ing in ingestor.ingestors)

    def test_unknown_link_endpoint_raises(self, streaming):
        _router, ingestor = streaming
        with pytest.raises(KeyError):
            ingestor.submit(LinkArrival(source_doc=10**6, target_doc=0, timestamp=1))

    def test_unknown_document_publisher_raises(self, streaming, rng):
        _router, ingestor = streaming
        words = rng.integers(0, 5, size=4)
        with pytest.raises(KeyError, match="unknown user"):
            ingestor.submit(DocumentArrival(user_id=-1, words=words, timestamp=1))
        with pytest.raises(KeyError, match="unknown user"):
            ingestor.submit(DocumentArrival(user_id=10**6, words=words, timestamp=1))

    def test_unknown_event_type_raises(self, streaming):
        _router, ingestor = streaming
        with pytest.raises(TypeError):
            ingestor.submit(object())

    def test_failed_shard_submit_poisons_the_shard(
        self, streaming, sharded_parity, rng, monkeypatch
    ):
        """A submit that raises mid-batch must not silently desynchronise
        the id maps — the shard becomes unroutable instead."""
        _router, ingestor = streaming

        def boom(_event):
            raise RuntimeError("flush died mid-batch")

        monkeypatch.setattr(ingestor.ingestors[0], "submit", boom)
        with pytest.raises(RuntimeError, match="mid-batch"):
            ingestor.submit(_doc_event(sharded_parity, 0, rng))
        monkeypatch.undo()
        with pytest.raises(RuntimeError, match="unroutable|previously failed"):
            ingestor.submit(_doc_event(sharded_parity, 0, rng))
        # the other shard keeps streaming
        report = ingestor.submit(_doc_event(sharded_parity, 1, rng))
        assert report is None or report.n_documents >= 0


class TestShardLocalHotSwap:
    def test_hot_swap_serves_streamed_documents_shard_locally(
        self, streaming, sharded_parity, rng
    ):
        router, ingestor = streaming
        baseline_docs = [len(store.doc_user()) for store in router.stores]
        for _ in range(12):
            ingestor.submit(_doc_event(sharded_parity, 1, rng))
        ingestor.flush()
        ingestor.refresh()
        swapped = ingestor.hot_swap(shard_ids=[1])
        assert swapped == [1]
        # shard 1's store now covers the streamed documents...
        assert len(router.stores[1].doc_user()) == baseline_docs[1] + 12
        # ...while shard 0's store is untouched
        assert len(router.stores[0].doc_user()) == baseline_docs[0]
        # and the router still serves a full ranking over global labels
        ranking = router.rank(router.indexed_terms()[0])
        assert len(ranking) == router.n_communities

    def test_snapshotter_writes_shard_local_v3_artifact(
        self, streaming, sharded_parity, rng, tmp_path
    ):
        from repro.core import load_artifact

        _router, ingestor = streaming
        for _ in range(4):
            ingestor.submit(_doc_event(sharded_parity, 0, rng))
        ingestor.flush()
        ingestor.refresh()
        path = tmp_path / "shard0-snapshot.cpd.npz"
        ingestor.snapshotter(0).save(path)
        artifact = load_artifact(path)
        assert artifact.stream_cursor is not None
        assert artifact.stream_cursor["documents_appended"] == 4

    def test_refresherless_shard_cannot_snapshot(self, sharded_parity):
        router = sharded_parity.router()
        ingestor = ShardedIngestor.from_sharded_fit(
            sharded_parity, router=router, with_refresh=False, rng=11
        )
        with pytest.raises(ValueError, match="refresher"):
            ingestor.snapshotter(0)
        assert ingestor.hot_swap() == []

"""Tests for the Porter stemmer implementation."""

import pytest

from repro.text import stem, stem_tokens


class TestClassicExamples:
    """Canonical examples from Porter's 1980 paper."""

    @pytest.mark.parametrize(
        "word,expected",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_porter_pairs(self, word, expected):
        assert stem(word) == expected


class TestDomainWords:
    def test_common_research_words(self):
        assert stem("networks") == "network"
        assert stem("communities") == "commun"
        assert stem("learning") == "learn"
        assert stem("routing") == "rout"

    def test_idempotent_on_short_words(self):
        assert stem("db") == "db"
        assert stem("ai") == "ai"


class TestSpecialHandling:
    def test_hashtags_pass_through(self):
        assert stem("#running") == "#running"

    def test_case_normalised(self):
        assert stem("Running") == stem("running")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            stem(None)


class TestStemTokens:
    def test_preserves_order_and_length(self):
        tokens = ["running", "#tag", "networks"]
        assert stem_tokens(tokens) == ["run", "#tag", "network"]

    def test_empty(self):
        assert stem_tokens([]) == []

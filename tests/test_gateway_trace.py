"""Request-scoped tracing through the live gateway (DESIGN.md §13).

The acceptance pin for ISSUE 10 lives here: one request through a
*degraded* two-shard gateway must yield a single connected span tree —
gateway root, its phase children, the router gather and both per-shard
calls — retrievable by the trace id echoed in the response header.
"""

import pytest

from repro import obs
from repro.gateway import GatewayServer, GatewayThread, TRACE_HEADER
from repro.gateway.tracing import RequestContext, parse_trace_header
from repro.obs.trace import span_trees
from repro.resilience import FaultPlan, inject
from repro.serving import ProfileStore
from repro.shard import ShardRouter


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_telemetry()
    yield
    obs.disable_telemetry()


@pytest.fixture(scope="module")
def store(fitted_cpd, twitter_tiny):
    graph, _truth = twitter_tiny
    return ProfileStore.from_fit(fitted_cpd, graph)


@pytest.fixture(scope="module")
def term(store):
    return next(iter(store.query_index()))


def _router(fit, **options):
    return ShardRouter(
        [
            ProfileStore.from_fit(result, part.graph)
            for result, part in zip(fit.results, fit.plan.shards)
        ],
        [part.users for part in fit.plan.shards],
        fit.alignment,
        **options,
    )


class TestParseTraceHeader:
    def test_bare_trace_id(self):
        assert parse_trace_header("deadbeef") == ("deadbeef", None)

    def test_trace_and_span(self):
        assert parse_trace_header("deadbeef-cafe") == ("deadbeef", "cafe")

    def test_malformed_is_ignored(self):
        assert parse_trace_header(None) == (None, None)
        assert parse_trace_header("") == (None, None)
        assert parse_trace_header("UPPER") == (None, None)
        assert parse_trace_header("not hex!") == (None, None)
        assert parse_trace_header("a" * 33) == (None, None)

    def test_valid_trace_with_garbage_span_keeps_the_trace(self):
        assert parse_trace_header("deadbeef-XYZ") == ("deadbeef", None)


class TestRequestContext:
    def test_tracing_off_still_echoes_the_client_id(self):
        ctx = RequestContext("deadbeef", tracing=False)
        assert ctx.trace_id == "deadbeef"
        assert ctx.buffer is None
        assert ctx.forced

    def test_tracing_off_without_header_has_no_id(self):
        ctx = RequestContext(None, tracing=False)
        assert ctx.trace_id == ""
        assert not ctx.forced

    def test_tracing_on_mints_an_id_when_the_client_sent_none(self):
        ctx = RequestContext(None, tracing=True)
        assert ctx.trace_id
        assert ctx.buffer is not None
        assert not ctx.forced

    def test_client_span_becomes_the_root_parent(self):
        ctx = RequestContext("deadbeef-cafe", tracing=True)
        ctx.finish_root(route="/rank", method="GET", status=200)
        (root,) = ctx.buffer.records
        assert root["name"] == "gateway.request"
        assert root["trace_id"] == "deadbeef"
        assert root["parent_id"] == "cafe"

    def test_phase_records_parent_to_the_root(self):
        ctx = RequestContext("deadbeef", tracing=True)
        ctx.observe_parse(0.001, 100.0)
        ctx.observe_queue_wait(0.002, 100.0)
        ctx.observe_batch_wait(0.003, 100.0)
        ctx.backend_header()
        ctx.observe_backend(0.004, 100.0)
        ctx.finish_root(route="/rank", method="GET", status=200)
        records = {r["name"]: r for r in ctx.buffer.records}
        assert set(records) == {
            "gateway.parse", "gateway.admission_wait", "gateway.batch_wait",
            "gateway.backend", "gateway.request",
        }
        root = records["gateway.request"]
        for name, record in records.items():
            if name != "gateway.request":
                assert record["parent_id"] == root["span_id"]
        assert ctx.queue_wait == 0.002
        assert ctx.batch_wait == 0.003
        assert ctx.backend_seconds == 0.004

    def test_backend_header_hands_the_span_id_downstream(self):
        ctx = RequestContext("deadbeef", tracing=True)
        header = ctx.backend_header()
        assert header["trace_id"] == "deadbeef"
        ctx.observe_backend(0.001, 100.0)
        (backend,) = ctx.buffer.records
        assert backend["span_id"] == header["span_id"]

    def test_error_status_marks_the_root(self):
        ctx = RequestContext(None, tracing=True)
        ctx.finish_root(route="/rank", method="GET", status=503)
        assert ctx.buffer.records[0]["status"] == "error"


class TestDegradedGatewayTraceTree:
    def test_one_request_yields_one_connected_tree(self, sharded_parity):
        """The ISSUE 10 acceptance pin, end to end."""
        router = _router(
            sharded_parity, best_effort=True, retries=0, breaker_threshold=1
        )
        term = router.indexed_terms()[0]
        obs.enable_telemetry()
        gateway = GatewayServer(router, port=0)
        trace_id = "feedfacefeedface"
        plan = FaultPlan(seed=0)
        plan.fail_at("shard.query", at=1, times=10_000, shard=0)
        with GatewayThread(gateway) as handle:
            with inject(plan):
                status, headers, body = handle.get(
                    f"/rank?q={term}", headers={TRACE_HEADER: trace_id}
                )
            assert status == 200
            assert headers["X-Repro-Exact"] == "0"  # genuinely degraded
            # the response echoes the id the client injected
            assert headers[TRACE_HEADER] == trace_id

            trace_status, _h, payload = handle.get(
                f"/trace?trace_id={trace_id}"
            )
        assert trace_status == 200
        assert payload["tracing"] is True
        spans = payload["spans"]
        assert payload["n_spans"] == len(spans) > 0
        assert all(s["trace_id"] == trace_id for s in spans)

        # ONE connected tree: gateway root -> phases -> router -> shards
        trees = span_trees(spans, trace_id=trace_id)
        assert len(trees) == 1
        root = trees[0]
        assert root["span"]["name"] == "gateway.request"
        assert root["span"]["parent_id"] is None
        phases = {child["span"]["name"] for child in root["children"]}
        assert {"gateway.parse", "gateway.admission_wait",
                "gateway.backend"} <= phases
        (backend,) = [
            c for c in root["children"]
            if c["span"]["name"] == "gateway.backend"
        ]
        (gather,) = backend["children"]
        assert gather["span"]["name"] == "router.gather"
        shard_calls = [
            c for c in gather["children"]
            if c["span"]["name"] == "shard.call"
        ]
        assert {c["span"]["tags"]["shard"] for c in shard_calls} == {0, 1}

        # the access record tells the same story
        (record,) = [
            r for r in gateway.access_log.export() if r["route"] == "/rank"
        ]
        assert record["trace_id"] == trace_id
        assert record["status"] == 200
        assert record["degraded"] is True
        assert record["coverage"] < 1.0
        assert record["trace_kept"] is True

    def test_without_a_client_id_the_gateway_mints_one(
        self, sharded_parity
    ):
        router = _router(sharded_parity, best_effort=True)
        term = router.indexed_terms()[0]
        obs.enable_telemetry()
        gateway = GatewayServer(router, port=0)
        with GatewayThread(gateway) as handle:
            status, headers, _body = handle.get(f"/rank?q={term}")
            assert status == 200
            trace_id = headers[TRACE_HEADER]
            assert trace_id
            _s, _h, payload = handle.get(f"/trace?trace_id={trace_id}")
        trees = span_trees(payload["spans"], trace_id=trace_id)
        assert len(trees) == 1
        assert trees[0]["span"]["name"] == "gateway.request"


class TestGatewayTracePlumbing:
    def test_tracing_disabled_echoes_but_records_nothing(self, store, term):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, headers, _body = handle.get(
                f"/rank?q={term}", headers={TRACE_HEADER: "deadbeef"}
            )
            assert status == 200
            assert headers[TRACE_HEADER] == "deadbeef"
            _s, _h, payload = handle.get("/trace?trace_id=deadbeef")
        assert payload["tracing"] is False
        assert payload["spans"] == []
        assert gateway.stats()["traces_kept"] == 0

    def test_tail_dropped_trace_never_reaches_the_sink(self, store, term):
        obs.enable_telemetry()
        gateway = GatewayServer(store, port=0)

        class DropAll:
            def keep(self, latency, *, error=False, forced=False):
                return False

            def stats(self):
                return {}

        gateway.tail = DropAll()
        with GatewayThread(gateway) as handle:
            status, headers, _body = handle.get(f"/rank?q={term}")
            assert status == 200
            minted = headers[TRACE_HEADER]
            _s, _h, payload = handle.get(f"/trace?trace_id={minted}")
        assert payload["spans"] == []
        stats = gateway.stats()
        assert stats["traces_dropped"] == 1
        assert stats["traces_kept"] == 0
        # the access record still exists and says the trace was dropped
        (record,) = [
            r for r in gateway.access_log.export() if r["route"] == "/rank"
        ]
        assert record["trace_kept"] is False

    def test_deadline_budget_lands_in_the_access_record(self, store, term):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, _h, _body = handle.get(
                f"/rank?q={term}", headers={"X-Deadline-Ms": "5000"}
            )
            assert status == 200
        (record,) = [
            r for r in gateway.access_log.export() if r["route"] == "/rank"
        ]
        assert record["deadline_budget"] == pytest.approx(5.0, abs=0.1)
        assert record["deadline_remaining"] is not None
        assert record["deadline_remaining"] <= record["deadline_budget"]

    def test_batched_store_requests_trace_their_batch_wait(self, store, term):
        obs.enable_telemetry()
        gateway = GatewayServer(store, port=0)
        trace_id = "abadcafeabadcafe"
        with GatewayThread(gateway) as handle:
            status, _h, _body = handle.get(
                f"/rank?q={term}", headers={TRACE_HEADER: trace_id}
            )
            assert status == 200
            _s, _h, payload = handle.get(f"/trace?trace_id={trace_id}")
        names = {s["name"] for s in payload["spans"]}
        assert "gateway.batch_wait" in names
        (backend,) = [
            s for s in payload["spans"] if s["name"] == "gateway.backend"
        ]
        assert backend["tags"]["batched"] >= 1

"""Tests for workload estimation and segment scheduling (Sect. 4.3)."""

import numpy as np
import pytest

from repro.core import CPDConfig
from repro.core.gibbs import CPDSampler
from repro.core.parameters import DiffusionParameters
from repro.parallel.scheduler import (
    WorkloadModel,
    build_schedule,
    measure_workload_model,
    partition_ranges,
)
from repro.parallel.segmentation import DataSegment, segment_users_by_topic


class TestPartitionRanges:
    def test_covers_everything_once(self):
        ranges = partition_ranges(10, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start  # contiguous, disjoint

    def test_near_even_sizes(self):
        sizes = [stop - start for start, stop in partition_ranges(11, 4)]
        assert sum(sizes) == 11
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_items(self):
        ranges = partition_ranges(2, 5)
        sizes = [stop - start for start, stop in ranges]
        assert sum(sizes) == 2
        assert all(size in (0, 1) for size in sizes)

    def test_zero_items(self):
        assert partition_ranges(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            partition_ranges(5, 0)
        with pytest.raises(ValueError):
            partition_ranges(-1, 2)


def _segment(segment_id, n_docs, n_friend, n_diff):
    return DataSegment(
        segment_id=segment_id,
        users=np.arange(max(n_docs, 1)),
        doc_ids=np.arange(n_docs),
        n_friendship_links=n_friend,
        n_diffusion_links=n_diff,
    )


class TestWorkloadModel:
    def test_estimate_is_the_weighted_item_sum(self):
        model = WorkloadModel(
            seconds_per_document=2.0,
            seconds_per_friendship_link=0.5,
            seconds_per_diffusion_link=0.25,
        )
        segment = _segment(0, n_docs=10, n_friend=4, n_diff=8)
        assert model.estimate_segment(segment) == pytest.approx(
            10 * 2.0 + 4 * 0.5 + 8 * 0.25
        )

    def test_empty_segment_costs_nothing(self):
        model = WorkloadModel(1.0, 1.0, 1.0)
        assert model.estimate_segment(_segment(0, 0, 0, 0)) == 0.0

    def test_estimate_is_additive_over_segments(self):
        model = WorkloadModel(1.5, 0.2, 0.3)
        a = _segment(0, 5, 2, 1)
        b = _segment(1, 7, 0, 3)
        combined = _segment(2, 12, 2, 4)
        assert model.estimate_segment(a) + model.estimate_segment(b) == pytest.approx(
            model.estimate_segment(combined)
        )


class TestMeasureWorkloadModel:
    @pytest.fixture(scope="class")
    def sampler(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        params = DiffusionParameters.initial(
            tiny_config.n_communities, tiny_config.n_topics
        )
        return CPDSampler(graph, tiny_config, params, rng=0)

    def test_probe_yields_positive_costs(self, sampler):
        model = measure_workload_model(sampler, probe_documents=20)
        assert model.seconds_per_document > 0
        assert model.seconds_per_friendship_link > 0  # tiny graph has F links
        assert model.seconds_per_diffusion_link > 0  # ... and E links

    def test_probe_larger_than_corpus_is_clamped(self, sampler):
        model = measure_workload_model(sampler, probe_documents=10**6)
        assert model.seconds_per_document > 0

    def test_linkless_graph_reports_zero_link_costs(self, tiny_config):
        from repro.graph.builder import SocialGraphBuilder

        builder = SocialGraphBuilder()
        user_ids = [builder.add_user(name=f"u{user}") for user in range(3)]
        for user_id in user_ids:
            builder.add_document(user_id, ["alpha", "beta", "gamma"], timestamp=0)
        graph = builder.build()
        params = DiffusionParameters.initial(
            tiny_config.n_communities, tiny_config.n_topics
        )
        sampler = CPDSampler(graph, tiny_config, params, rng=0)
        model = measure_workload_model(sampler, probe_documents=3)
        assert model.seconds_per_friendship_link == 0.0
        assert model.seconds_per_diffusion_link == 0.0


class TestBuildSchedule:
    def _model(self):
        return WorkloadModel(
            seconds_per_document=1.0,
            seconds_per_friendship_link=0.1,
            seconds_per_diffusion_link=0.1,
        )

    def _segments(self, sizes):
        return [
            _segment(index, n_docs, n_friend=0, n_diff=0)
            for index, n_docs in enumerate(sizes)
        ]

    def test_every_segment_assigned_exactly_once(self):
        segments = self._segments([5, 9, 2, 7, 4, 1])
        schedule = build_schedule(segments, self._model(), n_workers=3)
        assigned = sorted(
            segment_id
            for worker in schedule.allocation.assignments
            for segment_id in worker
        )
        assert assigned == list(range(len(segments)))

    def test_worker_loads_sum_to_total(self):
        segments = self._segments([5, 9, 2, 7, 4, 1])
        schedule = build_schedule(segments, self._model(), n_workers=3)
        assert schedule.estimated_worker_seconds().sum() == pytest.approx(
            schedule.segment_workloads.sum()
        )

    def test_balance_within_largest_segment(self):
        """Max worker load can exceed the O/M share by at most one segment."""
        sizes = [5, 9, 2, 7, 4, 1, 3, 8]
        segments = self._segments(sizes)
        schedule = build_schedule(segments, self._model(), n_workers=3)
        loads = schedule.estimated_worker_seconds()
        share = schedule.segment_workloads.sum() / 3
        assert loads.max() <= share + max(sizes)

    def test_equal_segments_balance_perfectly(self):
        segments = self._segments([4] * 8)
        schedule = build_schedule(segments, self._model(), n_workers=4)
        loads = schedule.estimated_worker_seconds()
        np.testing.assert_allclose(loads, np.full(4, 8.0))
        assert schedule.allocation.imbalance() == pytest.approx(1.0)

    def test_worker_doc_ids_concatenate_their_segments(self):
        segments = self._segments([3, 2, 4])
        schedule = build_schedule(segments, self._model(), n_workers=2)
        for worker in range(schedule.n_workers):
            expected = sum(
                segments[s].n_documents
                for s in schedule.allocation.assignments[worker]
            )
            assert len(schedule.worker_doc_ids(worker)) == expected

    def test_more_workers_than_segments_leaves_idle_workers(self):
        segments = self._segments([6, 6])
        schedule = build_schedule(segments, self._model(), n_workers=5)
        loads = schedule.estimated_worker_seconds()
        assert (loads > 0).sum() == 2
        assert loads.sum() == pytest.approx(12.0)

    def test_empty_segment_list_raises(self):
        with pytest.raises(ValueError):
            build_schedule([], self._model(), n_workers=2)

    def test_schedule_from_real_segmentation(self, twitter_tiny):
        """The full Sect. 4.3 pipeline: LDA segmentation → schedule."""
        graph, _ = twitter_tiny
        segments = segment_users_by_topic(graph, n_segments=4, rng=0)
        model = WorkloadModel(1e-4, 1e-6, 1e-6)
        schedule = build_schedule(segments, model, n_workers=2)
        covered = np.concatenate(
            [schedule.worker_doc_ids(w) for w in range(schedule.n_workers)]
        )
        assert sorted(covered.tolist()) == list(range(graph.n_documents))

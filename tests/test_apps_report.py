"""Tests for the markdown community report generator."""

import pytest

from repro.apps.report import build_report, community_section
from repro.evaluation import select_queries


class TestCommunitySection:
    def test_section_contents(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        section = community_section(fitted_cpd, graph, 0)
        assert section.startswith("### Community c00")
        assert "openness" in section
        assert "content profile" in section
        assert "diffusion profile" in section


class TestBuildReport:
    def test_full_report_structure(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        report = build_report(fitted_cpd, graph)
        assert report.startswith("# Community profile report")
        assert "## Openness ranking" in report
        assert "## Topic generality" in report
        assert "## Communities" in report
        for community in range(fitted_cpd.n_communities):
            assert f"### Community c{community:02d}" in report

    def test_queries_included(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        queries = select_queries(graph, min_frequency=2, hashtags_only=True, max_queries=2)
        report = build_report(fitted_cpd, graph, queries=queries)
        assert "## Query rankings" in report
        assert queries[0].term in report

    def test_custom_title(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        report = build_report(fitted_cpd, graph, title="My Network")
        assert report.startswith("# My Network")

    def test_factor_weights_reported(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        report = build_report(fitted_cpd, graph)
        assert "Diffusion factor weights" in report

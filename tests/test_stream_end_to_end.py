"""End-to-end streaming acceptance: replay → ingest → refresh → snapshot.

The ISSUE 3 acceptance bar: stream a synthetic dataset through the full
pipeline and show the incrementally-maintained assignments agree with a
cold batch refit (NMI ≥ 0.8), with hot-swap preserving the ProfileStore's
query results.
"""

import numpy as np
import pytest

from repro.core import CPDConfig, CPDModel, load_artifact
from repro.datasets import SyntheticConfig, generate_synthetic
from repro.evaluation.nmi import normalized_mutual_information
from repro.serving import GraphSummary, ProfileStore
from repro.stream import (
    IncrementalRefresher,
    MicroBatchIngestor,
    Snapshotter,
    StreamCursor,
    split_for_replay,
)

#: strongly-planted scenario: streamed and cold fits must land in the same
#: mode for the agreement bar to be meaningful
SCENARIO = SyntheticConfig(
    n_users=60,
    n_communities=4,
    n_topics=8,
    vocabulary_size=200,
    docs_per_user_mean=6.0,
    doc_length_mean=12.0,
    n_friendship_links=400,
    n_diffusion_links=200,
    conforming_fraction=0.9,
    pi_primary_boost=10.0,
    pi_concentration=0.03,
    community_topic_boost=15.0,
    topic_word_block_boost=40.0,
    n_time_buckets=12,
    name="stream-accept",
)
CONFIG = CPDConfig(n_communities=4, n_topics=8, n_iterations=20, rho=0.5, alpha=0.5)


@pytest.fixture(scope="module")
def replayed():
    """Run the whole pipeline once; every test reads from the outcome."""
    graph, truth = generate_synthetic(SCENARIO, rng=3)
    plan = split_for_replay(graph, warm_fraction=0.5)
    base_fit = CPDModel(CONFIG, rng=1).fit(plan.base_graph)
    store = ProfileStore.from_fit(base_fit, plan.base_graph)
    base_summary = GraphSummary.from_graph(plan.base_graph)

    refresher = IncrementalRefresher(plan.base_graph, base_fit, rng=5, n_sweeps=3)
    ingestor = MicroBatchIngestor(
        store, refresher, batch_size=32, refresh_interval=64, rng=7
    )
    ingestor.submit_many(plan.events)
    ingestor.refresh()

    snapshotter = Snapshotter(
        refresher, vocabulary=graph.vocabulary, base_summary=base_summary
    )
    cold_fit = CPDModel(CONFIG, rng=1).fit(plan.full_graph)
    return {
        "plan": plan,
        "truth": truth,
        "store": store,
        "ingestor": ingestor,
        "refresher": refresher,
        "snapshotter": snapshotter,
        "cold_fit": cold_fit,
    }


class TestIncrementalAgreement:
    def test_stream_covers_every_document(self, replayed):
        plan, refresher = replayed["plan"], replayed["refresher"]
        assert refresher.n_documents == plan.full_graph.n_documents
        assert refresher.sampler.n_diff_links == plan.full_graph.n_diffusion_links
        refresher.sampler.state.check_consistency()

    def test_document_assignments_agree_with_cold_refit(self, replayed):
        stream = replayed["refresher"].snapshot_result()
        cold = replayed["cold_fit"]
        nmi = normalized_mutual_information(stream.doc_community, cold.doc_community)
        assert nmi >= 0.8, f"stream vs cold-refit document NMI {nmi:.3f} < 0.8"

    def test_user_communities_agree_with_cold_refit(self, replayed):
        stream = replayed["refresher"].snapshot_result()
        cold = replayed["cold_fit"]
        nmi = normalized_mutual_information(
            stream.hard_community_per_user(), cold.hard_community_per_user()
        )
        assert nmi >= 0.8, f"stream vs cold-refit user NMI {nmi:.3f} < 0.8"

    def test_stream_recovers_the_planted_truth(self, replayed):
        stream = replayed["refresher"].snapshot_result()
        truth, plan = replayed["truth"], replayed["plan"]
        order = np.argsort(plan.doc_id_map)  # replay id -> original id
        nmi = normalized_mutual_information(
            stream.doc_community, truth.doc_community[order]
        )
        assert nmi >= 0.7, f"stream vs planted-truth NMI {nmi:.3f} < 0.7"


class TestSnapshotAndHotSwap:
    def test_v3_artifact_roundtrip(self, replayed, tmp_path):
        path = tmp_path / "stream.cpd.npz"
        result = replayed["snapshotter"].save(path)
        artifact = load_artifact(path)
        assert artifact.format_version == 3
        assert artifact.self_contained
        cursor = StreamCursor.from_dict(artifact.stream_cursor)
        ingestor = replayed["ingestor"]
        assert cursor.documents_appended == ingestor.n_documents
        assert cursor.links_appended == ingestor.n_links
        assert cursor.refreshes == len(ingestor.refresh_reports)
        np.testing.assert_array_equal(
            artifact.result.doc_community, result.doc_community
        )

    def test_hot_swap_matches_a_fresh_store(self, replayed, tmp_path):
        """The live store after hot-swap must answer exactly like a store
        opened cold from the snapshot artifact."""
        path = tmp_path / "swap.cpd.npz"
        snapshotter = replayed["snapshotter"]
        store = replayed["store"]
        snapshotter.save(path)
        snapshotter.hot_swap(store)
        fresh = ProfileStore.from_artifact(path)

        terms = [query.term for query in fresh.indexed_queries(8)]
        assert terms
        for term in terms:
            assert store.rank(term) == fresh.rank(term)
        np.testing.assert_array_equal(
            store.top_communities(3), fresh.top_communities(3)
        )
        assert store.labels() == fresh.labels()
        np.testing.assert_allclose(
            store.popularity_matrix(), fresh.popularity_matrix()
        )

    def test_hot_swap_serves_the_grown_corpus(self, replayed):
        store, plan = replayed["store"], replayed["plan"]
        snapshotter = replayed["snapshotter"]
        snapshotter.hot_swap(store)
        assert store.stats.n_documents == plan.full_graph.n_documents
        assert len(store.doc_user()) == plan.full_graph.n_documents

    def test_hot_swap_preserves_store_identity_and_counters(self, replayed):
        store = replayed["store"]
        term = store.indexed_queries(1)[0].term
        store.rank(term)
        before = store.cache_info()
        replayed["snapshotter"].hot_swap(store)
        after = store.cache_info()
        assert after["size"] == 0  # entries dropped ...
        assert after["hits"] >= before["hits"]  # ... counters preserved
        assert store.rank(term)  # and the store still serves

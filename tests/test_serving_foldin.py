"""Tests for frozen-model fold-in inference."""

import numpy as np
import pytest

from repro.serving import fold_in_document, fold_in_documents


class TestFoldInAgreement:
    def test_matches_full_fit_assignments(self, fitted_cpd, twitter_tiny):
        """ISSUE 2 acceptance: >=80% agreement with the full fit.

        Every document of the matched-seed scenario is treated as held out
        and folded back in against the frozen model; the recovered
        communities must agree with the offline Gibbs assignments on at
        least 80% of documents (the chains are exchangeable up to posterior
        uncertainty, so agreement is high but not exact).
        """
        graph, _ = twitter_tiny
        documents = [doc.words for doc in graph.documents]
        users = [doc.user_id for doc in graph.documents]
        fold = fold_in_documents(
            fitted_cpd, documents, users=users, n_sweeps=30, burn_in=5, rng=0
        )
        community_agreement = float(
            np.mean(fold.communities == fitted_cpd.doc_community)
        )
        topic_agreement = float(np.mean(fold.topics == fitted_cpd.doc_topic))
        assert community_agreement >= 0.8, f"community agreement {community_agreement:.3f}"
        assert topic_agreement >= 0.8, f"topic agreement {topic_agreement:.3f}"

    def test_posteriors_are_distributions(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        documents = [doc.words for doc in graph.documents[:10]]
        users = [doc.user_id for doc in graph.documents[:10]]
        fold = fold_in_documents(fitted_cpd, documents, users=users, rng=1)
        np.testing.assert_allclose(fold.community_posterior.sum(axis=1), 1.0)
        np.testing.assert_allclose(fold.topic_posterior.sum(axis=1), 1.0)
        assert np.all(fold.community_posterior >= 0.0)

    def test_map_assignment_consistent_with_posterior(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        documents = [doc.words for doc in graph.documents[:10]]
        fold = fold_in_documents(fitted_cpd, documents, rng=2)
        np.testing.assert_array_equal(
            fold.communities, np.argmax(fold.community_posterior, axis=1)
        )
        np.testing.assert_array_equal(
            fold.topics, np.argmax(fold.topic_posterior, axis=1)
        )


class TestFoldInMechanics:
    def test_deterministic_under_seed(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        documents = [doc.words for doc in graph.documents[:20]]
        users = [doc.user_id for doc in graph.documents[:20]]
        first = fold_in_documents(fitted_cpd, documents, users=users, rng=7)
        second = fold_in_documents(fitted_cpd, documents, users=users, rng=7)
        np.testing.assert_array_equal(first.communities, second.communities)
        np.testing.assert_array_equal(first.topics, second.topics)

    def test_unknown_user_gets_uniform_prior(self, fitted_cpd):
        words = np.asarray([0, 1, 2], dtype=np.int64)
        fold = fold_in_documents(
            fitted_cpd, [words, words], users=[None, -1], n_sweeps=10, rng=3
        )
        assert len(fold) == 2
        assert fold.communities.shape == (2,)

    def test_known_user_prior_steers_community(self, fitted_cpd, twitter_tiny):
        """An empty document must follow the user's membership prior."""
        graph, _ = twitter_tiny
        user = 0
        empty = np.zeros(0, dtype=np.int64)
        fold = fold_in_documents(
            fitted_cpd, [empty], users=[user], n_sweeps=200, burn_in=20, rng=4
        )
        # the sampled marginal should put most mass near pi[user]
        top_prior = int(np.argmax(fitted_cpd.pi[user]))
        assert fold.community_posterior[0, top_prior] >= 0.25

    def test_empty_batch(self, fitted_cpd):
        fold = fold_in_documents(fitted_cpd, [], users=None, rng=5)
        assert len(fold) == 0
        assert fold.community_posterior.shape == (0, fitted_cpd.n_communities)

    def test_out_of_vocabulary_raises(self, fitted_cpd):
        with pytest.raises(ValueError, match="out-of-vocabulary"):
            fold_in_documents(fitted_cpd, [np.asarray([10**6])], rng=6)

    def test_mismatched_users_raises(self, fitted_cpd):
        with pytest.raises(ValueError, match="align"):
            fold_in_documents(
                fitted_cpd, [np.zeros(1, dtype=np.int64)], users=[0, 1], rng=6
            )

    def test_unknown_user_id_raises(self, fitted_cpd):
        with pytest.raises(ValueError, match="outside"):
            fold_in_documents(
                fitted_cpd, [np.zeros(1, dtype=np.int64)], users=[10**6], rng=6
            )

    def test_invalid_sweep_schedule(self, fitted_cpd):
        with pytest.raises(ValueError):
            fold_in_documents(fitted_cpd, [], n_sweeps=0)
        with pytest.raises(ValueError):
            fold_in_documents(fitted_cpd, [], n_sweeps=5, burn_in=5)

    def test_single_document_wrapper(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        doc = graph.documents[3]
        fold = fold_in_document(fitted_cpd, doc.words, user=doc.user_id, rng=8)
        assert len(fold) == 1
        assert 0 <= int(fold.communities[0]) < fitted_cpd.n_communities


class TestStoreFoldIn:
    def test_token_documents_are_encoded(self, fitted_cpd, twitter_tiny):
        from repro.serving import ProfileStore

        graph, _ = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        doc = graph.documents[0]
        tokens = [graph.vocabulary.word_of(int(w)) for w in doc.words]
        by_tokens = store.fold_in(
            [tokens], users=[doc.user_id], n_sweeps=15, rng=9
        )
        by_ids = store.fold_in(
            [doc.words], users=[doc.user_id], n_sweeps=15, rng=9
        )
        np.testing.assert_array_equal(by_tokens.communities, by_ids.communities)
        np.testing.assert_array_equal(by_tokens.topics, by_ids.topics)

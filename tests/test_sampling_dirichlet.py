"""Tests for repro.sampling.dirichlet."""

import numpy as np
import pytest
from scipy.special import gammaln

from repro.sampling import (
    dirichlet_expected_log,
    log_delta,
    log_delta_ratio,
    smoothed_probability,
)


class TestLogDelta:
    def test_matches_gamma_functions(self):
        x = np.array([1.0, 2.0, 3.0])
        expected = gammaln(x).sum() - gammaln(x.sum())
        assert log_delta(x) == pytest.approx(expected)

    def test_uniform_two(self):
        # Delta([1, 1]) = Gamma(1)^2 / Gamma(2) = 1
        assert log_delta(np.array([1.0, 1.0])) == pytest.approx(0.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_delta(np.array([1.0, 0.0]))


class TestLogDeltaRatio:
    def test_zero_counts_is_zero(self):
        assert log_delta_ratio(np.zeros(4), 0.5) == pytest.approx(0.0)

    def test_increases_with_concentrated_counts(self):
        spread = log_delta_ratio(np.array([2.0, 2.0]), 0.5)
        peaked = log_delta_ratio(np.array([4.0, 0.0]), 0.5)
        assert peaked > spread

    def test_rejects_bad_prior(self):
        with pytest.raises(ValueError):
            log_delta_ratio(np.ones(3), 0.0)


class TestSmoothedProbability:
    def test_normalised(self):
        out = smoothed_probability(np.array([1.0, 3.0]), prior=0.5)
        assert out.sum() == pytest.approx(1.0)

    def test_paper_estimator_form(self):
        counts = np.array([2.0, 0.0])
        out = smoothed_probability(counts, prior=0.5)
        np.testing.assert_allclose(out, [(2 + 0.5) / 3.0, 0.5 / 3.0])

    def test_zero_counts_uniform(self):
        out = smoothed_probability(np.zeros(4), prior=1.0)
        np.testing.assert_allclose(out, 0.25)

    def test_matrix_rows(self):
        counts = np.array([[1.0, 0.0], [0.0, 0.0]])
        out = smoothed_probability(counts, prior=1.0)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_rejects_bad_prior(self):
        with pytest.raises(ValueError):
            smoothed_probability(np.ones(3), prior=-1.0)


class TestDirichletExpectedLog:
    def test_below_log_of_mean(self):
        counts = np.array([5.0, 5.0])
        expected_log = dirichlet_expected_log(counts, prior=1.0)
        mean = smoothed_probability(counts, prior=1.0)
        assert np.all(expected_log < np.log(mean))

    def test_ordering_follows_counts(self):
        out = dirichlet_expected_log(np.array([10.0, 1.0]), prior=0.5)
        assert out[0] > out[1]

"""Tests for user features and topic popularity."""

import numpy as np
import pytest

from repro.diffusion import TopicPopularity, UserFeatures


class TestUserFeatures:
    def test_shapes(self, twitter_tiny):
        graph, _ = twitter_tiny
        features = UserFeatures(graph)
        assert features.popularity.shape == (graph.n_users,)
        assert features.activeness.shape == (graph.n_users,)

    def test_pair_features_layout(self, twitter_tiny):
        graph, _ = twitter_tiny
        features = UserFeatures(graph)
        pair = features.pair_features(0, 1)
        assert pair.shape == (UserFeatures.N_FEATURES,)
        assert pair[0] == features.popularity[0]
        assert pair[2] == features.popularity[1]

    def test_batch_matches_single(self, twitter_tiny):
        graph, _ = twitter_tiny
        features = UserFeatures(graph)
        batch = features.pair_features_batch(np.array([0, 2]), np.array([1, 3]))
        np.testing.assert_allclose(batch[0], features.pair_features(0, 1))
        np.testing.assert_allclose(batch[1], features.pair_features(2, 3))

    def test_batch_rejects_mismatched(self, twitter_tiny):
        graph, _ = twitter_tiny
        features = UserFeatures(graph)
        with pytest.raises(ValueError):
            features.pair_features_batch(np.array([0]), np.array([1, 2]))

    def test_popularity_reflects_followers(self, twitter_tiny):
        """Popularity is the smoothed follower (in-degree) count."""
        graph, _ = twitter_tiny
        features = UserFeatures(graph, log_scale=False)
        followers = np.array([graph.follower_count(u) for u in range(graph.n_users)])
        np.testing.assert_allclose(features.popularity, followers + 1.0)

    def test_popularity_varies_on_symmetric_graphs(self, dblp_tiny):
        """The paper's follower/followee ratio is constant 1 on symmetric
        co-authorship graphs; the follower-count definition still varies."""
        graph, _ = dblp_tiny
        features = UserFeatures(graph)
        assert features.popularity.std() > 0

    def test_log_scale_default(self, twitter_tiny):
        graph, _ = twitter_tiny
        raw = UserFeatures(graph, log_scale=False)
        logged = UserFeatures(graph, log_scale=True)
        np.testing.assert_allclose(logged.popularity, np.log(raw.popularity))


class TestTopicPopularity:
    def test_increment_decrement_roundtrip(self):
        table = TopicPopularity(n_topics=3, n_time_buckets=4)
        table.increment(1, 2)
        assert table.count(1, 2) == 1
        table.decrement(1, 2)
        assert table.count(1, 2) == 0

    def test_underflow_raises(self):
        table = TopicPopularity(n_topics=2, n_time_buckets=2)
        with pytest.raises(ValueError):
            table.decrement(0, 0)

    def test_move(self):
        table = TopicPopularity(n_topics=3, n_time_buckets=2)
        table.increment(0, 1)
        table.move(0, 1, 2)
        assert table.count(0, 1) == 0
        assert table.count(0, 2) == 1

    def test_from_assignments(self):
        table = TopicPopularity.from_assignments(
            timestamps=np.array([0, 0, 1]),
            topics=np.array([1, 1, 0]),
            n_topics=2,
            n_time_buckets=2,
        )
        assert table.count(0, 1) == 2
        assert table.count(1, 0) == 1

    def test_proportion_mode_bounded(self):
        table = TopicPopularity(n_topics=2, n_time_buckets=1, mode="proportion")
        for _ in range(10):
            table.increment(0, 0)
        scores = table.scores(0)
        assert scores[0] == pytest.approx(1.0)
        assert scores[1] == pytest.approx(0.0)

    def test_raw_mode(self):
        table = TopicPopularity(n_topics=2, n_time_buckets=1, mode="raw")
        table.increment(0, 0)
        table.increment(0, 0)
        assert table.score(0, 0) == pytest.approx(2.0)

    def test_log_mode(self):
        table = TopicPopularity(n_topics=2, n_time_buckets=1, mode="log")
        table.increment(0, 1)
        assert table.score(0, 1) == pytest.approx(np.log(2.0))

    def test_weight_scales_scores(self):
        table = TopicPopularity(n_topics=1, n_time_buckets=1, mode="raw", weight=3.0)
        table.increment(0, 0)
        assert table.score(0, 0) == pytest.approx(3.0)

    def test_score_matrix_matches_rows(self):
        table = TopicPopularity.from_assignments(
            timestamps=np.array([0, 1, 1]),
            topics=np.array([0, 1, 1]),
            n_topics=2,
            n_time_buckets=2,
        )
        matrix = table.score_matrix()
        np.testing.assert_allclose(matrix[0], table.scores(0))
        np.testing.assert_allclose(matrix[1], table.scores(1))

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            TopicPopularity(1, 1, mode="exotic")

    @pytest.mark.parametrize("mode", ["raw", "proportion", "log"])
    def test_scores_batch_matches_rowwise_scores(self, mode):
        table = TopicPopularity.from_assignments(
            timestamps=np.array([0, 1, 1, 2]),
            topics=np.array([0, 1, 1, 0]),
            n_topics=3,
            n_time_buckets=3,
            mode=mode,
            weight=2.0,
        )
        timestamps = np.array([2, 0, 1, 1])
        batch = table.scores_batch(timestamps)
        for row, timestamp in enumerate(timestamps):
            np.testing.assert_allclose(batch[row], table.scores(int(timestamp)))

    def test_scores_batch_cache_tracks_mutations(self):
        table = TopicPopularity(n_topics=2, n_time_buckets=2, mode="proportion")
        table.increment(0, 0)
        before = table.scores_batch(np.array([0])).copy()
        table.increment(0, 1)
        after = table.scores_batch(np.array([0]))
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after[0], table.scores(0))
        table.decrement(0, 1)
        np.testing.assert_allclose(table.scores_batch(np.array([0]))[0], before[0])

    def test_scores_at_matches_batch(self):
        table = TopicPopularity.from_assignments(
            timestamps=np.array([0, 1, 1]),
            topics=np.array([0, 1, 1]),
            n_topics=2,
            n_time_buckets=2,
        )
        timestamps = np.array([0, 1, 1])
        topics = np.array([1, 0, 1])
        values = table.scores_at(timestamps, topics)
        batch = table.scores_batch(timestamps)
        np.testing.assert_allclose(values, batch[np.arange(3), topics])

    def test_increment_decrement_many(self):
        table = TopicPopularity(n_topics=3, n_time_buckets=2)
        table.increment_many(np.array([0, 0, 1]), np.array([2, 2, 0]))
        assert table.count(0, 2) == 2
        assert table.count(1, 0) == 1
        table.decrement_many(np.array([0]), np.array([2]))
        assert table.count(0, 2) == 1
        with pytest.raises(ValueError):
            table.decrement_many(np.array([1, 1]), np.array([0, 0]))

    def test_move_many_matches_scalar_moves(self):
        bulk = TopicPopularity(n_topics=3, n_time_buckets=2)
        scalar = TopicPopularity(n_topics=3, n_time_buckets=2)
        timestamps = np.array([0, 0, 1, 1])
        old_topics = np.array([0, 1, 2, 0])
        new_topics = np.array([1, 1, 0, 2])
        bulk.increment_many(timestamps, old_topics)
        scalar.increment_many(timestamps, old_topics)
        bulk.move_many(timestamps, old_topics, new_topics)
        for t, old, new in zip(timestamps, old_topics, new_topics):
            scalar.move(int(t), int(old), int(new))
        np.testing.assert_array_equal(bulk.counts_matrix(), scalar.counts_matrix())

    def test_totals_per_topic(self):
        table = TopicPopularity.from_assignments(
            np.array([0, 1]), np.array([1, 1]), n_topics=2, n_time_buckets=2
        )
        np.testing.assert_allclose(table.totals_per_topic(), [0.0, 2.0])

"""Tests for perplexity, cross-validation, significance, queries and NMI."""

import numpy as np
import pytest

from repro.evaluation import (
    content_perplexity,
    diffusion_auc_folds,
    friendship_auc_folds,
    independent_one_tailed_ttest,
    nmi_matrix,
    normalized_mutual_information,
    paired_one_tailed_ttest,
    queries_by_frequency_band,
    repeated_metric,
    select_queries,
)


class TestPerplexity:
    def test_better_profile_scores_lower(self, twitter_tiny, fitted_cpd):
        graph, _ = twitter_tiny
        fitted = content_perplexity(graph, fitted_cpd.pi, fitted_cpd.theta, fitted_cpd.phi)
        # uniform profile: every word equally likely
        n_c, n_z, n_w = 4, 8, graph.n_words
        uniform = content_perplexity(
            graph,
            np.full((graph.n_users, n_c), 1 / n_c),
            np.full((n_c, n_z), 1 / n_z),
            np.full((n_z, n_w), 1 / n_w),
        )
        assert fitted < uniform
        assert uniform == pytest.approx(n_w, rel=1e-6)

    def test_subset_of_documents(self, twitter_tiny, fitted_cpd):
        graph, _ = twitter_tiny
        value = content_perplexity(
            graph, fitted_cpd.pi, fitted_cpd.theta, fitted_cpd.phi, doc_ids=np.arange(10)
        )
        assert value > 0

    def test_shape_validation(self, twitter_tiny, fitted_cpd):
        graph, _ = twitter_tiny
        with pytest.raises(ValueError):
            content_perplexity(graph, fitted_cpd.pi[:3], fitted_cpd.theta, fitted_cpd.phi)


class TestFoldedAUC:
    def test_diffusion_folds(self, twitter_tiny, rng):
        graph, _ = twitter_tiny

        def oracle(src, tgt, t):
            return np.ones(len(src))  # constant scores -> AUC 0.5 by ties

        folded = diffusion_auc_folds(graph, oracle, n_folds=5, rng=rng)
        assert folded.n_folds == 5
        assert folded.mean == pytest.approx(0.5)

    def test_friendship_folds_perfect_oracle(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        observed = graph.friendship_pairs()

        def oracle(src, tgt):
            return np.asarray(
                [1.0 if (u, v) in observed else 0.0 for u, v in zip(src, tgt)]
            )

        folded = friendship_auc_folds(graph, oracle, n_folds=5, rng=rng)
        assert folded.mean == 1.0

    def test_repeated_metric(self):
        mean, std = repeated_metric([0.5, 0.7])
        assert mean == pytest.approx(0.6)
        assert std > 0
        with pytest.raises(ValueError):
            repeated_metric([])


class TestSignificance:
    def test_paired_detects_improvement(self, rng):
        baseline = rng.normal(0.7, 0.01, size=10)
        ours = baseline + 0.05 + rng.normal(0.0, 0.005, size=10)
        result = paired_one_tailed_ttest(ours, baseline)
        assert result.significant(0.01)
        assert result.mean_difference == pytest.approx(0.05, abs=0.02)

    def test_paired_no_improvement(self, rng):
        baseline = rng.normal(0.7, 0.01, size=10)
        ours = baseline - 0.05 + rng.normal(0.0, 0.005, size=10)
        result = paired_one_tailed_ttest(ours, baseline)
        assert not result.significant(0.05)

    def test_independent(self, rng):
        a = rng.normal(0.8, 0.01, size=10)
        b = rng.normal(0.7, 0.01, size=10)
        assert independent_one_tailed_ttest(a, b).significant(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_one_tailed_ttest(np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            paired_one_tailed_ttest(np.ones(1), np.ones(1))


class TestQueries:
    def test_twitter_hashtag_queries(self, twitter_tiny):
        graph, _ = twitter_tiny
        queries = select_queries(graph, min_frequency=2, hashtags_only=True)
        assert queries
        assert all(q.term.startswith("#") for q in queries)
        assert all(q.frequency >= 2 for q in queries)

    def test_relevant_users_really_diffuse(self, twitter_tiny):
        graph, _ = twitter_tiny
        queries = select_queries(graph, min_frequency=2, hashtags_only=True)
        sources = {l.source_doc for l in graph.diffusion_links}
        query = queries[0]
        for user in query.relevant_users:
            user_docs = set(graph.documents_of(int(user)))
            diffusing = user_docs & sources
            assert any(
                query.word_id in graph.documents[d].words for d in diffusing
            )

    def test_top_frequent_removed(self, dblp_tiny):
        graph, _ = dblp_tiny
        all_queries = select_queries(graph, min_frequency=2)
        banned_terms = {w for w, _c in graph.vocabulary.top_words(10)}
        filtered = select_queries(graph, min_frequency=2, remove_top_frequent=10)
        assert all(q.term not in banned_terms for q in filtered)
        assert len(filtered) <= len(all_queries)

    def test_max_queries(self, dblp_tiny):
        graph, _ = dblp_tiny
        queries = select_queries(graph, min_frequency=1, max_queries=3)
        assert len(queries) == 3

    def test_frequency_bands_partition(self, dblp_tiny):
        graph, _ = dblp_tiny
        queries = select_queries(graph, min_frequency=1, max_queries=40)
        bands = queries_by_frequency_band(queries, n_bands=5)
        assert sum(len(b) for b in bands) == len(queries)

    def test_empty_graph_queries(self, twitter_tiny):
        from repro.graph import SocialGraph

        graph, _ = twitter_tiny
        no_links = SocialGraph(
            users=graph.users, documents=graph.documents,
            friendship_links=graph.friendship_links, diffusion_links=[],
            vocabulary=graph.vocabulary,
        )
        assert select_queries(no_links) == []


class TestNMI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_perfect(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 2, 2])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self, rng):
        a = rng.integers(0, 4, size=4000)
        b = rng.integers(0, 4, size=4000)
        assert normalized_mutual_information(a, b) < 0.01

    def test_symmetry(self, rng):
        a = rng.integers(0, 3, size=100)
        b = rng.integers(0, 3, size=100)
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            normalized_mutual_information(np.array([]), np.array([]))


class TestNMIMatrix:
    def test_matches_looped_scalar_nmi(self, rng):
        reference = rng.integers(0, 5, size=300)
        candidates = [rng.integers(0, k, size=300) for k in (2, 3, 5, 8)]
        candidates.append(reference.copy())
        batched = nmi_matrix(reference, candidates)
        looped = [
            normalized_mutual_information(reference, candidate)
            for candidate in candidates
        ]
        np.testing.assert_allclose(batched, looped, rtol=1e-12)

    def test_accepts_2d_array_and_single_vector(self, rng):
        reference = rng.integers(0, 3, size=50)
        stacked = np.stack([reference, (reference + 1) % 3])
        scores = nmi_matrix(reference, stacked)
        assert scores.shape == (2,)
        assert scores == pytest.approx([1.0, 1.0])  # relabelling is NMI-invariant
        single = nmi_matrix(reference, reference)
        assert single.shape == (1,)
        assert single[0] == pytest.approx(1.0)

    def test_noncontiguous_label_values(self):
        reference = np.array([7, 7, -2, -2, 100, 100])
        candidate = np.array([1, 1, 4, 4, 9, 9])
        assert nmi_matrix(reference, [candidate])[0] == pytest.approx(1.0)

    def test_degenerate_single_cluster(self):
        reference = np.zeros(10, dtype=np.int64)
        scores = nmi_matrix(reference, [np.zeros(10), np.arange(10)])
        assert scores[0] == pytest.approx(1.0)  # both degenerate
        assert scores[1] == pytest.approx(0.0)  # one-sided degenerate

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            nmi_matrix(np.array([]), [np.array([])])
        with pytest.raises(ValueError):
            nmi_matrix(np.ones(3, dtype=np.int64), [np.ones(2, dtype=np.int64)])
        with pytest.raises(ValueError):
            nmi_matrix(np.ones((2, 2), dtype=np.int64), [np.ones(4, dtype=np.int64)])

"""Direct tests for GraphSummary's query inverted index edge cases.

Previously only exercised indirectly through test_serving_store; the
sharded serving path leans harder on the index (per-shard summaries,
router-side term unions), so the corners get pinned here: graphs whose
diffused content yields no queries, terms absent from every shard,
duplicate terms inside one query, and the serialisation round-trip.
"""

import numpy as np
import pytest

from repro.graph.documents import DiffusionLink, Document, User
from repro.graph.social_graph import SocialGraph
from repro.graph.vocabulary import Vocabulary
from repro.serving import GraphSummary, ProfileStore


def _tiny_graph(with_diffusion: bool) -> SocialGraph:
    vocabulary = Vocabulary()
    for word in ("alpha", "beta", "gamma"):
        vocabulary.add(word)
    users = [User(user_id=0, doc_ids=[0]), User(user_id=1, doc_ids=[1])]
    documents = [
        Document(doc_id=0, user_id=0, words=np.array([0, 1, 0]), timestamp=0),
        Document(doc_id=1, user_id=1, words=np.array([1, 2]), timestamp=1),
    ]
    links = [DiffusionLink(0, 1, 1)] if with_diffusion else []
    return SocialGraph(
        users=users,
        documents=documents,
        friendship_links=[],
        diffusion_links=links,
        vocabulary=vocabulary,
        name="summary-edge",
    )


class TestEmptyQueryIndex:
    def test_no_diffusing_documents_means_no_queries(self):
        summary = GraphSummary.from_graph(_tiny_graph(with_diffusion=False))
        assert summary.queries == []

    def test_store_serves_empty_index_without_error(self, fitted_cpd):
        summary = GraphSummary.from_graph(_tiny_graph(with_diffusion=False))
        # dimensions disagree with fitted_cpd, but the query index is
        # independent of the model — the index must simply be empty
        assert summary.to_dict()["queries"] == []
        revived = GraphSummary.from_dict(summary.to_dict())
        assert revived.queries == []

    def test_from_dict_tolerates_missing_queries_key(self):
        payload = GraphSummary.from_graph(_tiny_graph(with_diffusion=True)).to_dict()
        payload.pop("queries")
        assert GraphSummary.from_dict(payload).queries == []

    def test_min_frequency_above_corpus_empties_the_index(self):
        summary = GraphSummary.from_graph(
            _tiny_graph(with_diffusion=True), query_min_frequency=99
        )
        assert summary.queries == []


class TestAbsentAndDuplicateTerms:
    def test_term_absent_from_the_index_raises(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        with pytest.raises(KeyError):
            store.relevant_users("zzzz-not-a-term")

    def test_term_absent_from_every_shard_raises(self, sharded_parity):
        router = sharded_parity.router()
        with pytest.raises(KeyError):
            router.relevant_users("zzzz-not-a-term")

    def test_vocabulary_word_never_diffused_is_not_indexed(self):
        graph = _tiny_graph(with_diffusion=True)
        summary = GraphSummary.from_graph(graph, query_min_frequency=1)
        indexed = {query.term for query in summary.queries}
        # only the source document (doc 0) diffuses; "gamma" lives in doc 1
        assert "gamma" not in indexed
        assert indexed == {"alpha", "beta"}

    def test_duplicate_query_terms_resolve_to_duplicate_word_ids(
        self, fitted_cpd, twitter_tiny
    ):
        graph, _ = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        term = graph.vocabulary.word_of(0)
        once = store.query_word_ids(term)
        twice = store.query_word_ids(f"{term} {term}")
        assert twice == once * 2
        # duplicated terms square the per-topic affinity factor, which must
        # not change the *argmax* topic but may change lower ranks
        single_best = store.query_topics(term, 1)[0][0]
        double_best = store.query_topics([term, term], 1)[0][0]
        assert single_best == double_best

    def test_duplicate_terms_in_relevant_users_query_are_idempotent(
        self, fitted_cpd, twitter_tiny
    ):
        graph, _ = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        queries = store.indexed_queries(1)
        if not queries:
            pytest.skip("scenario indexed no queries")
        term = queries[0].term
        np.testing.assert_array_equal(
            store.relevant_users(term), store.relevant_users(term)
        )


class TestSummaryRoundtrip:
    def test_queries_survive_to_dict_from_dict(self):
        graph = _tiny_graph(with_diffusion=True)
        summary = GraphSummary.from_graph(graph, query_min_frequency=1)
        revived = GraphSummary.from_dict(summary.to_dict())
        assert [q.term for q in revived.queries] == [q.term for q in summary.queries]
        for mine, theirs in zip(revived.queries, summary.queries):
            assert mine.word_id == theirs.word_id
            assert mine.frequency == theirs.frequency
            np.testing.assert_array_equal(mine.relevant_users, theirs.relevant_users)

    def test_stats_match_graph(self):
        graph = _tiny_graph(with_diffusion=True)
        summary = GraphSummary.from_graph(graph)
        assert summary.stats() == graph.stats()

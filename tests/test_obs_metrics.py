"""Tests for the metrics registry: counters, gauges, histograms, merging.

The registry is ISSUE 8's substrate; these tests pin its three contracts —
get-or-create identity, mergeable snapshots, and a disabled path that is
allocation-free on the hot-loop guard idiom.
"""

import gc
import sys

import pytest

from repro import obs
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    _NULL_METRIC,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_telemetry()
    yield
    obs.disable_telemetry()


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_snapshot_shape(self):
        counter = Counter("c", {"shard": "1"})
        counter.inc(4)
        assert counter.snapshot() == {
            "name": "c", "labels": {"shard": "1"}, "value": 4.0,
        }


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == pytest.approx(7.0)


class TestHistogram:
    def test_counts_sum_min_max(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 2.0, 3.0, 50.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.5)
        assert hist.min == pytest.approx(0.5)
        assert hist.max == pytest.approx(50.0)
        # buckets: <=1, <=10, +Inf
        assert hist.counts == [1, 2, 1]

    def test_default_bounds_are_sorted_latency_buckets(self):
        hist = Histogram("h")
        assert hist.bounds == DEFAULT_BUCKETS
        assert list(hist.bounds) == sorted(hist.bounds)
        assert hist.bounds[0] == pytest.approx(1e-6)
        assert hist.bounds[-1] == pytest.approx(60.0)

    def test_bounds_are_sorted_on_creation(self):
        hist = Histogram("h", bounds=(10.0, 1.0, 5.0))
        assert hist.bounds == (1.0, 5.0, 10.0)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", bounds=())

    def test_percentiles_on_uniform_values(self):
        hist = Histogram("h")
        values = [i / 1000 for i in range(1, 1001)]  # 1ms .. 1s uniform
        for value in values:
            hist.observe(value)
        # interpolation error stays within one bucket's width
        assert hist.percentile(0.5) == pytest.approx(0.5, rel=0.25)
        assert hist.percentile(0.95) == pytest.approx(0.95, rel=0.15)
        assert hist.percentile(0.99) == pytest.approx(0.99, rel=0.15)
        assert hist.percentile(1.0) == pytest.approx(1.0, rel=0.01)

    def test_percentile_empty_is_zero(self):
        assert Histogram("h").percentile(0.5) == 0.0

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("h").percentile(1.5)

    def test_mean(self):
        hist = Histogram("h")
        assert hist.mean == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == pytest.approx(3.0)

    def test_single_value_percentiles_collapse_to_it(self):
        hist = Histogram("h")
        hist.observe(0.0042)
        assert hist.percentile(0.5) == pytest.approx(0.0042, rel=0.5)
        assert hist.percentile(0.99) <= hist.max


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        a = registry.counter("c", {"shard": "0"})
        b = registry.counter("c", {"shard": "1"})
        assert a is not b
        # label order is irrelevant to identity
        x = registry.counter("c", {"a": "1", "b": "2"})
        y = registry.counter("c", {"b": "2", "a": "1"})
        assert x is y

    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.01)
        snap = registry.snapshot()
        assert [c["name"] for c in snap["counters"]] == ["a", "z"]
        assert snap["gauges"][0]["value"] == 1.5
        assert snap["histograms"][0]["count"] == 1

    def test_drain_resets(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        drained = registry.drain()
        assert drained["counters"][0]["value"] == 3.0
        assert registry.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }

    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry in (a, b):
            registry.counter("c", {"k": "v"}).inc(2)
            registry.gauge("g").set(7.0)
            registry.histogram("h").observe(0.003)
        a.merge(b.snapshot())
        assert a.counter("c", {"k": "v"}).value == 4.0
        assert a.gauge("g").value == 7.0
        hist = a.histogram("h")
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.006)

    def test_merge_rejects_bound_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        a.histogram("h")  # default bounds already exist under this key
        with pytest.raises(ValueError, match="bounds mismatch"):
            a.merge(b.snapshot())

    def test_merge_preserves_min_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(0.5)
        b.histogram("h").observe(0.001)
        a.merge(b.snapshot())
        hist = a.histogram("h")
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.5)


class TestModuleSwitch:
    def test_disabled_by_default(self):
        assert isinstance(obs.get_registry(), NullRegistry)
        assert not obs.get_registry().enabled

    def test_enable_is_idempotent(self):
        first = obs.enable()
        second = obs.enable()
        assert first is second
        assert obs.enabled()

    def test_disable_restores_the_shared_null(self):
        obs.enable()
        obs.disable()
        assert obs.get_registry() is obs.get_registry()
        assert not obs.enabled()

    def test_null_registry_hands_out_one_shared_noop(self):
        registry = NullRegistry()
        assert registry.counter("a") is _NULL_METRIC
        assert registry.histogram("b") is _NULL_METRIC
        assert registry.gauge("c") is _NULL_METRIC
        _NULL_METRIC.inc()
        _NULL_METRIC.observe(1.0)
        _NULL_METRIC.set(2.0)
        assert _NULL_METRIC.value == 0.0
        assert registry.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }
        registry.merge({"counters": [{"name": "x", "labels": {}, "value": 1}]})
        assert registry.drain() == registry.snapshot()


class TestDisabledHotPathCost:
    def test_guard_idiom_is_allocation_free(self):
        """The documented hot-loop guard must not allocate when disabled."""
        obs.disable()

        def loop(n: int) -> None:
            for _ in range(n):
                registry = obs.get_registry()
                if registry.enabled:  # pragma: no cover - disabled here
                    registry.counter("never").inc()

        loop(1000)  # warm-up: interns, code objects, local bindings
        gc.collect()
        before = sys.getallocatedblocks()
        loop(10_000)
        after = sys.getallocatedblocks()
        # allow a couple of blocks of interpreter noise, but nothing per-call
        assert after - before <= 4

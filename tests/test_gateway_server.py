"""The gateway over a live socket: routes, overload, drain, chaos.

Each test runs a real :class:`GatewayServer` on a background event-loop
thread (:class:`GatewayThread`) and talks plain stdlib HTTP to it — the
same path production traffic takes, keep-alive and all.
"""

import http.client
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.gateway import GatewayServer, GatewayThread
from repro.resilience import FaultPlan, inject
from repro.serving import ProfileStore
from repro.shard import ShardRouter


@pytest.fixture(scope="module")
def store(fitted_cpd, twitter_tiny):
    graph, _truth = twitter_tiny
    return ProfileStore.from_fit(fitted_cpd, graph)


@pytest.fixture(scope="module")
def term(store):
    return next(iter(store.query_index()))


def _router(fit, **options):
    return ShardRouter(
        [
            ProfileStore.from_fit(result, part.graph)
            for result, part in zip(fit.results, fit.plan.shards)
        ],
        [part.users for part in fit.plan.shards],
        fit.alignment,
        **options,
    )


class SlowBackend:
    """Wrap a store so every rank call holds its slot for ``delay``s.

    Dropping ``rank_many`` disables the batcher, so each request occupies
    one admission slot for the full delay — the overload substrate.
    """

    def __init__(self, store, delay: float):
        self._store = store
        self.delay = delay
        self.calls = 0

    def rank(self, query):
        self.calls += 1
        time.sleep(self.delay)
        return self._store.rank(query)

    def __getattr__(self, name):
        if name in ("rank_many", "gather"):
            raise AttributeError(name)
        return getattr(self._store, name)


class TestRoutes:
    def test_rank_matches_the_store(self, store, term):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, headers, body = handle.get(f"/rank?q={term}")
        assert status == 200
        assert headers["X-Repro-Exact"] == "1"
        assert headers["X-Repro-Coverage"] == "1.0000"
        expected = [[c, pytest.approx(s)] for c, s in store.rank(term)]
        assert body["ranking"] == expected
        assert body["coverage"]["exact"] is True

    def test_rank_k_truncates(self, store, term):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, _headers, body = handle.get(f"/rank?q={term}&k=2")
        assert status == 200
        assert len(body["ranking"]) == 2

    def test_top_k_matches_the_store(self, store, term):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, _headers, body = handle.get(f"/top-k?q={term}&k=3")
        assert status == 200
        assert body["top"] == [c for c, _s in store.rank(term)[:3]]

    def test_community_members_and_labels(self, store):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, _h, members = handle.get("/community-members?k=3&members=1")
            assert status == 200
            status, _h, labels = handle.get("/labels?n=2")
            assert status == 200
        assert len(members["communities"]) == store.n_communities
        expected = store.community_members(3)
        assert [c["size"] for c in members["communities"]] == [
            len(ids) for ids in expected
        ]
        assert [c["members"] for c in members["communities"]] == [
            [int(u) for u in ids] for ids in expected
        ]
        assert labels["labels"] == list(store.labels(2))

    def test_unknown_term_is_404(self, store):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, _headers, body = handle.get("/rank?q=zzz-not-a-word")
        assert status == 404
        assert "vocabulary" in body["error"]

    def test_unknown_route_is_404_and_post_is_405(self, store):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, _h, _b = handle.get("/nope")
            assert status == 404
            connection = http.client.HTTPConnection(
                gateway.host, gateway.port, timeout=10
            )
            try:
                connection.request("POST", "/rank?q=x")
                assert connection.getresponse().status == 405
            finally:
                connection.close()

    def test_missing_query_parameter_is_400(self, store):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, _headers, body = handle.get("/rank")
        assert status == 400
        assert "?q=" in body["error"]

    def test_health_ready_metrics(self, store):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            status, _h, health = handle.get("/health")
            assert status == 200
            assert health["status"] == "ok"
            assert health["backend"] == "store"
            status, _h, ready = handle.get("/ready")
            assert status == 200 and ready["ready"] is True
            status, _h, metrics = handle.get("/metrics")
            assert status == 200
            assert isinstance(metrics, str)  # text exposition, not JSON

    def test_keep_alive_serves_many_requests_per_connection(self, store, term):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            connection = http.client.HTTPConnection(
                gateway.host, gateway.port, timeout=10
            )
            try:
                for _ in range(3):
                    connection.request("GET", f"/rank?q={term}")
                    response = connection.getresponse()
                    assert response.status == 200
                    assert response.headers["Connection"] == "keep-alive"
                    response.read()
            finally:
                connection.close()

    def test_garbage_on_the_wire_is_400(self, store):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            with socket.create_connection(
                (gateway.host, gateway.port), timeout=10
            ) as sock:
                sock.sendall(b"NONSENSE\r\n\r\n")
                reply = sock.recv(4096)
        assert b"400 Bad Request" in reply


class TestOverload:
    def test_flood_sheds_excess_and_never_exceeds_the_limit(self, store, term):
        """The pinned acceptance test: in-flight limit N, flood 10N
        concurrent requests with max_queue=0 — the excess sheds with 429
        (not queued), and peak_in_flight never exceeds N."""
        limit = 4
        backend = SlowBackend(store, delay=0.15)
        gateway = GatewayServer(
            backend, port=0, max_in_flight=limit, max_queue=0, retry_after=2.0
        )
        with GatewayThread(gateway) as handle:
            with ThreadPoolExecutor(max_workers=10 * limit) as pool:
                futures = [
                    pool.submit(handle.get, f"/rank?q={term}")
                    for _ in range(10 * limit)
                ]
                responses = [f.result() for f in futures]
        statuses = [status for status, _h, _b in responses]
        assert set(statuses) <= {200, 429}
        shed = statuses.count(429)
        served = statuses.count(200)
        assert served >= limit  # the admitted work completed
        assert shed > 0  # the flood genuinely overloaded the gateway
        stats = gateway.stats()
        assert stats["peak_in_flight"] <= limit
        assert stats["shed"] == shed
        assert stats["peak_queue"] == 0  # max_queue=0: shed, never queued
        retry_after = next(
            h["Retry-After"] for s, h, _b in responses if s == 429
        )
        assert retry_after == "2"

    def test_bounded_queue_absorbs_a_small_burst_without_shedding(
        self, store, term
    ):
        backend = SlowBackend(store, delay=0.05)
        gateway = GatewayServer(backend, port=0, max_in_flight=2, max_queue=8)
        with GatewayThread(gateway) as handle:
            with ThreadPoolExecutor(max_workers=6) as pool:
                futures = [
                    pool.submit(handle.get, f"/rank?q={term}")
                    for _ in range(6)
                ]
                statuses = [f.result()[0] for f in futures]
        assert statuses == [200] * 6
        stats = gateway.stats()
        assert stats["shed"] == 0
        assert stats["peak_in_flight"] <= 2

    def test_health_answers_while_saturated(self, store, term):
        """/health bypasses admission: it must answer precisely when the
        gateway is refusing query traffic."""
        backend = SlowBackend(store, delay=0.3)
        gateway = GatewayServer(backend, port=0, max_in_flight=1, max_queue=0)
        with GatewayThread(gateway) as handle:
            with ThreadPoolExecutor(max_workers=1) as pool:
                slow = pool.submit(handle.get, f"/rank?q={term}")
                time.sleep(0.05)  # the slow request now holds the only slot
                status, _h, health = handle.get("/health")
                assert status == 200
                assert health["admission"]["in_flight"] == 1
                assert slow.result()[0] == 200


class TestDrain:
    def test_readiness_flips_while_in_flight_work_completes(self, store, term):
        """SIGTERM semantics: /ready answers 503 the moment the drain
        starts, the in-flight request still completes with 200, and the
        drain barrier only resolves after it finishes."""
        backend = SlowBackend(store, delay=0.4)
        gateway = GatewayServer(backend, port=0, max_in_flight=2)
        with GatewayThread(gateway) as handle:
            # a keep-alive connection opened before the listener closes:
            # drain stops *accepting*, existing connections still serve
            probe = http.client.HTTPConnection(
                gateway.host, gateway.port, timeout=10
            )
            try:
                probe.request("GET", "/ready")
                first = probe.getresponse()
                assert first.status == 200
                first.read()

                with ThreadPoolExecutor(max_workers=1) as pool:
                    slow = pool.submit(handle.get, f"/rank?q={term}")
                    time.sleep(0.1)  # the slow request holds its slot
                    drain_future = handle.submit(gateway.drain())
                    time.sleep(0.05)

                    probe.request("GET", "/ready")
                    second = probe.getresponse()
                    body = json.loads(second.read())
                    assert second.status == 503
                    assert body == {"ready": False, "draining": True}
                    # draining closes the connection after the response
                    assert second.headers["Connection"] == "close"

                    assert not drain_future.done()  # barrier: work in flight
                    assert slow.result()[0] == 200  # finished, not dropped
                    drain_future.result(timeout=10)
            finally:
                probe.close()
        assert gateway.stats()["draining"] is True

    def test_new_connections_are_refused_after_drain(self, store):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            handle.submit(gateway.drain()).result(timeout=10)
            with pytest.raises(OSError):
                socket.create_connection(
                    (gateway.host, gateway.port), timeout=1
                ).close()


class TestHotSwap:
    def test_hot_swap_under_live_load_yields_no_errors(
        self, store, term, fitted_cpd
    ):
        """Zero-downtime requirement: swapping the model while request
        threads hammer /rank must produce only 200/429 — never a 5xx or
        a torn read."""
        gateway = GatewayServer(store, port=0, max_in_flight=4, max_queue=32)
        bad: list[tuple[int, object]] = []
        stop = threading.Event()

        def hammer(handle):
            while not stop.is_set():
                status, _h, body = handle.get(f"/rank?q={term}")
                if status not in (200, 429):
                    bad.append((status, body))

        with GatewayThread(gateway) as handle:
            threads = [
                threading.Thread(target=hammer, args=(handle,))
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            try:
                for _ in range(5):
                    time.sleep(0.05)
                    store.hot_swap(fitted_cpd)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
        assert bad == []
        assert store.rank(term)  # the swapped store still answers


class TestFaultPoints:
    def test_accept_fault_resets_the_connection(self, store, term):
        gateway = GatewayServer(store, port=0)
        plan = FaultPlan(seed=0)
        plan.fail_at("gateway.accept", at=1)
        with GatewayThread(gateway) as handle:
            with inject(plan):
                with pytest.raises(
                    (ConnectionError, http.client.BadStatusLine, OSError)
                ):
                    handle.get(f"/rank?q={term}")
            # the very next connection works: the fault fired once
            status, _h, _b = handle.get(f"/rank?q={term}")
        assert status == 200
        assert gateway.stats()["accept_faults"] == 1
        assert plan.fired == [("gateway.accept", {})]

    def test_stalled_read_answers_408_under_the_read_timeout(self, store):
        gateway = GatewayServer(store, port=0, read_timeout=0.1)
        plan = FaultPlan(seed=0)
        plan.timeout_at("gateway.read", delay=30.0, at=1)
        with GatewayThread(gateway) as handle:
            with inject(plan):
                status, _h, body = handle.get("/health")
        assert status == 408
        assert "timed out" in body["error"]
        assert gateway.stats()["read_timeouts"] == 1

    def test_handler_fault_is_a_500_not_a_hang(self, store, term):
        gateway = GatewayServer(store, port=0)
        plan = FaultPlan(seed=0)
        plan.fail_at("gateway.handler", at=1, route="/rank")
        with GatewayThread(gateway) as handle:
            with inject(plan):
                status, _h, body = handle.get(f"/rank?q={term}")
            after, _h, _b = handle.get(f"/rank?q={term}")
        assert status == 500
        assert body["error"] == "injected handler fault"
        assert after == 200
        assert gateway.stats()["handler_faults"] == 1


class TestRouterBackend:
    def test_degraded_answers_carry_the_coverage_envelope(
        self, sharded_parity
    ):
        router = _router(
            sharded_parity, best_effort=True, retries=0, breaker_threshold=1
        )
        term = router.indexed_terms()[0]
        gateway = GatewayServer(router, port=0)
        plan = FaultPlan(seed=0)
        plan.fail_at("shard.query", at=1, times=10_000, shard=0)
        with GatewayThread(gateway) as handle:
            with inject(plan):
                status, headers, body = handle.get(f"/rank?q={term}")
            health_status, _h, health = handle.get("/health")
        assert status == 200  # best-effort: degraded, not failed
        assert headers["X-Repro-Exact"] == "0"
        assert float(headers["X-Repro-Coverage"]) <= 1.0
        assert body["coverage"]["exact"] is False
        assert body["coverage"]["failed"] == [0] or body["coverage"]["stale"] == [0]
        assert health_status == 200
        assert health["status"] == "degraded"
        assert health["shards"][0]["state"] == "open"

    def test_exact_router_answer_matches_rank(self, sharded_parity):
        router = _router(sharded_parity, best_effort=True)
        term = router.indexed_terms()[0]
        gateway = GatewayServer(router, port=0)
        with GatewayThread(gateway) as handle:
            status, headers, body = handle.get(f"/rank?q={term}")
        assert status == 200
        assert headers["X-Repro-Exact"] == "1"
        expected = [[c, pytest.approx(s)] for c, s in router.rank(term)]
        assert body["ranking"] == expected

    def test_router_hot_swap_mid_load_restores_exact_service(
        self, sharded_parity
    ):
        router = _router(
            sharded_parity, best_effort=True, retries=0, breaker_threshold=1
        )
        term = router.indexed_terms()[0]
        gateway = GatewayServer(router, port=0)
        plan = FaultPlan(seed=0)
        plan.fail_at("shard.query", at=1, times=10_000, shard=1)
        with GatewayThread(gateway) as handle:
            with inject(plan):
                degraded, headers, _b = handle.get(f"/rank?q={term}")
                assert degraded == 200
                assert headers["X-Repro-Exact"] == "0"
                router.hot_swap_shard(1, sharded_parity.results[1])
            healed, headers, _b = handle.get(f"/rank?q={term}")
        assert healed == 200
        assert headers["X-Repro-Exact"] == "1"


class TestBatching:
    def test_concurrent_rank_requests_coalesce(self, store, term):
        """Deadline-less store-backed rank traffic batches: a concurrent
        burst must complete in fewer backend batches than requests."""
        gateway = GatewayServer(
            store, port=0, max_in_flight=8, max_queue=64, batch_window=0.02
        )
        n = 16
        with GatewayThread(gateway) as handle:
            with ThreadPoolExecutor(max_workers=n) as pool:
                futures = [
                    pool.submit(handle.get, f"/rank?q={term}")
                    for _ in range(n)
                ]
                responses = [f.result() for f in futures]
        assert all(status == 200 for status, _h, _b in responses)
        rankings = {json.dumps(body["ranking"]) for _s, _h, body in responses}
        assert len(rankings) == 1  # identical query, identical answer
        stats = gateway.stats()
        assert stats["batches"] >= 1
        assert stats["batched_queries"] >= stats["batches"]


class TestObservabilityRoutes:
    """The ops surface ISSUE 10 added: /slo, uptime, access-log counters."""

    @pytest.fixture(autouse=True)
    def _clean_telemetry(self):
        from repro import obs

        obs.disable_telemetry()
        yield
        obs.disable_telemetry()

    def test_slo_route_reports_objectives_and_traffic(self, store, term):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            for _ in range(3):
                status, _h, _b = handle.get(f"/rank?q={term}")
                assert status == 200
            handle.get("/rank?q=zzz-not-a-word")  # 404: client error
            status, _h, slo = handle.get("/slo")
        assert status == 200
        assert slo["objectives"]["availability_target"] == 0.999
        availability = slo["routes"]["/rank"]["availability"]
        shortest = f"{float(slo['windows_seconds'][0]):g}"
        assert availability[shortest]["total"] == 4
        assert availability[shortest]["bad"] == 0  # a 404 spends no budget
        assert slo["worst_burn"]["burn_rate"] == 0.0

    def test_ops_probes_mint_no_slo_series(self, store):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            handle.get("/health")
            handle.get("/no-such-route")
            _s, _h, slo = handle.get("/slo")
        assert slo["routes"] == {}

    def test_metrics_exposes_uptime_and_accesslog_drops(self, store, term):
        from repro import obs

        obs.enable_telemetry()
        gateway = GatewayServer(store, port=0, access_log_capacity=2)
        with GatewayThread(gateway) as handle:
            for _ in range(4):  # overflow the 2-slot access-log ring
                handle.get(f"/rank?q={term}")
            status, _h, text = handle.get("/metrics")
        assert status == 200
        parsed = obs.parse_prometheus(text)
        samples = {s["name"]: s["value"] for s in parsed["samples"]}
        assert samples["repro_gateway_uptime_seconds"] > 0.0
        assert samples["repro_gateway_accesslog_dropped_total"] == 2
        assert "repro_slo_burn_rate" in parsed["types"]

    def test_health_reports_the_request_scoped_counters(self, store, term):
        from repro import obs

        obs.enable_telemetry()
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            handle.get(f"/rank?q={term}")
            _s, _h, health = handle.get("/health")
        assert health["access_log"]["logged"] == 1
        assert health["access_log"]["dropped"] == 0
        assert health["tail_sampling"]["observed"] == 1
        assert health["traces"] == {"kept": 1, "dropped": 0}  # warm-up keeps
        assert health["slo_worst_burn"]["burn_rate"] == 0.0

    def test_tail_sampling_idle_while_tracing_is_off(self, store, term):
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            handle.get(f"/rank?q={term}")
            _s, _h, health = handle.get("/health")
        assert health["tail_sampling"]["observed"] == 0
        assert health["traces"] == {"kept": 0, "dropped": 0}

    def test_access_log_capacity_zero_disables_logging(self, store, term):
        gateway = GatewayServer(store, port=0, access_log_capacity=0)
        with GatewayThread(gateway) as handle:
            status, _h, _b = handle.get(f"/rank?q={term}")
            assert status == 200
        assert gateway.access_log.export() == []
        assert gateway.access_log.stats()["logged"] == 0

    def test_access_log_file_sink_writes_jsonl(self, store, term, tmp_path):
        path = tmp_path / "access.jsonl"
        gateway = GatewayServer(store, port=0, access_log_path=str(path))
        with GatewayThread(gateway) as handle:
            handle.get(f"/rank?q={term}")
            handle.get("/rank?q=zzz-not-a-word")
        gateway.access_log.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["status"] for r in records] == [200, 404]
        assert records[0]["route"] == "/rank"
        assert records[0]["total"] > 0.0

    def test_shed_request_is_logged_as_shed(self, store, term):
        # saturate the single slot, then observe the overflow's record
        release = threading.Event()

        class Blocking:
            def rank(self, query):
                release.wait(timeout=10)
                return store.rank(query)

            def __getattr__(self, name):
                if name in ("rank_many", "gather"):
                    raise AttributeError(name)
                return getattr(store, name)

        gateway = GatewayServer(
            Blocking(), port=0, max_in_flight=1, max_queue=0
        )
        with GatewayThread(gateway) as handle:
            with ThreadPoolExecutor(max_workers=2) as pool:
                first = pool.submit(handle.get, f"/rank?q={term}")
                time.sleep(0.2)
                status, _h, _b = handle.get(f"/rank?q={term}")
                release.set()
                first.result()
        assert status == 429
        shed = [r for r in gateway.access_log.export() if r["shed"]]
        assert len(shed) == 1
        assert shed[0]["status"] == 429

"""Tests for the CPD EM driver and convenience API."""

import numpy as np
import pytest

from repro.core import CPDConfig, CPDModel, FitOptions, fit_cpd
from repro.evaluation import normalized_mutual_information


class TestFit:
    def test_result_shapes(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        result = fitted_cpd
        assert result.pi.shape == (graph.n_users, 4)
        assert result.theta.shape == (4, 8)
        assert result.phi.shape == (8, graph.n_words)
        assert result.eta.shape == (4, 4, 8)
        assert result.doc_community.shape == (graph.n_documents,)

    def test_distributions_normalised(self, fitted_cpd):
        result = fitted_cpd
        np.testing.assert_allclose(result.pi.sum(axis=1), 1.0, rtol=1e-9)
        np.testing.assert_allclose(result.theta.sum(axis=1), 1.0, rtol=1e-9)
        np.testing.assert_allclose(result.phi.sum(axis=1), 1.0, rtol=1e-9)
        assert result.eta.sum() == pytest.approx(1.0)

    def test_trace_recorded(self, fitted_cpd, tiny_config):
        assert len(fitted_cpd.trace) == tiny_config.n_iterations
        assert all(entry.seconds > 0 for entry in fitted_cpd.trace)

    def test_factor_weights_learned(self, fitted_cpd):
        params = fitted_cpd.diffusion
        # nonnegative projection on the two factor strengths
        assert params.comm_weight >= 0.0
        assert params.pop_weight >= 0.0
        assert params.nu.shape == (4,)

    def test_reproducible_with_seed(self, twitter_tiny):
        graph, _ = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=3, rho=0.5, alpha=0.5)
        a = CPDModel(config, rng=5).fit(graph)
        b = CPDModel(config, rng=5).fit(graph)
        np.testing.assert_array_equal(a.doc_topic, b.doc_topic)
        np.testing.assert_allclose(a.pi, b.pi)

    def test_different_seeds_differ(self, twitter_tiny):
        graph, _ = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=3, rho=0.5, alpha=0.5)
        a = CPDModel(config, rng=5).fit(graph)
        b = CPDModel(config, rng=6).fit(graph)
        assert not np.array_equal(a.doc_topic, b.doc_topic)


class TestFitOptions:
    def test_fixed_communities(self, twitter_tiny):
        graph, _ = twitter_tiny
        fixed = np.arange(graph.n_documents) % 4
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=3, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=0).fit(
            graph, FitOptions(fixed_communities=fixed)
        )
        np.testing.assert_array_equal(result.doc_community, fixed)

    def test_trace_can_be_disabled(self, twitter_tiny):
        graph, _ = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=2, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=0).fit(graph, FitOptions(record_trace=False))
        assert result.trace == []

    def test_custom_sweeper_called(self, twitter_tiny):
        graph, _ = twitter_tiny
        calls = []

        def sweeper(sampler):
            calls.append(1)
            sampler.sweep_documents()

        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=3, rho=0.5, alpha=0.5)
        CPDModel(config, rng=0).fit(graph, FitOptions(document_sweeper=sweeper))
        assert len(calls) == 3


class TestRecovery:
    def test_recovers_planted_communities(self, twitter_tiny):
        """The headline sanity check: CPD finds the planted structure."""
        graph, truth = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=20, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=1).fit(graph)
        nmi = normalized_mutual_information(
            result.hard_community_per_user(), truth.primary_community
        )
        assert nmi > 0.3  # far above the ~0.05 chance level

    def test_topics_correlate_with_planted(self, twitter_tiny):
        graph, truth = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=20, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=1).fit(graph)
        nmi = normalized_mutual_information(result.doc_topic, truth.doc_topic)
        assert nmi > 0.3


class TestFitCpd:
    def test_convenience_api(self, twitter_tiny):
        graph, _ = twitter_tiny
        result = fit_cpd(
            graph, n_communities=4, n_topics=8, n_iterations=2, rng=0, rho=0.5, alpha=0.5
        )
        assert result.n_communities == 4
        assert result.n_topics == 8

    def test_ablation_flags_reach_model(self, twitter_tiny):
        graph, _ = twitter_tiny
        result = fit_cpd(
            graph, n_communities=4, n_topics=8, n_iterations=2, rng=0,
            rho=0.5, alpha=0.5, use_topic_factor=False,
        )
        assert result.config.use_topic_factor is False


class TestEdgeCases:
    def test_no_diffusion_links(self, twitter_tiny):
        """CPD degrades gracefully to content + friendship modelling."""
        from repro.graph import SocialGraph

        graph, _ = twitter_tiny
        stripped = SocialGraph(
            users=graph.users,
            documents=graph.documents,
            friendship_links=graph.friendship_links,
            diffusion_links=[],
            vocabulary=graph.vocabulary,
        )
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=2, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=0).fit(stripped)
        assert result.pi.shape[0] == graph.n_users

    def test_no_friendship_links(self, twitter_tiny):
        from repro.graph import SocialGraph

        graph, _ = twitter_tiny
        stripped = SocialGraph(
            users=graph.users,
            documents=graph.documents,
            friendship_links=[],
            diffusion_links=graph.diffusion_links,
            vocabulary=graph.vocabulary,
        )
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=2, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=0).fit(stripped)
        assert result.eta.sum() == pytest.approx(1.0)

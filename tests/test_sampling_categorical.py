"""Tests for repro.sampling.categorical (incl. hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sampling import (
    draw_log_categorical,
    log_normalize,
    normalize,
    sample_categorical,
    sample_log_categorical,
    sample_many_categorical,
    sample_many_log_categorical,
)


class TestSampleCategorical:
    def test_degenerate_distribution(self, rng):
        weights = np.array([0.0, 1.0, 0.0])
        assert all(sample_categorical(weights, rng) == 1 for _ in range(20))

    def test_respects_proportions(self, rng):
        weights = np.array([1.0, 3.0])
        draws = np.array([sample_categorical(weights, rng) for _ in range(4000)])
        assert 0.70 < draws.mean() < 0.80  # expect 0.75

    def test_unnormalised_ok(self, rng):
        weights = np.array([100.0, 300.0])
        draws = np.array([sample_categorical(weights, rng) for _ in range(4000)])
        assert 0.70 < draws.mean() < 0.80

    def test_rejects_all_zero(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(np.zeros(3), rng)

    def test_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(np.array([0.5, -0.1]), rng)

    def test_rejects_nan(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(np.array([0.5, np.nan]), rng)

    def test_rejects_matrix(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(np.ones((2, 2)), rng)

    @given(
        weights=arrays(
            np.float64,
            st.integers(1, 20),
            elements=st.floats(0.0, 100.0),
        ).filter(lambda w: w.sum() > 0)
    )
    @settings(max_examples=50, deadline=None)
    def test_always_in_range(self, weights):
        index = sample_categorical(weights, np.random.default_rng(0))
        assert 0 <= index < len(weights)
        assert weights[index] > 0  # zero-weight outcomes are never drawn


class TestSampleLogCategorical:
    def test_matches_linear_space(self, rng):
        weights = np.array([0.2, 0.8])
        draws = np.array(
            [sample_log_categorical(np.log(weights), rng) for _ in range(4000)]
        )
        assert 0.75 < draws.mean() < 0.85

    def test_handles_large_negative_logs(self, rng):
        log_weights = np.array([-1000.0, -1001.0, -5000.0])
        draws = [sample_log_categorical(log_weights, rng) for _ in range(50)]
        assert all(d in (0, 1) for d in draws)

    def test_handles_neg_inf_entries(self, rng):
        log_weights = np.array([-np.inf, 0.0])
        assert all(sample_log_categorical(log_weights, rng) == 1 for _ in range(20))

    def test_all_neg_inf_raises(self, rng):
        with pytest.raises(ValueError):
            sample_log_categorical(np.array([-np.inf, -np.inf]), rng)


class TestSampleManyCategorical:
    def test_shape(self, rng):
        rows = np.ones((5, 3))
        out = sample_many_categorical(rows, rng)
        assert out.shape == (5,)
        assert np.all((out >= 0) & (out < 3))

    def test_deterministic_rows(self, rng):
        rows = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = sample_many_categorical(rows, rng)
        np.testing.assert_array_equal(out, [0, 1])

    def test_zero_row_raises(self, rng):
        with pytest.raises(ValueError):
            sample_many_categorical(np.array([[1.0, 1.0], [0.0, 0.0]]), rng)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            sample_many_categorical(np.ones(3), rng)


class TestDrawLogCategorical:
    """The trusted fast draw matches sample_log_categorical draw-for-draw."""

    @pytest.mark.parametrize("size", [2, 6, 12, 33, 100])
    def test_matches_validating_draw_with_same_seed(self, size):
        log_weights = np.random.default_rng(size).normal(size=size) * 3.0
        for seed in range(40):
            checked = sample_log_categorical(
                log_weights.copy(), np.random.default_rng(seed)
            )
            fast = draw_log_categorical(log_weights.copy(), np.random.default_rng(seed))
            assert checked == fast

    def test_respects_proportions(self):
        rng = np.random.default_rng(0)
        log_weights = np.log(np.array([0.2, 0.8]))
        draws = [draw_log_categorical(log_weights.copy(), rng) for _ in range(4000)]
        assert 0.75 < np.mean(draws) < 0.85

    def test_degenerate_distribution(self):
        rng = np.random.default_rng(0)
        log_weights = np.array([-1e9, 0.0, -1e9])
        assert all(
            draw_log_categorical(log_weights.copy(), rng) == 1 for _ in range(20)
        )

    def test_large_array_path_shift_invariant(self):
        base = np.random.default_rng(1).normal(size=64)
        a = draw_log_categorical(base.copy() + 700.0, np.random.default_rng(3))
        b = draw_log_categorical(base.copy() - 700.0, np.random.default_rng(3))
        assert a == b


class TestSampleManyLogCategorical:
    def test_shape_and_range(self, rng):
        rows = np.log(np.ones((5, 3)))
        out = sample_many_log_categorical(rows, rng)
        assert out.shape == (5,)
        assert np.all((out >= 0) & (out < 3))

    def test_matches_rowwise_single_draws_in_distribution(self):
        rows = np.log(np.array([[0.2, 0.8], [0.9, 0.1]]))
        draws = np.stack(
            [
                sample_many_log_categorical(rows, np.random.default_rng(seed))
                for seed in range(3000)
            ]
        )
        assert 0.75 < draws[:, 0].mean() < 0.85
        assert 0.05 < draws[:, 1].mean() < 0.15

    def test_neg_inf_entries_never_drawn(self, rng):
        rows = np.array([[-np.inf, 0.0], [0.0, -np.inf]])
        for _ in range(20):
            np.testing.assert_array_equal(
                sample_many_log_categorical(rows, rng), [1, 0]
            )

    def test_all_neg_inf_row_raises(self, rng):
        with pytest.raises(ValueError):
            sample_many_log_categorical(
                np.array([[0.0, 0.0], [-np.inf, -np.inf]]), rng
            )

    def test_nan_treated_as_zero_weight(self, rng):
        # matches sample_log_categorical: non-finite entries get no mass
        rows = np.array([[0.0, np.nan]])
        for _ in range(20):
            assert sample_many_log_categorical(rows, rng)[0] == 0

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            sample_many_log_categorical(np.zeros(3), rng)

    def test_shift_invariance(self, rng):
        rows = np.random.default_rng(2).normal(size=(4, 6))
        a = sample_many_log_categorical(rows + 900.0, np.random.default_rng(5))
        b = sample_many_log_categorical(rows - 900.0, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


class TestNormalize:
    def test_sums_to_one(self):
        out = normalize(np.array([1.0, 3.0]))
        np.testing.assert_allclose(out.sum(), 1.0)
        np.testing.assert_allclose(out, [0.25, 0.75])

    def test_zero_rows_become_uniform(self):
        out = normalize(np.array([[0.0, 0.0], [2.0, 2.0]]))
        np.testing.assert_allclose(out[0], [0.5, 0.5])
        np.testing.assert_allclose(out[1], [0.5, 0.5])

    def test_axis_zero(self):
        out = normalize(np.array([[1.0, 0.0], [3.0, 0.0]]), axis=0)
        np.testing.assert_allclose(out[:, 0], [0.25, 0.75])
        np.testing.assert_allclose(out[:, 1], [0.5, 0.5])

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.integers(1, 5)),
            elements=st.floats(0.0, 1e6),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_rows_always_sum_to_one(self, matrix):
        out = normalize(matrix)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)


class TestLogNormalize:
    def test_matches_softmax(self):
        logs = np.array([0.0, np.log(3.0)])
        np.testing.assert_allclose(log_normalize(logs), [0.25, 0.75])

    def test_shift_invariance(self):
        logs = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(log_normalize(logs), log_normalize(logs + 500.0))

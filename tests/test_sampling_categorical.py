"""Tests for repro.sampling.categorical (incl. hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sampling import (
    log_normalize,
    normalize,
    sample_categorical,
    sample_log_categorical,
    sample_many_categorical,
)


class TestSampleCategorical:
    def test_degenerate_distribution(self, rng):
        weights = np.array([0.0, 1.0, 0.0])
        assert all(sample_categorical(weights, rng) == 1 for _ in range(20))

    def test_respects_proportions(self, rng):
        weights = np.array([1.0, 3.0])
        draws = np.array([sample_categorical(weights, rng) for _ in range(4000)])
        assert 0.70 < draws.mean() < 0.80  # expect 0.75

    def test_unnormalised_ok(self, rng):
        weights = np.array([100.0, 300.0])
        draws = np.array([sample_categorical(weights, rng) for _ in range(4000)])
        assert 0.70 < draws.mean() < 0.80

    def test_rejects_all_zero(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(np.zeros(3), rng)

    def test_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(np.array([0.5, -0.1]), rng)

    def test_rejects_nan(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(np.array([0.5, np.nan]), rng)

    def test_rejects_matrix(self, rng):
        with pytest.raises(ValueError):
            sample_categorical(np.ones((2, 2)), rng)

    @given(
        weights=arrays(
            np.float64,
            st.integers(1, 20),
            elements=st.floats(0.0, 100.0),
        ).filter(lambda w: w.sum() > 0)
    )
    @settings(max_examples=50, deadline=None)
    def test_always_in_range(self, weights):
        index = sample_categorical(weights, np.random.default_rng(0))
        assert 0 <= index < len(weights)
        assert weights[index] > 0  # zero-weight outcomes are never drawn


class TestSampleLogCategorical:
    def test_matches_linear_space(self, rng):
        weights = np.array([0.2, 0.8])
        draws = np.array(
            [sample_log_categorical(np.log(weights), rng) for _ in range(4000)]
        )
        assert 0.75 < draws.mean() < 0.85

    def test_handles_large_negative_logs(self, rng):
        log_weights = np.array([-1000.0, -1001.0, -5000.0])
        draws = [sample_log_categorical(log_weights, rng) for _ in range(50)]
        assert all(d in (0, 1) for d in draws)

    def test_handles_neg_inf_entries(self, rng):
        log_weights = np.array([-np.inf, 0.0])
        assert all(sample_log_categorical(log_weights, rng) == 1 for _ in range(20))

    def test_all_neg_inf_raises(self, rng):
        with pytest.raises(ValueError):
            sample_log_categorical(np.array([-np.inf, -np.inf]), rng)


class TestSampleManyCategorical:
    def test_shape(self, rng):
        rows = np.ones((5, 3))
        out = sample_many_categorical(rows, rng)
        assert out.shape == (5,)
        assert np.all((out >= 0) & (out < 3))

    def test_deterministic_rows(self, rng):
        rows = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = sample_many_categorical(rows, rng)
        np.testing.assert_array_equal(out, [0, 1])

    def test_zero_row_raises(self, rng):
        with pytest.raises(ValueError):
            sample_many_categorical(np.array([[1.0, 1.0], [0.0, 0.0]]), rng)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            sample_many_categorical(np.ones(3), rng)


class TestNormalize:
    def test_sums_to_one(self):
        out = normalize(np.array([1.0, 3.0]))
        np.testing.assert_allclose(out.sum(), 1.0)
        np.testing.assert_allclose(out, [0.25, 0.75])

    def test_zero_rows_become_uniform(self):
        out = normalize(np.array([[0.0, 0.0], [2.0, 2.0]]))
        np.testing.assert_allclose(out[0], [0.5, 0.5])
        np.testing.assert_allclose(out[1], [0.5, 0.5])

    def test_axis_zero(self):
        out = normalize(np.array([[1.0, 0.0], [3.0, 0.0]]), axis=0)
        np.testing.assert_allclose(out[:, 0], [0.25, 0.75])
        np.testing.assert_allclose(out[:, 1], [0.5, 0.5])

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.integers(1, 5)),
            elements=st.floats(0.0, 1e6),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_rows_always_sum_to_one(self, matrix):
        out = normalize(matrix)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)


class TestLogNormalize:
    def test_matches_softmax(self):
        logs = np.array([0.0, np.log(3.0)])
        np.testing.assert_allclose(log_normalize(logs), [0.25, 0.75])

    def test_shift_invariance(self):
        logs = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(log_normalize(logs), log_normalize(logs + 500.0))

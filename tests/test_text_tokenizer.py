"""Tests for repro.text.tokenizer."""

import pytest

from repro.text import is_hashtag, tokenize, tokenize_all


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Deep Learning") == ["deep", "learning"]

    def test_keeps_hashtags(self):
        assert tokenize("launch #iPhone today") == ["launch", "#iphone", "today"]

    def test_strips_urls(self):
        assert "http" not in " ".join(tokenize("see http://example.com/x?y=1 now"))
        assert tokenize("see http://example.com now") == ["see", "now"]

    def test_strips_www_urls(self):
        assert tokenize("go www.example.com go") == ["go", "go"]

    def test_mentions_keep_name_text(self):
        assert tokenize("thanks @alice") == ["thanks", "alice"]

    def test_apostrophes_kept_in_words(self):
        assert tokenize("bob's code") == ["bob's", "code"]

    def test_numbers_dropped(self):
        assert tokenize("route 66 plan") == ["route", "plan"]

    def test_single_letters_dropped(self):
        assert tokenize("a b query") == ["query"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_punctuation_only(self):
        assert tokenize("!!! ... ???") == []

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            tokenize(42)

    def test_hashtag_with_dash(self):
        assert tokenize("#state-of-art stuff") == ["#state-of-art", "stuff"]


class TestTokenizeAll:
    def test_lazy_stream(self):
        out = list(tokenize_all(["One two", "Three"]))
        assert out == [["one", "two"], ["three"]]


class TestIsHashtag:
    def test_positive(self):
        assert is_hashtag("#nlp")

    def test_negative(self):
        assert not is_hashtag("nlp")

    def test_bare_hash(self):
        assert not is_hashtag("#")

"""Tests for SocialGraphBuilder (incremental construction + filters)."""

import pytest

from repro.graph import SocialGraphBuilder
from repro.text import Preprocessor


class TestBasicConstruction:
    def test_token_list_documents(self):
        builder = SocialGraphBuilder()
        u0 = builder.add_user()
        u1 = builder.add_user()
        builder.add_document(u0, ["graph", "mining"], timestamp=3)
        builder.add_document(u1, ["graph", "query"])
        builder.add_friendship(u0, u1)
        graph = builder.build()
        assert graph.n_users == 2
        assert graph.n_documents == 2
        assert graph.documents[0].timestamp == 3
        assert graph.vocabulary.frequency("graph") == 2

    def test_user_keys(self):
        builder = SocialGraphBuilder()
        builder.add_user(key="alice")
        assert builder.user_id("alice") == 0
        with pytest.raises(ValueError):
            builder.add_user(key="alice")

    def test_doc_keys(self):
        builder = SocialGraphBuilder()
        user = builder.add_user()
        builder.add_document(user, ["a", "b"], key="t1")
        assert builder.doc_id("t1") == 0

    def test_unknown_user_rejected(self):
        builder = SocialGraphBuilder()
        with pytest.raises(ValueError):
            builder.add_document(5, ["a", "b"])

    def test_self_links_rejected(self):
        builder = SocialGraphBuilder()
        user = builder.add_user()
        builder.add_document(user, ["a", "b"])
        with pytest.raises(ValueError):
            builder.add_friendship(user, user)
        with pytest.raises(ValueError):
            builder.add_diffusion(0, 0)


class TestFilters:
    def test_short_documents_dropped(self):
        builder = SocialGraphBuilder()
        user = builder.add_user()
        builder.add_document(user, ["solo"])
        builder.add_document(user, ["two", "words"])
        graph = builder.build(min_words_per_document=2)
        assert graph.n_documents == 1

    def test_empty_users_dropped_with_their_links(self):
        builder = SocialGraphBuilder()
        u0 = builder.add_user()
        u1 = builder.add_user()
        builder.add_document(u0, ["keep", "me"])
        builder.add_document(u1, ["x"])  # will be dropped
        builder.add_friendship(u0, u1)
        graph = builder.build(min_words_per_document=2)
        assert graph.n_users == 1
        assert graph.n_friendship_links == 0

    def test_dangling_diffusion_dropped(self):
        builder = SocialGraphBuilder()
        u0 = builder.add_user()
        u1 = builder.add_user()
        d0 = builder.add_document(u0, ["a", "b"])
        d1 = builder.add_document(u1, ["c"])
        builder.add_diffusion(d0, d1)
        graph = builder.build(min_words_per_document=2)
        assert graph.n_diffusion_links == 0

    def test_ids_re_densified(self):
        builder = SocialGraphBuilder()
        u0 = builder.add_user()
        u1 = builder.add_user()
        builder.add_document(u0, ["x"])  # dropped
        builder.add_document(u1, ["a", "b"])
        graph = builder.build(min_words_per_document=2)
        assert graph.documents[0].doc_id == 0
        assert graph.documents[0].user_id == 0


class TestWithPreprocessor:
    def test_raw_text_is_preprocessed(self):
        builder = SocialGraphBuilder(preprocessor=Preprocessor())
        user = builder.add_user()
        builder.add_document(user, "The networks are learning! #ai", timestamp=1)
        graph = builder.build()
        words = set(graph.vocabulary)
        assert "#ai" in words
        assert "network" in words
        assert "the" not in words

    def test_diffusion_default_timestamp_from_source(self):
        builder = SocialGraphBuilder()
        user0 = builder.add_user()
        user1 = builder.add_user()
        d0 = builder.add_document(user0, ["a", "b"], timestamp=5)
        d1 = builder.add_document(user1, ["c", "d"], timestamp=2)
        builder.add_diffusion(d0, d1)
        graph = builder.build()
        assert graph.diffusion_links[0].timestamp == 5

    def test_duplicate_links_collapse(self):
        builder = SocialGraphBuilder()
        u0 = builder.add_user()
        u1 = builder.add_user()
        builder.add_document(u0, ["a", "b"])
        builder.add_document(u1, ["c", "d"])
        builder.add_friendship(u0, u1)
        builder.add_friendship(u0, u1)
        graph = builder.build()
        assert graph.n_friendship_links == 1

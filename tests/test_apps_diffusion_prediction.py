"""Tests for the community-aware diffusion predictor (Eq. 18)."""

import numpy as np
import pytest

from repro.apps import DiffusionPredictor
from repro.evaluation import diffusion_auc_folds


@pytest.fixture(scope="module")
def predictor(fitted_cpd, twitter_tiny):
    graph, _ = twitter_tiny
    return DiffusionPredictor(fitted_cpd, graph)


class TestTopicPosteriors:
    def test_document_posterior_normalised(self, predictor):
        posterior = predictor.document_topic_posterior(0)
        assert posterior.shape == (8,)
        assert posterior.sum() == pytest.approx(1.0)

    def test_pair_posterior_normalised(self, predictor):
        posterior = predictor.pair_topic_posterior(0, 5)
        assert posterior.sum() == pytest.approx(1.0)

    def test_pair_posterior_sharper_than_single(self, predictor, twitter_tiny):
        """Two word sets give at least as much evidence as one."""
        graph, _ = twitter_tiny
        link = graph.diffusion_links[0]
        single = predictor.document_topic_posterior(link.target_doc)
        pair = predictor.pair_topic_posterior(link.source_doc, link.target_doc)
        assert pair.max() >= single.max() - 0.2


class TestPredict:
    def test_probability_range(self, predictor, twitter_tiny):
        graph, _ = twitter_tiny
        p = predictor.predict(source_user=0, target_doc=1, timestamp=2)
        assert 0.0 <= p <= 1.0

    def test_score_pairs_batch_matches_single(self, predictor, twitter_tiny):
        graph, _ = twitter_tiny
        link = graph.diffusion_links[0]
        batch = predictor.score_pairs(
            np.array([link.source_doc]), np.array([link.target_doc]),
            np.array([link.timestamp]),
        )
        single = predictor.score_pair(link.source_doc, link.target_doc, link.timestamp)
        assert batch[0] == pytest.approx(single)

    def test_timestamp_clamped(self, predictor):
        assert 0.0 <= predictor.predict(0, 1, timestamp=10**6) <= 1.0
        assert 0.0 <= predictor.predict(0, 1, timestamp=-5) <= 1.0


class TestDiscrimination:
    def test_beats_chance_on_observed_links(self, predictor, twitter_tiny):
        graph, _ = twitter_tiny
        folded = diffusion_auc_folds(graph, predictor.score_pairs, rng=3)
        assert folded.mean > 0.6

    def test_rank_potential_diffusers(self, predictor, twitter_tiny):
        graph, _ = twitter_tiny
        ranked = predictor.rank_potential_diffusers(target_doc=0, timestamp=3, k=5)
        assert len(ranked) == 5
        scores = [score for _u, score in ranked]
        assert scores == sorted(scores, reverse=True)
        publisher = graph.documents[0].user_id
        assert all(user != publisher for user, _s in ranked)

    def test_candidate_restriction(self, predictor):
        ranked = predictor.rank_potential_diffusers(
            target_doc=0, timestamp=3, candidate_users=np.array([1, 2, 3]), k=10
        )
        assert {user for user, _s in ranked} <= {1, 2, 3}

"""Tests for the sentiment-profile extension (paper future work)."""

import numpy as np
import pytest

from repro.core import CPDConfig, CPDModel
from repro.extensions import (
    BANDS,
    band_of,
    score_documents,
    score_tokens,
    sentiment_profile,
)
from repro.graph import SocialGraphBuilder


class TestScoring:
    def test_positive_tokens(self):
        assert score_tokens(["great", "amazing", "results"]) > 0

    def test_negative_tokens(self):
        assert score_tokens(["terrible", "broken", "bug"]) < 0

    def test_neutral_tokens(self):
        assert score_tokens(["database", "query", "index"]) == 0.0

    def test_mixed_tokens(self):
        score = score_tokens(["great", "terrible"])
        assert score == pytest.approx(0.0)

    def test_empty(self):
        assert score_tokens([]) == 0.0

    def test_bounded(self):
        assert -1.0 <= score_tokens(["awful"] * 10 + ["great"]) <= 1.0


class TestBands:
    def test_band_mapping(self):
        assert BANDS[band_of(-0.9)] == "negative"
        assert BANDS[band_of(0.0)] == "neutral"
        assert BANDS[band_of(0.9)] == "positive"

    def test_width_respected(self):
        assert band_of(0.1, neutral_width=0.15) == 1
        assert band_of(0.1, neutral_width=0.05) == 2


@pytest.fixture(scope="module")
def sentiment_graph():
    """Two users posting clearly positive vs clearly negative content."""
    builder = SocialGraphBuilder(name="sentiment-demo")
    happy = builder.add_user(name="happy")
    grumpy = builder.add_user(name="grumpy")
    third = builder.add_user(name="third")
    for i in range(4):
        builder.add_document(happy, ["great", "amazing", "results", f"tok{i}"], timestamp=i)
        builder.add_document(grumpy, ["terrible", "broken", "crash", f"tok{i}"], timestamp=i)
        builder.add_document(third, ["database", "index", "query", f"tok{i}"], timestamp=i)
    builder.add_friendship(happy, third)
    builder.add_friendship(grumpy, third)
    builder.add_diffusion(0, 3)  # happy doc diffuses grumpy doc
    builder.add_diffusion(4, 1)  # grumpy doc diffuses happy doc
    return builder.build()


class TestSentimentProfile:
    def test_profile_shapes_and_normalisation(self, sentiment_graph):
        config = CPDConfig(n_communities=3, n_topics=3, n_iterations=5, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=0).fit(sentiment_graph)
        profile = sentiment_profile(result, sentiment_graph)
        assert profile.band_distribution.shape == (3, 3)
        np.testing.assert_allclose(profile.band_distribution.sum(axis=1), 1.0)
        assert profile.pair_polarity.shape == (3, 3)

    def test_document_scores_sign(self, sentiment_graph):
        scores = score_documents(sentiment_graph)
        # docs 0..3 are happy's (positive), 4..7 grumpy's (negative)
        assert scores[0] > 0
        assert scores[4] < 0

    def test_extreme_communities_identified(self, sentiment_graph):
        config = CPDConfig(n_communities=3, n_topics=3, n_iterations=15, rho=0.1, alpha=0.5)
        result = CPDModel(config, rng=1).fit(sentiment_graph)
        profile = sentiment_profile(result, sentiment_graph)
        most_positive = profile.most_positive_community()
        most_negative = profile.most_negative_community()
        assert profile.mean_polarity[most_positive] >= profile.mean_polarity[most_negative]

    def test_describe_readable(self, sentiment_graph):
        config = CPDConfig(n_communities=2, n_topics=2, n_iterations=3, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=0).fit(sentiment_graph)
        text = sentiment_profile(result, sentiment_graph).describe()
        assert "mean polarity" in text
        assert "c00" in text

    def test_pair_counts_match_links(self, sentiment_graph):
        config = CPDConfig(n_communities=2, n_topics=2, n_iterations=3, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=0).fit(sentiment_graph)
        profile = sentiment_profile(result, sentiment_graph)
        assert profile.pair_counts.sum() == sentiment_graph.n_diffusion_links

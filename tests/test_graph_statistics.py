"""Tests for descriptive graph statistics."""

import numpy as np
import pytest

from repro.graph import compute_statistics
from repro.graph.statistics import DegreeSummary, _gini


class TestGini:
    def test_equal_values(self):
        assert _gini(np.ones(10)) == pytest.approx(0.0, abs=1e-9)

    def test_extreme_skew(self):
        values = np.zeros(100)
        values[0] = 100.0
        assert _gini(values) > 0.9

    def test_bounded(self, rng):
        values = rng.exponential(size=200)
        assert 0.0 <= _gini(values) <= 1.0

    def test_zero_total(self):
        assert _gini(np.zeros(5)) == 0.0


class TestDegreeSummary:
    def test_from_degrees(self):
        summary = DegreeSummary.from_degrees(np.array([1, 2, 3, 10]))
        assert summary.mean == pytest.approx(4.0)
        assert summary.median == pytest.approx(2.5)
        assert summary.maximum == 10

    def test_empty(self):
        summary = DegreeSummary.from_degrees(np.array([]))
        assert summary.mean == 0.0
        assert summary.maximum == 0


class TestComputeStatistics:
    def test_twitter_profile(self, twitter_tiny):
        graph, _ = twitter_tiny
        stats = compute_statistics(graph)
        assert stats.followers.mean > 0
        assert 0.0 <= stats.reciprocity <= 1.0
        assert 0.0 <= stats.clustering_coefficient <= 1.0
        assert stats.n_cascades > 0
        assert stats.largest_cascade >= 2

    def test_dblp_reciprocity_full(self, dblp_tiny):
        """Symmetric co-authorship graphs are fully reciprocated."""
        graph, _ = dblp_tiny
        stats = compute_statistics(graph)
        assert stats.reciprocity == pytest.approx(1.0)

    def test_twitter_reciprocity_partial(self, twitter_tiny):
        graph, _ = twitter_tiny
        stats = compute_statistics(graph)
        assert stats.reciprocity < 1.0

    def test_activity_skew_measured(self, twitter_tiny):
        """Zipf activity in the Twitter flavour shows up as high Gini."""
        graph, _ = twitter_tiny
        stats = compute_statistics(graph)
        assert stats.documents_per_user.gini > 0.15

    def test_describe_readable(self, twitter_tiny):
        graph, _ = twitter_tiny
        text = compute_statistics(graph).describe()
        assert "followers" in text
        assert "cascades" in text

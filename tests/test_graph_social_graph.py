"""Tests for the SocialGraph container, records and adjacency indexes."""

import numpy as np
import pytest

from repro.graph import (
    DiffusionLink,
    Document,
    FriendshipLink,
    SocialGraph,
    User,
    Vocabulary,
)


def make_graph():
    """Two users, three docs, mixed links."""
    vocab = Vocabulary()
    vocab.encode(["a", "b", "c"])
    users = [User(0, "u0", [0, 1]), User(1, "u1", [2])]
    documents = [
        Document(0, 0, np.array([0, 1]), timestamp=0),
        Document(1, 0, np.array([1, 2]), timestamp=1),
        Document(2, 1, np.array([2, 0]), timestamp=2),
    ]
    friendships = [FriendshipLink(0, 1)]
    diffusions = [DiffusionLink(2, 0, timestamp=2), DiffusionLink(1, 2, timestamp=1)]
    return SocialGraph(users, documents, friendships, diffusions, vocab, name="toy")


class TestRecords:
    def test_self_friendship_rejected(self):
        with pytest.raises(ValueError):
            FriendshipLink(1, 1)

    def test_self_diffusion_rejected(self):
        with pytest.raises(ValueError):
            DiffusionLink(3, 3)

    def test_document_word_array_coerced(self):
        doc = Document(0, 0, [1, 2, 3])
        assert doc.words.dtype == np.int64
        assert len(doc) == 3

    def test_document_requires_1d_words(self):
        with pytest.raises(ValueError):
            Document(0, 0, np.zeros((2, 2)))


class TestValidation:
    def test_valid_graph_builds(self):
        graph = make_graph()
        assert graph.n_users == 2
        assert graph.n_documents == 3

    def test_bad_user_reference(self):
        graph_parts = make_graph()
        documents = list(graph_parts.documents)
        documents[0] = Document(0, 9, np.array([0]))
        with pytest.raises(ValueError):
            SocialGraph(
                graph_parts.users,
                documents,
                graph_parts.friendship_links,
                graph_parts.diffusion_links,
                graph_parts.vocabulary,
            )

    def test_bad_word_id(self):
        parts = make_graph()
        documents = list(parts.documents)
        documents[1] = Document(1, 0, np.array([99]))
        with pytest.raises(ValueError):
            SocialGraph(
                parts.users, documents, parts.friendship_links,
                parts.diffusion_links, parts.vocabulary,
            )

    def test_dangling_friendship(self):
        parts = make_graph()
        with pytest.raises(ValueError):
            SocialGraph(
                parts.users, parts.documents,
                [FriendshipLink(0, 7)], parts.diffusion_links, parts.vocabulary,
            )

    def test_non_dense_doc_ids(self):
        parts = make_graph()
        documents = [parts.documents[0], parts.documents[2]]
        with pytest.raises(ValueError):
            SocialGraph(
                parts.users, documents, parts.friendship_links, [], parts.vocabulary
            )


class TestAdjacency:
    def test_friendship_neighbors_bidirectional(self):
        graph = make_graph()
        assert graph.friendship_neighbors(0) == [1]
        assert graph.friendship_neighbors(1) == [0]

    def test_diffusion_neighbors_both_directions(self):
        graph = make_graph()
        neighbors_of_2 = graph.diffusion_neighbors(2)
        # doc 2 diffuses doc 0 (outgoing) and is diffused by doc 1 (incoming)
        directions = {(other, out) for other, _t, out in neighbors_of_2}
        assert directions == {(0, True), (1, False)}

    def test_outgoing_incoming_indexes(self):
        graph = make_graph()
        assert graph.outgoing_diffusions(2) == [0]
        assert graph.incoming_diffusions(2) == [1]

    def test_documents_of(self):
        graph = make_graph()
        assert graph.documents_of(0) == [0, 1]


class TestDegreesAndStats:
    def test_follower_followee(self):
        graph = make_graph()
        assert graph.followee_count(0) == 1
        assert graph.follower_count(1) == 1
        assert graph.follower_count(0) == 0

    def test_diffusions_made_received(self):
        graph = make_graph()
        # user 1 (doc 2) diffused doc 0 (user 0); user 0 (doc 1) diffused doc 2
        assert graph.diffusions_made(1) == 1
        assert graph.diffusions_received(0) == 1
        assert graph.diffusions_made(0) == 1

    def test_stats_row(self):
        stats = make_graph().stats()
        assert stats.as_row() == (2, 1, 2, 3, 3)

    def test_timestamps(self):
        np.testing.assert_array_equal(make_graph().timestamps(), [1, 2])

    def test_pair_sets(self):
        graph = make_graph()
        assert graph.friendship_pairs() == {(0, 1)}
        assert graph.diffusion_pairs() == {(2, 0), (1, 2)}

    def test_repr_mentions_name(self):
        assert "toy" in repr(make_graph())

"""Tests for the streaming append paths, the refresher and the ingestor."""

import numpy as np
import pytest

from repro.core.gibbs import CPDSampler
from repro.serving import ProfileStore
from repro.stream import (
    DocumentArrival,
    IncrementalRefresher,
    LinkArrival,
    MicroBatchIngestor,
)


def _arrivals(graph, rng, n_docs=6):
    """Plausible new documents: word ids resampled from existing documents."""
    documents, users, timestamps = [], [], []
    for index in range(n_docs):
        source = graph.documents[int(rng.integers(0, graph.n_documents))]
        words = rng.choice(source.words, size=max(2, len(source.words)), replace=True)
        documents.append(np.asarray(words, dtype=np.int64))
        users.append(int(rng.integers(0, graph.n_users)))
        timestamps.append(int(source.timestamp))
    return documents, np.asarray(users), np.asarray(timestamps)


@pytest.fixture()
def warm(twitter_tiny, fitted_cpd):
    graph, _ = twitter_tiny
    return graph, CPDSampler.warm_start(graph, fitted_cpd, rng=11)


class TestWarmStart:
    def test_counts_match_the_fitted_assignments(self, warm, fitted_cpd):
        _graph, sampler = warm
        np.testing.assert_array_equal(
            sampler.state.doc_community, fitted_cpd.doc_community
        )
        np.testing.assert_array_equal(sampler.state.doc_topic, fitted_cpd.doc_topic)
        sampler.state.check_consistency()

    def test_estimators_match_the_fit(self, warm, fitted_cpd):
        _graph, sampler = warm
        np.testing.assert_allclose(sampler.state.pi_hat(), fitted_cpd.pi)
        np.testing.assert_allclose(sampler.state.theta_hat(), fitted_cpd.theta)


class TestAppendDocuments:
    def test_grows_state_and_keeps_counts_consistent(self, warm, rng):
        graph, sampler = warm
        documents, users, timestamps = _arrivals(graph, rng)
        communities = rng.integers(0, sampler.config.n_communities, size=len(documents))
        topics = rng.integers(0, sampler.config.n_topics, size=len(documents))
        new_ids = sampler.append_documents(
            documents, users, timestamps, communities=communities, topics=topics
        )
        assert new_ids.tolist() == list(
            range(graph.n_documents, graph.n_documents + len(documents))
        )
        assert sampler.state.n_docs == graph.n_documents + len(documents)
        np.testing.assert_array_equal(sampler.state.doc_community[new_ids], communities)
        sampler.state.check_consistency()

    def test_appended_docs_can_be_swept(self, warm, rng):
        graph, sampler = warm
        documents, users, timestamps = _arrivals(graph, rng)
        communities = rng.integers(0, sampler.config.n_communities, size=len(documents))
        topics = rng.integers(0, sampler.config.n_topics, size=len(documents))
        new_ids = sampler.append_documents(
            documents, users, timestamps, communities=communities, topics=topics
        )
        sampler.sweep_documents(new_ids)
        sampler.state.check_consistency()
        assert np.all(sampler.state.doc_topic[new_ids] >= 0)

    def test_unknown_user_rejected(self, warm, rng):
        graph, sampler = warm
        documents, users, timestamps = _arrivals(graph, rng, n_docs=1)
        with pytest.raises(ValueError):
            sampler.append_documents(documents, [graph.n_users], timestamps)

    def test_out_of_vocabulary_words_rejected(self, warm):
        graph, sampler = warm
        with pytest.raises(ValueError):
            sampler.append_documents(
                [np.asarray([graph.n_words], dtype=np.int64)], [0], [0]
            )

    def test_assignment_arrays_must_come_together(self, warm, rng):
        graph, sampler = warm
        documents, users, timestamps = _arrivals(graph, rng, n_docs=2)
        with pytest.raises(ValueError):
            sampler.append_documents(
                documents, users, timestamps, communities=np.zeros(2, dtype=np.int64)
            )

    def test_failed_append_leaves_the_sampler_untouched(self, warm, rng):
        """Validation errors must not half-grow the state (no poison appends)."""
        graph, sampler = warm
        documents, users, timestamps = _arrivals(graph, rng, n_docs=2)
        bad_calls = [
            dict(communities=np.zeros(2, dtype=np.int64)),  # topics missing
            dict(
                communities=np.full(2, sampler.config.n_communities, dtype=np.int64),
                topics=np.zeros(2, dtype=np.int64),
            ),  # community out of range
        ]
        for kwargs in bad_calls:
            with pytest.raises(ValueError):
                sampler.append_documents(documents, users, timestamps, **kwargs)
            assert sampler.state.n_docs == graph.n_documents
            assert len(sampler._doc_user) == graph.n_documents
        sampler.sweep_documents(np.arange(4))  # still fully functional
        sampler.state.check_consistency()

    def test_popularity_is_maintained_incrementally(self, warm, rng):
        graph, sampler = warm
        before = sampler.popularity.counts_matrix()
        documents, users, timestamps = _arrivals(graph, rng, n_docs=4)
        communities = rng.integers(0, sampler.config.n_communities, size=4)
        topics = rng.integers(0, sampler.config.n_topics, size=4)
        sampler.append_documents(
            documents, users, timestamps, communities=communities, topics=topics
        )
        expected = before.copy()
        np.add.at(expected, (timestamps, topics), 1.0)
        np.testing.assert_array_equal(sampler.popularity.counts_matrix(), expected)

    def test_append_beyond_known_time_buckets_grows_the_table(self, warm, rng):
        graph, sampler = warm
        new_bucket = sampler.popularity.n_time_buckets + 3
        words = np.asarray(graph.documents[0].words, dtype=np.int64)
        sampler.append_documents(
            [words],
            [0],
            [new_bucket],
            communities=np.zeros(1, dtype=np.int64),
            topics=np.zeros(1, dtype=np.int64),
        )
        assert sampler.popularity.n_time_buckets == new_bucket + 1
        assert sampler.popularity.count(new_bucket, 0) == 1.0


class TestAppendLinks:
    def test_links_join_the_csr_layout(self, warm, rng):
        graph, sampler = warm
        before = sampler.n_diff_links
        sources = np.asarray([0, 1], dtype=np.int64)
        targets = np.asarray([2, 3], dtype=np.int64)
        times = np.asarray([0, 1], dtype=np.int64)
        sampler.append_diffusion_links(sources, targets, times)
        assert sampler.n_diff_links == before + 2
        assert sampler.d_csr_indptr[-1] == 2 * sampler.n_diff_links
        assert len(sampler.deltas) == sampler.n_diff_links
        assert len(sampler.e_features) == sampler.n_diff_links
        sampler.sweep_documents(np.asarray([0, 1, 2, 3]))
        sampler.state.check_consistency()

    def test_unknown_endpoints_rejected(self, warm):
        _graph, sampler = warm
        with pytest.raises(ValueError):
            sampler.append_diffusion_links([0], [sampler.state.n_docs], [0])


class TestKernelParityAfterAppend:
    """Vectorized conditionals must still match the reference loops after
    streaming appends — the §4 equivalence contract extends to §6."""

    def _appended_pair(self, twitter_tiny, fitted_cpd):
        graph, _ = twitter_tiny
        samplers = []
        for kernel in ("reference", "vectorized"):
            result = fitted_cpd
            config = result.config.with_overrides(sweep_kernel=kernel)
            patched = type(result)(
                config=config,
                pi=result.pi,
                theta=result.theta,
                phi=result.phi,
                diffusion=result.diffusion,
                doc_community=result.doc_community,
                doc_topic=result.doc_topic,
                trace=result.trace,
                graph_name=result.graph_name,
            )
            sampler = CPDSampler.warm_start(graph, patched, rng=3)
            rng = np.random.default_rng(99)
            documents, users, timestamps = _arrivals(graph, rng, n_docs=5)
            communities = rng.integers(0, config.n_communities, size=5)
            topics = rng.integers(0, config.n_topics, size=5)
            new_ids = sampler.append_documents(
                documents, users, timestamps, communities=communities, topics=topics
            )
            sampler.append_diffusion_links(
                [int(new_ids[0]), 0], [3, int(new_ids[1])], [1, 2]
            )
            samplers.append(sampler)
        return samplers

    def test_conditionals_match(self, twitter_tiny, fitted_cpd):
        reference, vectorized = self._appended_pair(twitter_tiny, fitted_cpd)
        probe_docs = [0, 3, reference.state.n_docs - 5, reference.state.n_docs - 4]
        for doc_id in probe_docs:
            old_community, old_topic = reference.state.unassign(doc_id)
            vectorized.state.unassign(doc_id)
            np.testing.assert_allclose(
                vectorized.kernel.topic_log_weights(doc_id, old_community),
                reference.kernel.topic_log_weights(doc_id, old_community),
                rtol=1e-10,
                atol=1e-10,
            )
            np.testing.assert_allclose(
                vectorized.kernel.community_log_weights(doc_id, old_topic),
                reference.kernel.community_log_weights(doc_id, old_topic),
                rtol=1e-10,
                atol=1e-10,
            )
            reference.state.assign(doc_id, old_community, old_topic)
            vectorized.state.assign(doc_id, old_community, old_topic)


class TestRefresher:
    def test_refresh_resweeps_only_dirty(self, twitter_tiny, fitted_cpd, rng):
        graph, _ = twitter_tiny
        refresher = IncrementalRefresher(graph, fitted_cpd, rng=5)
        documents, users, timestamps = _arrivals(graph, rng)
        communities = rng.integers(0, fitted_cpd.n_communities, size=len(documents))
        topics = rng.integers(0, fitted_cpd.config.n_topics, size=len(documents))
        new_ids = refresher.append_documents(
            documents, users, timestamps, communities, topics
        )
        refresher.append_links([int(new_ids[0])], [0], [1])
        assert refresher.n_dirty == len(new_ids) + 1  # plus link endpoint 0
        untouched = refresher.sampler.state.doc_community[1:10].copy()
        report = refresher.refresh()
        assert report.n_documents == len(new_ids) + 1
        assert report.n_reassigned == report.moved_into.sum()
        assert refresher.n_dirty == 0
        np.testing.assert_array_equal(
            refresher.sampler.state.doc_community[1:10], untouched
        )
        refresher.sampler.state.check_consistency()

    def test_empty_refresh_is_a_noop(self, twitter_tiny, fitted_cpd):
        graph, _ = twitter_tiny
        refresher = IncrementalRefresher(graph, fitted_cpd, rng=5)
        report = refresher.refresh()
        assert report.n_documents == 0
        assert report.n_reassigned == 0

    def test_parallel_sweeper_refresh(self, twitter_tiny, fitted_cpd, rng):
        """Dirty-set refresh through the shared-memory runner.

        Appended documents overflow the fixed-size plane and must be swept
        serially by the coordinator; base documents go through the workers.
        """
        from repro.parallel import ParallelEStepRunner

        graph, _ = twitter_tiny
        with ParallelEStepRunner(
            graph, fitted_cpd.config, n_workers=2, rng=6
        ) as runner:
            refresher = IncrementalRefresher(
                graph, fitted_cpd, rng=5, document_sweeper=runner
            )
            documents, users, timestamps = _arrivals(graph, rng)
            communities = rng.integers(0, fitted_cpd.n_communities, size=len(documents))
            topics = rng.integers(0, fitted_cpd.config.n_topics, size=len(documents))
            new_ids = refresher.append_documents(
                documents, users, timestamps, communities, topics
            )
            refresher.append_links([int(new_ids[0])], [0], [1])
            report = refresher.refresh()
            assert report.n_documents == len(new_ids) + 1
            refresher.sampler.state.check_consistency()
            # fused augmentation covers appended links too
            assert len(refresher.sampler.deltas) == refresher.sampler.n_diff_links
        refresher.sampler.state.check_consistency()  # survives runner close

    def test_snapshot_result_reflects_the_grown_corpus(
        self, twitter_tiny, fitted_cpd, rng
    ):
        graph, _ = twitter_tiny
        refresher = IncrementalRefresher(graph, fitted_cpd, rng=5)
        documents, users, timestamps = _arrivals(graph, rng)
        communities = rng.integers(0, fitted_cpd.n_communities, size=len(documents))
        topics = rng.integers(0, fitted_cpd.config.n_topics, size=len(documents))
        refresher.append_documents(documents, users, timestamps, communities, topics)
        result = refresher.snapshot_result()
        assert len(result.doc_community) == graph.n_documents + len(documents)
        assert result.pi.shape == fitted_cpd.pi.shape
        state = refresher.sampler.state
        np.testing.assert_allclose(result.pi, state.pi_hat())
        np.testing.assert_allclose(result.phi, state.phi_hat())


class TestMicroBatchIngestor:
    @pytest.fixture()
    def pipeline(self, twitter_tiny, fitted_cpd):
        graph, _ = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        refresher = IncrementalRefresher(graph, fitted_cpd, rng=5)
        return graph, store, refresher

    def _events(self, graph, rng, n_docs=5):
        documents, users, timestamps = _arrivals(graph, rng, n_docs=n_docs)
        return [
            DocumentArrival(int(user), words, int(timestamp))
            for words, user, timestamp in zip(documents, users, timestamps)
        ]

    def test_flushes_at_batch_size(self, pipeline, rng):
        graph, store, refresher = pipeline
        ingestor = MicroBatchIngestor(store, refresher, batch_size=3, rng=1)
        events = self._events(graph, rng, n_docs=7)
        reports = ingestor.submit_many(events)
        assert len(reports) == 2  # two full batches of 3, one doc buffered
        assert ingestor.stats()["buffered"] == 1
        final = ingestor.flush()
        assert final.n_documents == 1
        assert ingestor.n_documents == 7
        assert refresher.n_documents == graph.n_documents + 7

    def test_foldin_only_mode_records_assignments(self, pipeline, rng):
        graph, store, _refresher = pipeline
        ingestor = MicroBatchIngestor(store, refresher=None, batch_size=4, rng=1)
        ingestor.submit_many(self._events(graph, rng, n_docs=4))
        assert len(ingestor.foldin_communities) == 4
        assert ingestor.foldin_counts.sum() == 4
        assert ingestor.refresh() is None  # nothing to refresh without a refresher

    def test_links_are_buffered_and_appended(self, pipeline, rng):
        graph, store, refresher = pipeline
        ingestor = MicroBatchIngestor(store, refresher, batch_size=2, rng=1)
        before = refresher.sampler.n_diff_links
        ingestor.submit(LinkArrival(0, 1, 0))
        ingestor.submit(LinkArrival(2, 3, 1))
        assert refresher.sampler.n_diff_links == before + 2

    def test_refresh_interval_triggers_automatically(self, pipeline, rng):
        graph, store, refresher = pipeline
        ingestor = MicroBatchIngestor(
            store, refresher, batch_size=2, refresh_interval=4, rng=1
        )
        ingestor.submit_many(self._events(graph, rng, n_docs=8))
        assert len(ingestor.refresh_reports) == 2
        assert ingestor.stats()["staleness_total"] == 0

    def test_staleness_counts_reset_on_refresh(self, pipeline, rng):
        graph, store, refresher = pipeline
        ingestor = MicroBatchIngestor(store, refresher, batch_size=4, rng=1)
        ingestor.submit_many(self._events(graph, rng, n_docs=4))
        assert ingestor.staleness.sum() == 4
        ingestor.refresh()
        assert ingestor.staleness.sum() == 0
        assert ingestor.foldin_counts.sum() == 4

    def test_refresh_interval_requires_refresher(self, pipeline):
        _graph, store, _refresher = pipeline
        with pytest.raises(ValueError):
            MicroBatchIngestor(store, refresher=None, refresh_interval=10)

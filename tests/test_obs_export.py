"""Tests for the exporters: Prometheus text, JSON telemetry files, summaries."""

import math

import pytest

from repro import obs
from repro.obs.export import TELEMETRY_VERSION
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_telemetry()
    yield
    obs.disable_telemetry()


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_sweeps_total", {"kernel": "vectorized"}).inc(9)
    registry.gauge("repro_fit_iteration").set(24)
    hist = registry.histogram("repro_rank_seconds", {"outcome": "hit"})
    for value in (0.001, 0.002, 0.004, 2.0):
        hist.observe(value)
    return registry


class TestRenderPrometheus:
    def test_type_lines_and_samples(self):
        text = obs.render_prometheus(_populated_registry().snapshot())
        assert "# TYPE repro_sweeps_total counter" in text
        assert 'repro_sweeps_total{kernel="vectorized"} 9' in text
        assert "# TYPE repro_fit_iteration gauge" in text
        assert "# TYPE repro_rank_seconds histogram" in text
        # the +Inf bucket carries the grand total and _count matches
        assert 'le="+Inf"' in text
        assert 'repro_rank_seconds_count{outcome="hit"} 4' in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(0.001, 1.0))
        for value in (0.0005, 0.5, 100.0):
            hist.observe(value)
        parsed = obs.parse_prometheus(obs.render_prometheus(registry.snapshot()))
        buckets = {
            s["labels"]["le"]: s["value"]
            for s in parsed["samples"]
            if s["name"] == "h_bucket"
        }
        assert buckets == {"0.001": 1, "1": 2, "+Inf": 3}

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        nasty = 'a"b\\c\nd'
        registry.counter("c", {"q": nasty}).inc()
        parsed = obs.parse_prometheus(obs.render_prometheus(registry.snapshot()))
        (sample,) = parsed["samples"]
        assert sample["labels"]["q"] == nasty

    def test_full_round_trip_preserves_every_sample(self):
        snapshot = _populated_registry().snapshot()
        parsed = obs.parse_prometheus(obs.render_prometheus(snapshot))
        assert parsed["types"] == {
            "repro_sweeps_total": "counter",
            "repro_fit_iteration": "gauge",
            "repro_rank_seconds": "histogram",
        }
        names = {s["name"] for s in parsed["samples"]}
        assert "repro_rank_seconds_sum" in names
        assert "repro_fit_iteration" in names

    def test_special_values(self):
        assert obs.parse_prometheus("g +Inf\n")["samples"][0]["value"] == math.inf
        assert math.isnan(obs.parse_prometheus("g NaN\n")["samples"][0]["value"])

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            obs.parse_prometheus("just_a_name_no_value\n")


class TestTelemetryFile:
    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "run.telemetry.json"
        snapshot = _populated_registry().snapshot()
        spans = [{"span_id": "a", "trace_id": "t", "parent_id": None,
                  "start": 0.0, "name": "s", "duration": 0.1,
                  "status": "ok", "pid": 1, "tags": {}}]
        obs.write_telemetry(path, snapshot, spans)
        payload = obs.load_telemetry(path)
        assert payload["version"] == TELEMETRY_VERSION
        assert payload["metrics"]["counters"][0]["value"] == 9
        assert payload["spans"] == spans
        assert payload["written_at"] > 0

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "metrics": {}, "spans": []}')
        with pytest.raises(ValueError, match="version"):
            obs.load_telemetry(path)

    def test_write_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "t.json"
        obs.write_telemetry(path, {"counters": []}, [])
        assert path.exists()


class TestHistogramSummary:
    def test_matches_live_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for i in range(1, 101):
            hist.observe(i / 100)
        (entry,) = registry.snapshot()["histograms"]
        summary = obs.histogram_summary(entry)
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(hist.mean)
        assert summary["p50"] == pytest.approx(hist.percentile(0.5))
        assert summary["p95"] == pytest.approx(hist.percentile(0.95))
        assert summary["p99"] == pytest.approx(hist.percentile(0.99))
        assert summary["max"] == pytest.approx(1.0)

    def test_empty_histogram_summary(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        (entry,) = registry.snapshot()["histograms"]
        assert obs.histogram_summary(entry) == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            "max": 0.0,
        }


class TestSloGaugeExport:
    """``repro_slo_burn_rate`` gauges survive the Prometheus text format."""

    def _registry_with_burn(self) -> MetricsRegistry:
        from repro.obs.slo import SloTracker

        tracker = SloTracker(
            availability_target=0.99, windows=(60.0,), clock=lambda: 1000.0
        )
        for _ in range(98):
            tracker.record("/rank", 200, 0.01)
        for _ in range(2):
            tracker.record("/rank", 500, 0.01)
        registry = MetricsRegistry()
        tracker.export_gauges(registry)
        return registry

    def test_burn_rate_gauges_round_trip(self):
        text = obs.render_prometheus(self._registry_with_burn().snapshot())
        assert "# TYPE repro_slo_burn_rate gauge" in text
        parsed = obs.parse_prometheus(text)
        burns = {
            s["labels"]["objective"]: s["value"]
            for s in parsed["samples"]
            if s["name"] == "repro_slo_burn_rate"
            and s["labels"]["window"] == "60"
        }
        # 2 bad of 100 against a 99% target — the hand-computed 2.0
        assert burns["availability"] == pytest.approx(2.0)
        assert burns["latency"] == pytest.approx(0.0)

    def test_route_label_with_slash_round_trips(self):
        parsed = obs.parse_prometheus(
            obs.render_prometheus(self._registry_with_burn().snapshot())
        )
        routes = {
            s["labels"]["route"]
            for s in parsed["samples"]
            if s["name"] == "repro_slo_burn_rate"
        }
        assert routes == {"/rank"}


class TestEmptyHistogramRoundTrip:
    def test_never_observed_histogram_renders_and_parses(self):
        registry = MetricsRegistry()
        registry.histogram("h_empty", {"leg": "idle"}, bounds=(0.1, 1.0))
        text = obs.render_prometheus(registry.snapshot())
        assert "# TYPE h_empty histogram" in text
        parsed = obs.parse_prometheus(text)
        by_name = {}
        for sample in parsed["samples"]:
            by_name.setdefault(sample["name"], []).append(sample)
        assert [s["value"] for s in by_name["h_empty_bucket"]] == [0, 0, 0]
        assert by_name["h_empty_count"][0]["value"] == 0
        assert by_name["h_empty_sum"][0]["value"] == 0
        # labels survive on every sample of the empty histogram
        assert all(
            s["labels"]["leg"] == "idle" for s in by_name["h_empty_bucket"]
        )

"""Worker self-healing: dead workers cost one degraded sweep, never the fit.

The ISSUE 6 acceptance bar lives here: a worker killed mid-sweep is
detected, its partition is swept by the serial fallback within that same
sweep, a replacement worker is respawned — and the document assignments
stay in parity with an identically-seeded unharmed run.
"""

import numpy as np
import pytest

from repro.core import CPDConfig, DiffusionParameters
from repro.core.gibbs import CPDSampler
from repro.evaluation import normalized_mutual_information
from repro.parallel import ParallelEStepRunner
from repro.resilience import FaultPlan, inject


@pytest.fixture(scope="module")
def heal_setup(twitter_tiny):
    graph, _ = twitter_tiny
    config = CPDConfig(n_communities=4, n_topics=8, n_iterations=4, rho=0.5, alpha=0.5)
    return graph, config


def _kill_worker(worker, at=1, times=1):
    plan = FaultPlan(seed=0)
    plan.fail_at("worker.kill", at=at, times=times, worker=worker)
    return plan


def _fresh_sampler(graph, config, rng=1):
    return CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=rng)


class TestSelfHealing:
    def test_killed_worker_costs_one_degraded_sweep(self, heal_setup):
        graph, config = heal_setup
        sampler = _fresh_sampler(graph, config)
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            with inject(_kill_worker(1)):
                runner(sampler)  # worker 1 dies mid-dispatch
            assert runner.stats.worker_restarts == 1
            assert runner.stats.degraded_sweeps == 1
            sampler.state.check_consistency()
            # the replacement worker serves the very next sweep cleanly
            runner(sampler)
            assert runner.stats.degraded_sweeps == 1
            assert all(process.is_alive() for process in runner._processes)
        sampler.state.check_consistency()

    def test_lost_partition_is_still_swept(self, heal_setup):
        """The dead worker's documents are re-sampled by the serial
        fallback in the same call — no document skips the sweep."""
        graph, config = heal_setup
        sampler = _fresh_sampler(graph, config)
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            lost_docs = runner.schedule.worker_doc_ids(1)
            assert lost_docs.size > 0
            moved = False
            with inject(_kill_worker(1, times=5)):
                for _ in range(5):
                    runner(sampler)
                    state = sampler.state
                    moved = moved or bool(
                        np.any(state.doc_community[lost_docs] != 0)
                        or np.any(state.doc_topic[lost_docs] != 0)
                    )
            assert moved
            sampler.state.check_consistency()

    def test_fused_augmentation_survives_a_kill(self, heal_setup):
        """The dead worker's lambda/delta ranges and eta slab are redrawn
        serially, so the merged augmentation stays complete."""
        graph, config = heal_setup
        sampler = _fresh_sampler(graph, config)
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            lambdas_before = sampler.lambdas.copy()
            with inject(_kill_worker(0)):
                runner(sampler)
            eta = runner.aggregated_eta()
        assert not np.array_equal(sampler.lambdas, lambdas_before)
        assert eta is not None
        assert eta.sum() == pytest.approx(1.0)
        assert np.all(eta > 0)
        # the healed partial counts still cover every link exactly once
        raw = eta * (graph.n_diffusion_links + eta.size * config.eta_smoothing)
        assert raw.sum() == pytest.approx(
            graph.n_diffusion_links + eta.size * config.eta_smoothing
        )

    def test_self_heal_disabled_raises(self, heal_setup):
        graph, config = heal_setup
        sampler = _fresh_sampler(graph, config)
        with ParallelEStepRunner(
            graph, config, n_workers=2, rng=0, self_heal=False
        ) as runner:
            with inject(_kill_worker(1)):
                with pytest.raises(RuntimeError, match="worker 1"):
                    runner(sampler)

    def test_worker_timeout_validated(self, heal_setup):
        graph, config = heal_setup
        with pytest.raises(ValueError, match="worker_timeout"):
            ParallelEStepRunner(
                graph, config, n_workers=1, rng=0, worker_timeout=0.0
            )

    def test_multiple_kills_across_sweeps(self, heal_setup):
        """Each kill costs its own degraded sweep and respawn; the runner
        never wedges."""
        graph, config = heal_setup
        sampler = _fresh_sampler(graph, config)
        plan = FaultPlan(seed=0)
        plan.fail_at("worker.kill", at=1, worker=0)
        plan.fail_at("worker.kill", at=3, worker=1)
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            with inject(plan):
                for _ in range(3):
                    runner(sampler)
            assert runner.stats.worker_restarts == 2
            assert runner.stats.degraded_sweeps == 2
            sampler.state.check_consistency()


class TestKilledParity:
    @pytest.fixture(scope="class")
    def converged_base(self):
        """A converged fit on a crisply-planted scenario (the same parity
        substrate as test_parallel_runner.TestSerialParallelParity)."""
        from repro.core import CPDModel
        from repro.datasets import twitter_scenario

        graph, _ = twitter_scenario(
            "tiny",
            rng=42,
            pi_concentration=0.02,
            pi_primary_boost=12.0,
            community_topic_boost=20.0,
            conforming_fraction=0.95,
            docs_per_user_mean=6.0,
        )
        config = CPDConfig(
            n_communities=4, n_topics=8, n_iterations=25, rho=0.5, alpha=0.5
        )
        return graph, config, CPDModel(config, rng=0).fit(graph)

    def test_doc_assignments_match_an_unharmed_run(self, converged_base):
        """The acceptance pin: a kill costs at most one serial-fallback
        sweep, with document assignments in parity (NMI >= 0.8) with an
        identically-seeded run that never lost a worker."""
        graph, config, base = converged_base

        def run(kill: bool) -> np.ndarray:
            sampler = CPDSampler.warm_start(graph, base, rng=303)
            with ParallelEStepRunner(
                graph, config, n_workers=2, rng=202
            ) as runner:
                if kill:
                    with inject(_kill_worker(1)):
                        runner(sampler)
                else:
                    runner(sampler)
                runner(sampler)
                assert runner.stats.degraded_sweeps == (1 if kill else 0)
            sampler.state.check_consistency()
            return sampler.state.doc_community.copy()

        harmed = run(kill=True)
        unharmed = run(kill=False)
        nmi = normalized_mutual_information(harmed, unharmed)
        assert nmi >= 0.8, f"killed vs unharmed doc NMI {nmi:.3f} < 0.8"

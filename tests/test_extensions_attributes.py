"""Tests for the attribute-profile extension (paper future work)."""

import numpy as np
import pytest

from repro.extensions import (
    AttributeProfiler,
    AttributeSchema,
    AttributeTable,
    plant_attributes,
)


@pytest.fixture()
def schema():
    return AttributeSchema(names=["region", "role"], cardinalities=[3, 2])


@pytest.fixture()
def peaked_pi(rng):
    """60 users in 3 near-hard communities."""
    pi = np.full((60, 3), 0.05)
    for user in range(60):
        pi[user, user % 3] = 0.9
    return pi / pi.sum(axis=1, keepdims=True)


class TestSchema:
    def test_valid(self, schema):
        assert schema.n_attributes == 2
        assert schema.index_of("role") == 1

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            AttributeSchema(names=["a"], cardinalities=[2, 3])

    def test_rejects_unary_attribute(self):
        with pytest.raises(ValueError):
            AttributeSchema(names=["a"], cardinalities=[1])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            AttributeSchema(names=["a", "a"], cardinalities=[2, 2])


class TestTable:
    def test_valid(self, schema):
        table = AttributeTable(schema, np.zeros((5, 2), dtype=np.int64))
        assert table.n_users == 5

    def test_rejects_out_of_range(self, schema):
        values = np.zeros((5, 2), dtype=np.int64)
        values[0, 1] = 9
        with pytest.raises(ValueError):
            AttributeTable(schema, values)

    def test_missing_values_allowed(self, schema):
        values = np.full((5, 2), -1, dtype=np.int64)
        table = AttributeTable(schema, values)
        assert np.all(table.column("region") == -1)


class TestPlantAttributes:
    def test_shapes(self, schema, peaked_pi, rng):
        table, planted = plant_attributes(peaked_pi, schema, rng=rng)
        assert table.n_users == 60
        assert planted[0].shape == (3, 3)
        assert planted[1].shape == (3, 2)
        np.testing.assert_allclose(planted[0].sum(axis=1), 1.0)

    def test_missing_rate(self, schema, peaked_pi, rng):
        table, _ = plant_attributes(peaked_pi, schema, missing_rate=0.5, rng=rng)
        missing = (table.values == -1).mean()
        assert 0.3 < missing < 0.7


class TestProfiler:
    def test_profiles_normalised(self, schema, peaked_pi, rng):
        table, _ = plant_attributes(peaked_pi, schema, rng=rng)
        profiler = AttributeProfiler(peaked_pi, table)
        np.testing.assert_allclose(profiler.profile("region").sum(axis=1), 1.0)

    def test_recovers_planted_profiles(self, schema, peaked_pi, rng):
        """With peaked memberships the estimator must track the planted
        community-attribute distributions."""
        table, planted = plant_attributes(
            peaked_pi, schema, concentration=0.15, rng=rng
        )
        profiler = AttributeProfiler(peaked_pi, table)
        estimated = profiler.profile("region")
        # dominant value agrees per community
        agreement = (estimated.argmax(axis=1) == planted[0].argmax(axis=1)).mean()
        assert agreement >= 2 / 3

    def test_prediction_beats_chance(self, schema, peaked_pi, rng):
        table, _ = plant_attributes(peaked_pi, schema, concentration=0.1, rng=rng)
        profiler = AttributeProfiler(peaked_pi, table)
        accuracy = profiler.prediction_accuracy("region", np.arange(60))
        assert accuracy > 1.0 / 3.0

    def test_top_values_sorted(self, schema, peaked_pi, rng):
        table, _ = plant_attributes(peaked_pi, schema, rng=rng)
        profiler = AttributeProfiler(peaked_pi, table)
        tops = profiler.top_values(0, "region", n=3)
        weights = [w for _v, w in tops]
        assert weights == sorted(weights, reverse=True)

    def test_distinctiveness_detects_signal(self, schema, peaked_pi, rng):
        planted_table, _ = plant_attributes(peaked_pi, schema, concentration=0.1, rng=rng)
        signal = AttributeProfiler(peaked_pi, planted_table).distinctiveness("region")
        random_values = rng.integers(0, 3, size=(60, 1))
        random_table = AttributeTable(
            AttributeSchema(["region"], [3]), random_values
        )
        noise = AttributeProfiler(peaked_pi, random_table).distinctiveness("region")
        assert signal > noise

    def test_missing_values_skipped(self, schema, peaked_pi, rng):
        table, _ = plant_attributes(peaked_pi, schema, missing_rate=0.9, rng=rng)
        profiler = AttributeProfiler(peaked_pi, table)
        assert np.all(np.isfinite(profiler.profile("role")))

    def test_validation(self, schema, peaked_pi, rng):
        table, _ = plant_attributes(peaked_pi, schema, rng=rng)
        with pytest.raises(ValueError):
            AttributeProfiler(peaked_pi[:10], table)
        with pytest.raises(ValueError):
            AttributeProfiler(peaked_pi, table, smoothing=0.0)

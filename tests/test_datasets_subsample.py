"""Tests for graph subsampling (the Fig. 10(a) scalability substrate)."""

import numpy as np
import pytest

from repro.datasets import subsample_graph


class TestSubsampleGraph:
    def test_full_fraction_is_identity(self, twitter_tiny):
        graph, _ = twitter_tiny
        assert subsample_graph(graph, 1.0) is graph

    def test_document_count_scales(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        half = subsample_graph(graph, 0.5, rng)
        assert half.n_documents == round(0.5 * graph.n_documents)

    def test_link_counts_bounded_by_fraction(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        half = subsample_graph(graph, 0.5, rng)
        assert half.n_friendship_links <= round(0.5 * graph.n_friendship_links)
        assert half.n_diffusion_links <= round(0.5 * graph.n_diffusion_links)

    def test_graph_is_valid(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        sub = subsample_graph(graph, 0.4, rng)
        # validation runs in the constructor; spot-check the invariants here
        assert all(doc.doc_id == i for i, doc in enumerate(sub.documents))
        assert all(user.user_id == i for i, user in enumerate(sub.users))
        for user in sub.users:
            assert user.doc_ids, "users without documents must be dropped"

    def test_links_reference_surviving_entities(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        sub = subsample_graph(graph, 0.3, rng)
        for link in sub.friendship_links:
            assert 0 <= link.source < sub.n_users
            assert 0 <= link.target < sub.n_users
        for link in sub.diffusion_links:
            assert 0 <= link.source_doc < sub.n_documents

    def test_vocabulary_shared(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        sub = subsample_graph(graph, 0.5, rng)
        assert sub.vocabulary is graph.vocabulary

    def test_deterministic(self, twitter_tiny):
        graph, _ = twitter_tiny
        a = subsample_graph(graph, 0.5, rng=4)
        b = subsample_graph(graph, 0.5, rng=4)
        assert a.stats().as_row() == b.stats().as_row()

    def test_invalid_fraction(self, twitter_tiny):
        graph, _ = twitter_tiny
        with pytest.raises(ValueError):
            subsample_graph(graph, 0.0)
        with pytest.raises(ValueError):
            subsample_graph(graph, 1.5)

    def test_monotone_sizes(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        quarter = subsample_graph(graph, 0.25, 1)
        half = subsample_graph(graph, 0.5, 1)
        assert quarter.n_documents < half.n_documents <= graph.n_documents

    def test_cpd_fits_on_subsample(self, twitter_tiny):
        """The scalability experiment's actual use of subsampled graphs."""
        from repro.core import CPDConfig, CPDModel

        graph, _ = twitter_tiny
        sub = subsample_graph(graph, 0.5, rng=2)
        config = CPDConfig(n_communities=3, n_topics=6, n_iterations=2, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=0).fit(sub)
        assert result.pi.shape == (sub.n_users, 3)

"""Tests for the deterministic fault-injection plan and its consult clock."""

import pytest

from repro.resilience import FaultPlan, InjectedFault
from repro.resilience.faults import (
    FaultSpec,
    active_plan,
    firing,
    inject,
    should_fire,
)


class TestSpecValidation:
    def test_at_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(point="x", at=0)

    def test_times_at_least_one(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(point="x", times=0)

    def test_probabilistic_spec_needs_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(point="x", at=None, probability=0.0)

    def test_match_restricts_by_context(self):
        spec = FaultSpec(point="shard.query", match={"shard": 2})
        assert spec.matches("shard.query", {"shard": 2, "attempt": 1})
        assert not spec.matches("shard.query", {"shard": 1})
        assert not spec.matches("other.point", {"shard": 2})


class TestConsultClock:
    def test_fires_on_the_nth_matching_consult_only(self):
        plan = FaultPlan(seed=0)
        plan.fail_at("p", at=3)
        fired = [plan.should_fire("p") for _ in range(5)]
        assert fired == [False, False, True, False, False]

    def test_times_widens_the_firing_window(self):
        plan = FaultPlan(seed=0)
        plan.fail_at("p", at=2, times=2)
        fired = [plan.should_fire("p") for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_match_keeps_separate_contexts_unharmed(self):
        plan = FaultPlan(seed=0)
        plan.fail_at("shard.query", at=1, shard=2)
        assert not plan.should_fire("shard.query", shard=0)
        assert not plan.should_fire("shard.query", shard=1)
        assert plan.should_fire("shard.query", shard=2)

    def test_non_matching_consults_do_not_advance_the_clock(self):
        plan = FaultPlan(seed=0)
        plan.fail_at("shard.query", at=2, shard=1)
        plan.should_fire("shard.query", shard=0)  # different shard: no tick
        assert not plan.should_fire("shard.query", shard=1)  # tick 1
        assert plan.should_fire("shard.query", shard=1)  # tick 2: fires

    def test_fired_log_records_point_and_context(self):
        plan = FaultPlan(seed=0)
        plan.fail_at("p", at=1)
        plan.should_fire("p", detail=7)
        assert plan.fired == [("p", {"detail": 7})]

    def test_consultations_counts_the_point_clock(self):
        plan = FaultPlan(seed=0)
        plan.fail_at("p", at=99)
        for _ in range(4):
            plan.should_fire("p")
        assert plan.consultations("p") == 4
        assert plan.consultations("unarmed") == 0

    def test_probabilistic_spec_is_reproducible_across_plans(self):
        def outcomes(seed):
            plan = FaultPlan(seed=seed)
            plan.arm(FaultSpec(point="p", at=None, probability=0.5))
            return [plan.should_fire("p") for _ in range(32)]

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)  # and the seed matters
        assert any(outcomes(7)) and not all(outcomes(7))

    def test_timeout_shorthand_sets_action_and_delay(self):
        plan = FaultPlan(seed=0)
        spec = plan.timeout_at("shard.query", delay=0.5, shard=1)
        assert spec.action == "timeout" and spec.delay == 0.5
        hit = plan.firing("shard.query", shard=1)
        assert hit is spec


class TestActivation:
    def test_quiescent_consults_are_noops(self):
        assert active_plan() is None
        assert firing("anything") is None
        assert not should_fire("anything")

    def test_inject_scopes_the_plan(self):
        plan = FaultPlan(seed=0)
        plan.fail_at("p", at=1)
        with inject(plan) as active:
            assert active is plan and active_plan() is plan
            assert should_fire("p")
        assert active_plan() is None
        assert not should_fire("p")

    def test_plans_do_not_nest(self):
        with inject(FaultPlan()):
            with pytest.raises(RuntimeError, match="do not nest"):
                with inject(FaultPlan()):
                    pass

    def test_plan_deactivated_even_after_an_escape(self):
        with pytest.raises(KeyError):
            with inject(FaultPlan()):
                raise KeyError("escaping")
        assert active_plan() is None


class TestInjectedFault:
    def test_message_carries_point_and_context(self):
        error = InjectedFault("wal.append", {"seq": 3, "path": "x.wal"})
        assert error.point == "wal.append"
        assert error.context == {"seq": 3, "path": "x.wal"}
        assert "wal.append" in str(error) and "seq=3" in str(error)

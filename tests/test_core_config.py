"""Tests for CPDConfig."""

import pytest

from repro.core import CPDConfig


class TestPriorConventions:
    def test_alpha_default_is_50_over_z(self):
        assert CPDConfig(n_communities=5, n_topics=25).resolved_alpha == pytest.approx(2.0)

    def test_rho_default_is_50_over_c(self):
        assert CPDConfig(n_communities=25, n_topics=5).resolved_rho == pytest.approx(2.0)

    def test_beta_default(self):
        assert CPDConfig().beta == pytest.approx(0.1)

    def test_overrides(self):
        config = CPDConfig(alpha=0.3, rho=0.7)
        assert config.resolved_alpha == 0.3
        assert config.resolved_rho == 0.7


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_communities=0),
            dict(n_topics=0),
            dict(n_iterations=0),
            dict(beta=0.0),
            dict(alpha=-1.0),
            dict(rho=0.0),
            dict(popularity_mode="bogus"),
            dict(negative_ratio=0.0),
            dict(eta_smoothing=0.0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            CPDConfig(**kwargs)


class TestWithOverrides:
    def test_returns_new_config(self):
        base = CPDConfig(n_communities=4)
        derived = base.with_overrides(heterogeneity=False)
        assert derived.heterogeneity is False
        assert base.heterogeneity is True
        assert derived.n_communities == 4

    def test_frozen(self):
        config = CPDConfig()
        with pytest.raises(Exception):
            config.n_topics = 3


class TestAblationFlags:
    def test_defaults_are_full_model(self):
        config = CPDConfig()
        assert config.model_friendship
        assert config.model_diffusion
        assert config.heterogeneity
        assert config.use_individual_factor
        assert config.use_topic_factor
        assert config.community_uses_content

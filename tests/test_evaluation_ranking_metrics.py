"""Tests for MAP/MAR/MAF ranking metrics."""

import numpy as np
import pytest

from repro.evaluation import (
    average_precision_recall_f1,
    precision_recall_at_k,
    ranking_scores,
)


def members(*groups):
    return [np.asarray(g, dtype=np.int64) for g in groups]


class TestPrecisionRecallAtK:
    def test_perfect_first_community(self):
        ranking = members([1, 2], [3, 4])
        p, r = precision_recall_at_k(ranking, np.array([1, 2]), k=1)
        assert p == 1.0 and r == 1.0

    def test_union_semantics(self):
        ranking = members([1], [2])
        p, r = precision_recall_at_k(ranking, np.array([1, 2]), k=2)
        assert p == 1.0 and r == 1.0

    def test_precision_dilution(self):
        ranking = members([1, 9, 8])  # one relevant of three members
        p, r = precision_recall_at_k(ranking, np.array([1, 2]), k=1)
        assert p == pytest.approx(1 / 3)
        assert r == pytest.approx(1 / 2)

    def test_duplicate_members_counted_once(self):
        ranking = members([1, 2], [2, 3])
        p, r = precision_recall_at_k(ranking, np.array([2]), k=2)
        assert p == pytest.approx(1 / 3)  # union is {1, 2, 3}, one relevant
        assert r == 1.0

    def test_empty_relevant_raises(self):
        with pytest.raises(ValueError):
            precision_recall_at_k(members([1]), np.array([]), k=1)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            precision_recall_at_k(members([1]), np.array([1]), k=0)


class TestRankingScores:
    def test_monotone_recall(self):
        rankings = [members([1], [2], [3])]
        relevant = [np.array([1, 2, 3])]
        scores = ranking_scores(rankings, relevant, max_k=3)
        assert np.all(np.diff(scores.mar_at_k) >= -1e-12)

    def test_perfect_ranking(self):
        rankings = [members([1, 2])]
        relevant = [np.array([1, 2])]
        scores = ranking_scores(rankings, relevant, max_k=1)
        assert scores.at(1) == (1.0, 1.0, 1.0)

    def test_f1_harmonic_mean(self):
        rankings = [members([1, 9])]  # precision 0.5, recall 1.0
        relevant = [np.array([1])]
        scores = ranking_scores(rankings, relevant, max_k=1)
        map1, mar1, maf1 = scores.at(1)
        assert maf1 == pytest.approx(2 * map1 * mar1 / (map1 + mar1))

    def test_averages_over_queries(self):
        rankings = [members([1]), members([9])]
        relevant = [np.array([1]), np.array([1])]
        scores = ranking_scores(rankings, relevant, max_k=1)
        assert scores.at(1)[0] == pytest.approx(0.5)

    def test_short_rankings_padded(self):
        rankings = [members([1])]
        relevant = [np.array([1])]
        scores = ranking_scores(rankings, relevant, max_k=5)
        assert scores.max_k == 5
        assert scores.map_at_k[4] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ranking_scores([], [], max_k=3)
        with pytest.raises(ValueError):
            ranking_scores([members([1])], [], max_k=3)


class TestAveragePrecisionRecallF1:
    def test_matches_manual(self):
        ranking = members([1], [9])
        relevant = np.array([1])
        ap, ar, af = average_precision_recall_f1(ranking, relevant, k=2)
        # P(1)=1, P(2)=1/2 -> AP=0.75 ; R(1)=R(2)=1 -> AR=1
        assert ap == pytest.approx(0.75)
        assert ar == pytest.approx(1.0)
        assert af == pytest.approx(2 * 0.75 / 1.75)

    def test_zero_case(self):
        ranking = members([9])
        ap, ar, af = average_precision_recall_f1(ranking, np.array([1]), k=1)
        assert (ap, ar, af) == (0.0, 0.0, 0.0)

"""Tests for trace spans: nesting, propagation headers, sinks, tree views."""

import pytest

from repro import obs
from repro.obs.trace import _NULL_SPAN, NullSpanSink, SpanSink


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_telemetry()
    yield
    obs.disable_telemetry()


class TestDisabledPath:
    def test_span_is_shared_noop(self):
        first = obs.span("a")
        second = obs.span("b", tags={"x": 1})
        assert first is _NULL_SPAN
        assert first is second
        with first as sp:
            sp.set_tag("k", "v")
            sp.set_error("nope")
            assert obs.current_header() is None
        assert obs.get_sink().export() == []

    def test_remote_span_without_header_is_noop_even_enabled(self):
        obs.enable_tracing()
        assert obs.remote_span("w", None) is _NULL_SPAN


class TestNesting:
    def test_children_parent_automatically(self):
        sink = obs.enable_tracing()
        sink.clear()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        records = sink.export()
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["duration"] >= 0.0

    def test_sibling_roots_get_distinct_traces(self):
        sink = obs.enable_tracing()
        sink.clear()
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        a, b = sink.export()
        assert a["trace_id"] != b["trace_id"]

    def test_exception_marks_error_and_still_records(self):
        sink = obs.enable_tracing()
        sink.clear()
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("kaput")
        (record,) = sink.export()
        assert record["status"] == "error"
        assert "kaput" in record["tags"]["error"]

    def test_tags_ride_the_record(self):
        sink = obs.enable_tracing()
        sink.clear()
        with obs.span("tagged", tags={"shard": 3}) as sp:
            sp.set_tag("outcome", "live")
        (record,) = sink.export()
        assert record["tags"] == {"shard": 3, "outcome": "live"}


class TestPropagation:
    def test_header_names_the_innermost_span(self):
        obs.enable_tracing()
        assert obs.current_header() is None
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                header = obs.current_header()
                assert header == {
                    "trace_id": outer.trace_id, "span_id": inner.span_id,
                }

    def test_remote_span_chains_across_the_header(self):
        sink = obs.enable_tracing()
        sink.clear()
        with obs.span("coordinator") as coordinator:
            header = obs.current_header()
        # simulate the far side of a process boundary
        with obs.remote_span("worker", header, tags={"worker": 0}) as worker:
            assert worker.trace_id == coordinator.trace_id
            assert worker.parent_id == coordinator.span_id
        trees = sink.trees(trace_id=coordinator.trace_id)
        assert len(trees) == 1
        assert [c["span"]["name"] for c in trees[0]["children"]] == ["worker"]


class TestSink:
    def test_ring_buffer_evicts_oldest(self):
        sink = SpanSink(capacity=3)
        for i in range(5):
            sink.record({"span_id": str(i), "trace_id": "t", "parent_id": None,
                         "start": float(i), "name": f"s{i}"})
        assert [r["span_id"] for r in sink.export()] == ["2", "3", "4"]
        assert len(sink) == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            SpanSink(capacity=0)

    def test_drain_empties(self):
        sink = SpanSink()
        sink.record({"span_id": "a", "trace_id": "t", "parent_id": None,
                     "start": 0.0, "name": "s"})
        assert len(sink.drain()) == 1
        assert sink.export() == []

    def test_ingest_folds_remote_records_in(self):
        sink = SpanSink()
        sink.ingest([{"span_id": "w", "trace_id": "t", "parent_id": None,
                      "start": 0.0, "name": "remote"}])
        assert sink.export()[0]["name"] == "remote"

    def test_null_sink_reports_empty(self):
        sink = NullSpanSink()
        sink.record({"span_id": "x"})
        sink.ingest([{"span_id": "y"}])
        assert sink.export() == []
        assert sink.drain() == []
        assert sink.trees() == []
        assert len(sink) == 0


def _record(span_id, parent_id, start, name="s", trace_id="t", status="ok"):
    return {
        "span_id": span_id, "parent_id": parent_id, "trace_id": trace_id,
        "start": start, "name": name, "duration": 0.001, "status": status,
        "pid": 1, "tags": {},
    }


class TestTrees:
    def test_orphans_surface_as_roots(self):
        records = [
            _record("a", None, 0.0, "root"),
            _record("b", "a", 1.0, "child"),
            _record("c", "gone", 2.0, "orphan"),  # parent fell off the ring
        ]
        roots = obs.span_trees(records)
        assert [r["span"]["name"] for r in roots] == ["root", "orphan"]
        assert roots[0]["children"][0]["span"]["name"] == "child"

    def test_children_sorted_by_start(self):
        records = [
            _record("a", None, 0.0),
            _record("late", "a", 5.0, "late"),
            _record("early", "a", 1.0, "early"),
        ]
        (root,) = obs.span_trees(records)
        assert [c["span"]["name"] for c in root["children"]] == ["early", "late"]

    def test_trace_id_filter(self):
        records = [
            _record("a", None, 0.0, trace_id="one"),
            _record("b", None, 0.0, trace_id="two"),
        ]
        assert len(obs.span_trees(records)) == 2
        assert len(obs.span_trees(records, trace_id="one")) == 1

    def test_render_tree_marks_errors_and_indents(self):
        records = [
            _record("a", None, 0.0, "root"),
            _record("b", "a", 1.0, "bad", status="error"),
        ]
        (root,) = obs.span_trees(records)
        lines = list(obs.render_tree(root))
        assert "root" in lines[0]
        assert lines[1].startswith("  !")
        assert "bad" in lines[1]


class TestSinkEdgeCases:
    """Ring-buffer behaviour at the margins: evicted parents, interleaved
    writers, drain racing record."""

    def test_evicted_parent_orphans_its_children_into_roots(self):
        sink = SpanSink(capacity=2)
        sink.record(_record("parent", None, 0.0, "parent"))
        sink.record(_record("child1", "parent", 1.0, "child1"))
        sink.record(_record("child2", "parent", 2.0, "child2"))
        # the parent fell off the ring: both children surface as roots
        assert [r["span_id"] for r in sink.export()] == ["child1", "child2"]
        roots = sink.trees()
        assert [r["span"]["name"] for r in roots] == ["child1", "child2"]
        assert all(not r["children"] for r in roots)

    def test_eviction_order_is_arrival_not_start_time(self):
        sink = SpanSink(capacity=2)
        # arrival order deliberately disagrees with start-time order
        sink.record(_record("late", None, 9.0))
        sink.record(_record("early", None, 1.0))
        sink.record(_record("mid", None, 5.0))
        # "late" arrived first, so it is the one evicted
        assert [r["span_id"] for r in sink.export()] == ["early", "mid"]

    def test_ingest_respects_the_same_ring_bound(self):
        sink = SpanSink(capacity=3)
        sink.record(_record("own", None, 0.0))
        sink.ingest([_record(f"r{i}", None, float(i)) for i in range(5)])
        assert [r["span_id"] for r in sink.export()] == ["r2", "r3", "r4"]

    def test_drain_racing_record_loses_no_spans(self):
        import threading

        sink = SpanSink(capacity=100_000)
        n_per_writer, n_writers = 200, 4
        start = threading.Barrier(n_writers + 1)
        drained: list[dict] = []

        def write(writer: int) -> None:
            start.wait()
            for i in range(n_per_writer):
                sink.record(_record(f"w{writer}-{i}", None, float(i)))

        writers = [
            threading.Thread(target=write, args=(w,))
            for w in range(n_writers)
        ]
        for thread in writers:
            thread.start()
        start.wait()
        for _ in range(50):  # drain while the writers are mid-flight
            drained.extend(sink.drain())
        for thread in writers:
            thread.join()
        drained.extend(sink.drain())
        # every span lands exactly once: in some drain, never duplicated
        ids = [r["span_id"] for r in drained]
        assert len(ids) == n_per_writer * n_writers
        assert len(set(ids)) == len(ids)
        assert sink.export() == []

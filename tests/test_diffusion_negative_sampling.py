"""Tests for negative-link sampling."""

import numpy as np
import pytest

from repro.diffusion import (
    sample_negative_diffusion_pairs,
    sample_negative_friendship_pairs,
)
from repro.diffusion.negative_sampling import build_word_document_index


class TestDiffusionNegatives:
    def test_count_and_novelty(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        negatives = sample_negative_diffusion_pairs(graph, 50, rng)
        assert len(negatives) == 50
        observed = graph.diffusion_pairs()
        assert all((i, j) not in observed for i, j, _t in negatives)

    def test_no_same_user_pairs(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        doc_user = graph.document_user_array()
        negatives = sample_negative_diffusion_pairs(graph, 50, rng)
        assert all(doc_user[i] != doc_user[j] for i, j, _t in negatives)

    def test_no_duplicates(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        negatives = sample_negative_diffusion_pairs(graph, 60, rng)
        assert len({(i, j) for i, j, _ in negatives}) == 60

    def test_uniform_timestamps_in_range(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        max_time = max(doc.timestamp for doc in graph.documents)
        negatives = sample_negative_diffusion_pairs(graph, 40, rng)
        assert all(0 <= t <= max_time for _i, _j, t in negatives)

    def test_source_timestamp_mode(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        negatives = sample_negative_diffusion_pairs(
            graph, 40, rng, timestamp_mode="source"
        )
        assert all(graph.documents[i].timestamp == t for i, _j, t in negatives)

    def test_hard_negatives_share_words(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        negatives = sample_negative_diffusion_pairs(graph, 60, rng, hard_fraction=1.0)
        for i, j, _t in negatives:
            words_i = set(graph.documents[i].words.tolist())
            words_j = set(graph.documents[j].words.tolist())
            assert words_i & words_j

    def test_exclude_respected(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        first = sample_negative_diffusion_pairs(graph, 30, rng)
        exclude = {(i, j) for i, j, _ in first}
        second = sample_negative_diffusion_pairs(graph, 30, rng, exclude=exclude)
        assert not exclude & {(i, j) for i, j, _ in second}

    def test_bad_parameters(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        with pytest.raises(ValueError):
            sample_negative_diffusion_pairs(graph, 5, rng, hard_fraction=1.5)
        with pytest.raises(ValueError):
            sample_negative_diffusion_pairs(graph, 5, rng, timestamp_mode="weird")

    def test_allow_fewer(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        huge = graph.n_documents**2
        negatives = sample_negative_diffusion_pairs(graph, huge, rng, allow_fewer=True)
        assert 0 < len(negatives) < huge


class TestWordIndex:
    def test_index_covers_documents(self, twitter_tiny):
        graph, _ = twitter_tiny
        index = build_word_document_index(graph)
        doc = graph.documents[0]
        for word in set(doc.words.tolist()):
            assert doc.doc_id in index[word].tolist()


class TestFriendshipNegatives:
    def test_count_and_novelty(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        negatives = sample_negative_friendship_pairs(graph, 50, rng)
        assert len(negatives) == 50
        observed = graph.friendship_pairs()
        assert all(pair not in observed for pair in negatives)

    def test_no_self_pairs(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        negatives = sample_negative_friendship_pairs(graph, 50, rng)
        assert all(u != v for u, v in negatives)

    def test_deterministic_with_seed(self, twitter_tiny):
        graph, _ = twitter_tiny
        a = sample_negative_friendship_pairs(graph, 20, 9)
        b = sample_negative_friendship_pairs(graph, 20, 9)
        assert a == b

"""End-to-end integration tests across the whole library.

These exercise the realistic pipelines a downstream user runs: build a
graph from raw text, fit CPD, use all three applications, compare against
a baseline, and round-trip artifacts through serialisation.
"""

import numpy as np
import pytest

from repro import (
    CPDConfig,
    CPDModel,
    CommunityRanker,
    DiffusionPredictor,
    SocialGraphBuilder,
    fit_cpd,
)
from repro.apps import build_diffusion_graph, community_labels, to_json
from repro.baselines import COLDAgg, CPDVariant
from repro.evaluation import (
    content_perplexity,
    diffusion_auc_folds,
    friendship_auc_folds,
    paired_one_tailed_ttest,
    select_queries,
)
from repro.text import Preprocessor


class TestRawTextPipeline:
    """From raw strings to fitted profiles — the builder + text substrate."""

    def test_full_pipeline_from_text(self):
        builder = SocialGraphBuilder(preprocessor=Preprocessor(), name="raw-demo")
        authors = {}
        corpus = {
            "alice": [
                "Deep learning networks for image recognition #ai",
                "Training deep neural networks efficiently #ai",
            ],
            "bob": [
                "Database query optimization techniques",
                "Indexing structures for database systems",
            ],
            "carol": [
                "Deep networks applied to databases #ai",
                "Neural query optimizers for modern databases",
            ],
        }
        for name, texts in corpus.items():
            authors[name] = builder.add_user(key=name, name=name)
            for index, text in enumerate(texts):
                builder.add_document(authors[name], text, timestamp=index, key=(name, index))
        builder.add_friendship(authors["alice"], authors["carol"])
        builder.add_friendship(authors["bob"], authors["carol"])
        builder.add_diffusion(builder.doc_id(("carol", 0)), builder.doc_id(("alice", 0)))
        builder.add_diffusion(builder.doc_id(("carol", 1)), builder.doc_id(("bob", 1)))
        graph = builder.build()

        result = fit_cpd(
            graph, n_communities=2, n_topics=2, n_iterations=10, rng=0,
            rho=0.5, alpha=0.5,
        )
        assert result.pi.shape == (3, 2)
        # the profiles must explain the corpus better than a uniform model
        uniform_perplexity = graph.n_words
        fitted = content_perplexity(graph, result.pi, result.theta, result.phi)
        assert fitted < uniform_perplexity


class TestApplicationsTogether:
    def test_all_three_applications_run(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        # application 1: community-aware diffusion
        predictor = DiffusionPredictor(fitted_cpd, graph)
        probability = predictor.predict(source_user=1, target_doc=0, timestamp=2)
        assert 0.0 <= probability <= 1.0
        # application 2: profile-driven ranking
        queries = select_queries(graph, min_frequency=2, hashtags_only=True)
        ranker = CommunityRanker(fitted_cpd, graph)
        ranked = ranker.rank(queries[0].term)
        assert len(ranked) == fitted_cpd.n_communities
        # application 3: visualization
        labels = community_labels(fitted_cpd, graph.vocabulary)
        diffusion_graph = build_diffusion_graph(fitted_cpd, labels=labels)
        payload = to_json(diffusion_graph)
        assert "nodes" in payload

    def test_predictions_scored_by_protocol(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        predictor = DiffusionPredictor(fitted_cpd, graph)
        diffusion = diffusion_auc_folds(graph, predictor.score_pairs, rng=0)
        pi = fitted_cpd.pi
        friendship = friendship_auc_folds(
            graph, lambda u, v: np.einsum("ij,ij->i", pi[u], pi[v]), rng=0
        )
        assert diffusion.mean > 0.55
        assert friendship.mean > 0.55


class TestJointBeatsAggregationOnPerplexity:
    """The Fig. 8 claim at test scale: joint profiling explains content far
    better than detect-then-aggregate."""

    def test_perplexity_gap(self, twitter_tiny, fitted_cpd):
        graph, _ = twitter_tiny
        baseline = COLDAgg(4, 8, n_iterations=6, rho=0.5, alpha=0.5).fit(graph, rng=0)
        profiles = baseline.profiles()
        agg_perplexity = content_perplexity(
            graph, baseline.memberships(), profiles.theta, profiles.phi
        )
        cpd_perplexity = content_perplexity(
            graph, fitted_cpd.pi, fitted_cpd.theta, fitted_cpd.phi
        )
        assert cpd_perplexity < agg_perplexity


class TestSignificanceWorkflow:
    def test_fold_pairing(self, twitter_tiny, fitted_cpd):
        graph, _ = twitter_tiny
        predictor = DiffusionPredictor(fitted_cpd, graph)
        ours = diffusion_auc_folds(graph, predictor.score_pairs, rng=1)
        chance = diffusion_auc_folds(
            graph, lambda s, t, ts: np.ones(len(s)), rng=1
        )
        result = paired_one_tailed_ttest(ours.fold_scores, chance.fold_scores)
        assert result.mean_difference > 0

    def test_model_with_more_iterations_not_worse(self, twitter_tiny):
        """Sanity: longer EM should not collapse the fit."""
        graph, truth = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=2, rho=0.5, alpha=0.5)
        short = CPDModel(config, rng=3).fit(graph)
        longer = CPDModel(config.with_overrides(n_iterations=15), rng=3).fit(graph)
        short_perp = content_perplexity(graph, short.pi, short.theta, short.phi)
        long_perp = content_perplexity(graph, longer.pi, longer.theta, longer.phi)
        assert long_perp < short_perp * 1.1

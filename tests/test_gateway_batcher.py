"""Micro-batching: concurrent rank calls coalesce into one fused pass."""

import asyncio

import pytest

from repro.gateway import RankBatcher


class RecordingRunner:
    """A batch runner that records every batch it receives."""

    def __init__(self, results=None, error=None):
        self.calls: list[list[str]] = []
        self.results = results or {}
        self.error = error

    async def __call__(self, queries):
        self.calls.append(list(queries))
        if self.error is not None:
            raise self.error
        return [self.results.get(q, f"rank:{q}") for q in queries]


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_calls_share_one_runner_invocation(self):
        async def body():
            runner = RecordingRunner()
            batcher = RankBatcher(runner, window=0.005)
            results = await asyncio.gather(
                batcher.rank("a"), batcher.rank("b"), batcher.rank("c")
            )
            assert results == ["rank:a", "rank:b", "rank:c"]
            assert len(runner.calls) == 1
            assert sorted(runner.calls[0]) == ["a", "b", "c"]
            assert batcher.stats()["batches"] == 1
            assert batcher.stats()["largest_batch"] == 3

        run(body())

    def test_identical_queries_deduplicate(self):
        async def body():
            runner = RecordingRunner()
            batcher = RankBatcher(runner, window=0.005)
            results = await asyncio.gather(
                batcher.rank("a"), batcher.rank("a"), batcher.rank("a")
            )
            assert results == ["rank:a"] * 3
            assert runner.calls == [["a"]]  # one backend pass for three callers
            assert batcher.stats()["batched_queries"] == 3

        run(body())

    def test_full_batch_flushes_without_waiting_for_the_window(self):
        async def body():
            runner = RecordingRunner()
            # a window long enough that only the max_batch flush explains
            # the batch completing quickly
            batcher = RankBatcher(runner, window=30.0, max_batch=2)
            results = await asyncio.wait_for(
                asyncio.gather(batcher.rank("a"), batcher.rank("b")),
                timeout=5,
            )
            assert results == ["rank:a", "rank:b"]
            assert len(runner.calls) == 1

        run(body())

    def test_sequential_calls_each_get_their_own_batch(self):
        async def body():
            runner = RecordingRunner()
            batcher = RankBatcher(runner, window=0.0)
            assert await batcher.rank("a") == "rank:a"
            assert await batcher.rank("b") == "rank:b"
            assert runner.calls == [["a"], ["b"]]

        run(body())


class TestFailureIsolation:
    def test_per_query_exception_fails_only_its_own_callers(self):
        async def body():
            runner = RecordingRunner(
                results={"bad": KeyError("bad is not a word")}
            )
            batcher = RankBatcher(runner, window=0.005)
            good, bad = await asyncio.gather(
                batcher.rank("good"),
                batcher.rank("bad"),
                return_exceptions=True,
            )
            assert good == "rank:good"
            assert isinstance(bad, KeyError)

        run(body())

    def test_runner_crash_fails_the_whole_batch(self):
        async def body():
            runner = RecordingRunner(error=RuntimeError("backend died"))
            batcher = RankBatcher(runner, window=0.005)
            results = await asyncio.gather(
                batcher.rank("a"), batcher.rank("b"), return_exceptions=True
            )
            assert all(isinstance(r, RuntimeError) for r in results)

        run(body())

    def test_length_mismatch_is_a_loud_error(self):
        async def body():
            async def short_runner(queries):
                return ["only-one"]

            batcher = RankBatcher(short_runner, window=0.005)
            results = await asyncio.gather(
                batcher.rank("a"), batcher.rank("b"), return_exceptions=True
            )
            assert all(isinstance(r, RuntimeError) for r in results)
            assert "2 queries" in str(results[0])

        run(body())


class TestDrain:
    def test_drain_flushes_pending_queries(self):
        async def body():
            runner = RecordingRunner()
            batcher = RankBatcher(runner, window=60.0)
            task = asyncio.create_task(batcher.rank("a"))
            await asyncio.sleep(0)
            await batcher.drain()
            assert await asyncio.wait_for(task, timeout=5) == "rank:a"

        run(body())


class TestValidation:
    def test_bad_parameters_rejected(self):
        async def noop(queries):
            return list(queries)

        with pytest.raises(ValueError, match="max_batch"):
            RankBatcher(noop, max_batch=0)
        with pytest.raises(ValueError, match="window"):
            RankBatcher(noop, window=-0.1)

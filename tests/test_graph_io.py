"""Tests for social-graph JSON round-trips."""

import numpy as np
import pytest

from repro.datasets import twitter_scenario
from repro.graph import graph_from_dict, graph_to_dict, load_graph, save_graph


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, twitter_tiny):
        graph, _ = twitter_tiny
        clone = graph_from_dict(graph_to_dict(graph))
        assert clone.n_users == graph.n_users
        assert clone.n_documents == graph.n_documents
        assert clone.n_friendship_links == graph.n_friendship_links
        assert clone.n_diffusion_links == graph.n_diffusion_links
        assert clone.stats().as_row() == graph.stats().as_row()
        np.testing.assert_array_equal(
            clone.documents[3].words, graph.documents[3].words
        )
        assert clone.documents[3].timestamp == graph.documents[3].timestamp

    def test_file_roundtrip(self, tmp_path, twitter_tiny):
        graph, _ = twitter_tiny
        path = tmp_path / "graph.json"
        save_graph(graph, path)
        clone = load_graph(path)
        assert clone.stats().as_row() == graph.stats().as_row()
        assert clone.name == graph.name

    def test_gzip_roundtrip(self, tmp_path, twitter_tiny):
        graph, _ = twitter_tiny
        path = tmp_path / "graph.json.gz"
        save_graph(graph, path)
        clone = load_graph(path)
        assert clone.stats().as_row() == graph.stats().as_row()

    def test_gzip_smaller_than_plain(self, tmp_path, twitter_tiny):
        graph, _ = twitter_tiny
        plain = tmp_path / "g.json"
        zipped = tmp_path / "g.json.gz"
        save_graph(graph, plain)
        save_graph(graph, zipped)
        assert zipped.stat().st_size < plain.stat().st_size

    def test_unknown_version_rejected(self, twitter_tiny):
        graph, _ = twitter_tiny
        payload = graph_to_dict(graph)
        payload["format_version"] = 999
        with pytest.raises(ValueError):
            graph_from_dict(payload)

    def test_adjacency_rebuilt(self, twitter_tiny):
        graph, _ = twitter_tiny
        clone = graph_from_dict(graph_to_dict(graph))
        for user in range(min(5, graph.n_users)):
            assert clone.friendship_neighbors(user) == graph.friendship_neighbors(user)

"""Tests for the shared-memory state plane: attach semantics and hygiene.

The hygiene contract (ISSUE 4): runner ``close()`` / ``__exit__`` —
including under a raised exception — unlinks every shared-memory segment:
no leaked ``/dev/shm`` blocks and no ``resource_tracker`` warnings.
"""

import gc
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import CPDConfig, DiffusionParameters
from repro.core.gibbs import CPDSampler
from repro.core.layout import CorpusLayout
from repro.parallel import ParallelEStepRunner, SharedStatePlane

SHM_DIR = "/dev/shm"


def _plane_segments() -> set:
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux fallback
        return set()
    return {name for name in os.listdir(SHM_DIR) if "repro-plane" in name}


@pytest.fixture(scope="module")
def plane_setup(twitter_tiny):
    graph, _ = twitter_tiny
    config = CPDConfig(n_communities=4, n_topics=8, n_iterations=3, rho=0.5, alpha=0.5)
    sampler = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=0)
    return graph, config, sampler, CorpusLayout.from_sampler(sampler)


def _make_plane(config, sampler, layout, n_workers=2):
    return SharedStatePlane(
        layout,
        config,
        n_workers=n_workers,
        n_time_buckets=sampler.popularity.n_time_buckets,
        n_features=len(sampler.params.nu),
    )


class TestSharedStatePlane:
    def test_layout_round_trip(self, plane_setup):
        _, config, sampler, layout = plane_setup
        plane = _make_plane(config, sampler, layout)
        try:
            shared = plane.corpus_layout()
            for name, source in layout.arrays().items():
                np.testing.assert_array_equal(getattr(shared, name), source)
            assert shared.n_docs == layout.n_docs
        finally:
            plane.close()

    def test_attach_sees_mutations(self, plane_setup):
        _, config, sampler, layout = plane_setup
        plane = _make_plane(config, sampler, layout)
        attached = None
        try:
            attached = SharedStatePlane.attach(plane.spec)
            plane.state["doc_community"][:5] = np.arange(5)
            np.testing.assert_array_equal(
                attached.state["doc_community"][:5], np.arange(5)
            )
            attached.state["lambdas"][:] = 0.5
            assert plane.state["lambdas"][0] == 0.5
        finally:
            if attached is not None:
                attached.close()
            plane.close()

    def test_close_unlinks_and_is_idempotent(self, plane_setup):
        _, config, sampler, layout = plane_setup
        before = _plane_segments()
        plane = _make_plane(config, sampler, layout)
        assert _plane_segments() - before == set(plane.block_names)
        plane.close()
        plane.close()
        assert plane.closed
        assert _plane_segments() == before

    def test_context_manager_unlinks_on_exception(self, plane_setup):
        _, config, sampler, layout = plane_setup
        before = _plane_segments()
        with pytest.raises(RuntimeError):
            with _make_plane(config, sampler, layout):
                raise RuntimeError("boom")
        assert _plane_segments() == before

    def test_garbage_collection_unlinks(self, plane_setup):
        """The finalizer safety net unlinks even without an explicit close."""
        _, config, sampler, layout = plane_setup
        before = _plane_segments()
        plane = _make_plane(config, sampler, layout)
        names = set(plane.block_names)
        assert _plane_segments() - before == names
        del plane
        gc.collect()
        assert _plane_segments() == before


class TestRunnerHygiene:
    def test_close_unlinks_segments_and_stops_workers(self, twitter_tiny):
        graph, _ = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=2, rho=0.5, alpha=0.5)
        before = _plane_segments()
        runner = ParallelEStepRunner(graph, config, n_workers=2, rng=0)
        processes = list(runner._processes)
        assert _plane_segments() != before
        runner.close()
        runner.close()  # idempotent
        assert _plane_segments() == before
        assert all(not process.is_alive() for process in processes)

    def test_exit_under_exception_unlinks(self, twitter_tiny):
        graph, _ = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=2, rho=0.5, alpha=0.5)
        before = _plane_segments()
        with pytest.raises(RuntimeError):
            with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
                sampler = CPDSampler(
                    graph, config, DiffusionParameters.initial(4, 8), rng=1
                )
                runner(sampler)
                raise RuntimeError("mid-fit failure")
        assert _plane_segments() == before

    def test_sampler_survives_runner_close(self, twitter_tiny):
        """Un-adoption: the fitted sampler stays usable after the plane dies."""
        graph, _ = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=2, rho=0.5, alpha=0.5)
        sampler = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=1)
        with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:
            runner(sampler)
        sampler.state.check_consistency()  # reads every adopted array
        sampler.sweep_documents(np.arange(10))  # mutations still work
        sampler.state.check_consistency()

    def test_no_resource_tracker_warnings(self, tmp_path):
        """A full parallel fit in a fresh interpreter leaves stderr clean."""
        script = (
            "from repro.core import CPDConfig, CPDModel, FitOptions\n"
            "from repro.datasets import twitter_scenario\n"
            "from repro.parallel import ParallelEStepRunner\n"
            "graph, _ = twitter_scenario('tiny', rng=0)\n"
            "config = CPDConfig(n_communities=3, n_topics=4, n_iterations=2,\n"
            "                   rho=0.5, alpha=0.5)\n"
            "with ParallelEStepRunner(graph, config, n_workers=2, rng=0) as runner:\n"
            "    CPDModel(config, rng=0).fit(graph, FitOptions(document_sweeper=runner))\n"
            "print('done')\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "done" in result.stdout
        assert "resource_tracker" not in result.stderr
        assert "leaked" not in result.stderr

"""Tests for the command-line interface (full offline workflow)."""

import io

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """Generate a graph and fit a model once for all CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    graph_path = root / "graph.json.gz"
    model_path = root / "model.cpd.npz"
    assert main([
        "generate", "--scenario", "twitter", "--scale", "tiny",
        "--seed", "42", "--out", str(graph_path),
    ]) == 0
    assert main([
        "fit", "--graph", str(graph_path), "--communities", "4",
        "--topics", "8", "--iterations", "6", "--seed", "0",
        "--out", str(model_path),
    ]) == 0
    return root, graph_path, model_path


class TestGenerate:
    def test_graph_file_created(self, workspace):
        _root, graph_path, _model = workspace
        assert graph_path.exists()
        from repro.graph import load_graph

        graph = load_graph(graph_path)
        assert graph.n_users > 0

    def test_dblp_scenario(self, tmp_path):
        out = tmp_path / "dblp.json"
        assert main([
            "generate", "--scenario", "dblp", "--scale", "tiny",
            "--seed", "1", "--out", str(out),
        ]) == 0
        assert out.exists()


class TestFit:
    def test_model_file_created(self, workspace):
        _root, _graph, model_path = workspace
        assert model_path.exists()
        from repro.core import load_result

        result = load_result(model_path)
        assert result.n_communities == 4

    def test_parallel_workers(self, workspace, tmp_path, capsys):
        """--workers drives the fit through the shared-memory runner."""
        _root, graph_path, _model = workspace
        out = tmp_path / "parallel.cpd.npz"
        assert main([
            "fit", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "2", "--seed", "0",
            "--workers", "2", "--out", str(out),
        ]) == 0
        assert "parallel E-step: 2 workers" in capsys.readouterr().out
        assert out.exists()

    @pytest.mark.filterwarnings("ignore:compiled sweep kernel unavailable")
    def test_sweep_kernel_flag(self, workspace, tmp_path, capsys):
        """--sweep-kernel selects the backend and the banner names it —
        including the fallback arrow when no C toolchain exists."""
        _root, graph_path, _model = workspace
        out = tmp_path / "compiled.cpd.npz"
        assert main([
            "fit", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "2", "--seed", "0",
            "--sweep-kernel", "compiled", "--out", str(out),
        ]) == 0
        banner = capsys.readouterr().out
        assert (
            "sweep kernel: compiled\n" in banner
            or "sweep kernel: compiled -> vectorized (" in banner
        )
        assert out.exists()
        # the choice round-trips through the artifact into `repro info`
        assert main(["info", "--model", str(out)]) == 0
        assert "sweep kernel    : compiled" in capsys.readouterr().out

    def test_sweep_kernel_matches_default_results(self, workspace, tmp_path, capsys):
        """An explicit --sweep-kernel vectorized equals the default fit."""
        _root, graph_path, _model = workspace
        explicit = tmp_path / "explicit.cpd.npz"
        assert main([
            "fit", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "6", "--seed", "0",
            "--sweep-kernel", "vectorized", "--out", str(explicit),
        ]) == 0
        assert "sweep kernel: vectorized" in capsys.readouterr().out
        from repro.core import load_result
        import numpy as np

        baseline = load_result(workspace[2])
        result = load_result(explicit)
        np.testing.assert_array_equal(
            baseline.doc_community, result.doc_community
        )

    def test_invalid_sweep_kernel_rejected(self, workspace, capsys):
        _root, graph_path, _model = workspace
        with pytest.raises(SystemExit):
            main([
                "fit", "--graph", str(graph_path), "--communities", "4",
                "--topics", "8", "--sweep-kernel", "turbo", "--out", "/tmp/x.npz",
            ])
        assert "invalid choice" in capsys.readouterr().err


class TestEvaluate:
    def test_prints_metrics(self, workspace, capsys):
        _root, graph_path, model_path = workspace
        assert main([
            "evaluate", "--graph", str(graph_path), "--model", str(model_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "diffusion link AUC" in out
        assert "perplexity" in out


class TestRank:
    def test_known_query(self, workspace, capsys):
        _root, graph_path, model_path = workspace
        from repro.evaluation import select_queries
        from repro.graph import load_graph

        graph = load_graph(graph_path)
        queries = select_queries(graph, min_frequency=1, hashtags_only=True)
        assert main([
            "rank", "--graph", str(graph_path), "--model", str(model_path),
            "--query", queries[0].term, "--top", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "#1" in out

    def test_rank_without_graph(self, workspace, capsys):
        """v2 artifacts are self-contained: rank needs no --graph."""
        _root, _graph, model_path = workspace
        from repro.core import load_artifact
        from repro.serving import ProfileStore

        store = ProfileStore.from_artifact_bundle(load_artifact(model_path))
        term = store.indexed_queries(1)[0].term
        assert main(["rank", "--model", str(model_path), "--query", term]) == 0
        assert "#1" in capsys.readouterr().out

    def test_unknown_query_fails_cleanly(self, workspace):
        _root, graph_path, model_path = workspace
        assert main([
            "rank", "--graph", str(graph_path), "--model", str(model_path),
            "--query", "zz-not-a-term",
        ]) == 1


class TestQuery:
    def test_serves_indexed_queries_by_default(self, workspace, capsys):
        _root, _graph, model_path = workspace
        assert main(["query", "--model", str(model_path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "diffusing docs" in out
        assert "c0" in out

    def test_explicit_terms(self, workspace, capsys):
        _root, _graph, model_path = workspace
        from repro.core import load_artifact
        from repro.serving import ProfileStore

        store = ProfileStore.from_artifact_bundle(load_artifact(model_path))
        term = store.indexed_queries(1)[0].term
        assert main(["query", "--model", str(model_path), "--query", term]) == 0
        assert term in capsys.readouterr().out

    def test_unknown_term_reports_failure(self, workspace, capsys):
        _root, _graph, model_path = workspace
        assert main([
            "query", "--model", str(model_path), "--query", "zz-not-a-term",
        ]) == 1
        assert "not in the fitted vocabulary" in capsys.readouterr().out

    def test_v1_artifact_requires_graph(self, workspace, tmp_path, capsys):
        """A v1 (not self-contained) artifact must fail with guidance."""
        import json
        import zipfile

        _root, _graph, model_path = workspace
        with zipfile.ZipFile(model_path) as archive:
            meta = json.loads(archive.read("cpd_meta.json"))
            arrays = archive.read("arrays.npz")
        meta["format_version"] = 1
        legacy = tmp_path / "legacy.cpd.npz"
        with zipfile.ZipFile(legacy, "w") as archive:
            archive.writestr("arrays.npz", arrays)
            archive.writestr("cpd_meta.json", json.dumps(meta))
        assert main(["query", "--model", str(legacy), "--query", "x"]) == 1
        assert "pass --graph" in capsys.readouterr().out

    def test_partial_v2_artifact_fails_cleanly(self, workspace, tmp_path, capsys):
        """A vocabulary-only v2 artifact (no summary) gets the friendly error."""
        from repro.core import load_artifact, save_result

        _root, _graph, model_path = workspace
        artifact = load_artifact(model_path)
        partial = tmp_path / "partial.cpd.npz"
        save_result(artifact.result, partial, vocabulary=artifact.vocabulary)
        assert main(["query", "--model", str(partial)]) == 1
        assert "pass --graph" in capsys.readouterr().out


class TestServeBench:
    def test_records_cold_and_warm_throughput(self, workspace, tmp_path, capsys):
        import json

        _root, _graph, model_path = workspace
        out_path = tmp_path / "BENCH_serving_cli.json"
        assert main([
            "serve-bench", "--model", str(model_path),
            "--repeats", "3", "--max-queries", "4", "--json", str(out_path),
        ]) == 0
        text = capsys.readouterr().out
        assert "cold:" in text and "warm:" in text
        payload = json.loads(out_path.read_text())
        assert payload["cold_queries_per_second"] > 0
        assert payload["warm_queries_per_second"] > 0
        assert payload["cache"]["hits"] > 0


class TestReport:
    def test_markdown_written(self, workspace):
        root, graph_path, model_path = workspace
        report_path = root / "report.md"
        assert main([
            "report", "--graph", str(graph_path), "--model", str(model_path),
            "--out", str(report_path),
        ]) == 0
        text = report_path.read_text()
        assert text.startswith("# ")
        assert "## Communities" in text
        assert "openness" in text.lower()

    def test_report_without_graph(self, workspace, tmp_path):
        _root, _graph, model_path = workspace
        report_path = tmp_path / "served_report.md"
        assert main([
            "report", "--model", str(model_path), "--out", str(report_path),
        ]) == 0
        text = report_path.read_text()
        assert "## Communities" in text
        assert "## Query rankings" in text


class TestVisualize:
    def test_ascii_to_stdout(self, workspace, capsys):
        _root, graph_path, model_path = workspace
        assert main([
            "visualize", "--graph", str(graph_path), "--model", str(model_path),
        ]) == 0
        assert "community diffusion" in capsys.readouterr().out

    def test_ascii_without_graph(self, workspace, capsys):
        _root, _graph, model_path = workspace
        assert main(["visualize", "--model", str(model_path)]) == 0
        assert "community diffusion" in capsys.readouterr().out

    def test_dot_to_file(self, workspace):
        root, graph_path, model_path = workspace
        out = root / "view.dot"
        assert main([
            "visualize", "--graph", str(graph_path), "--model", str(model_path),
            "--format", "dot", "--out", str(out),
        ]) == 0
        assert out.read_text().startswith("digraph")

    def test_topic_specific_json(self, workspace):
        root, graph_path, model_path = workspace
        out = root / "view.json"
        assert main([
            "visualize", "--graph", str(graph_path), "--model", str(model_path),
            "--format", "json", "--topic", "0", "--out", str(out),
        ]) == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["topic"] == 0


class TestInfo:
    def test_prints_dims_and_payloads(self, workspace, capsys):
        _root, _graph, model_path = workspace
        assert main(["info", "--model", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "format version  : 3 (self-contained)" in out
        assert "4 communities" in out and "8 topics" in out
        assert "vocabulary      : embedded" in out
        assert "graph summary   : embedded" in out
        assert "stream cursor   : absent (offline fit)" in out

    def test_reports_stream_cursor(self, workspace, capsys):
        root, graph_path, _model = workspace
        snapshot = root / "stream_snapshot.cpd.npz"
        assert main([
            "stream-replay", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "4", "--batch-size", "32",
            "--refresh-every", "64", "--seed", "0", "--out", str(snapshot),
        ]) == 0
        capsys.readouterr()
        assert main(["info", "--model", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "stream cursor   :" in out
        assert "refreshes" in out


class TestStreamReplay:
    def test_replay_writes_a_servable_snapshot(self, workspace, capsys):
        root, graph_path, _model = workspace
        snapshot = root / "replay_snapshot.cpd.npz"
        assert main([
            "stream-replay", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "4", "--batch-size", "32",
            "--refresh-every", "64", "--seed", "1", "--out", str(snapshot),
        ]) == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "wrote v3 stream snapshot" in out
        from repro.graph import load_graph
        from repro.serving import ProfileStore

        graph = load_graph(graph_path)
        store = ProfileStore.from_artifact(snapshot)
        assert len(store.doc_user()) == graph.n_documents

    def test_parallel_workers_replay(self, workspace, capsys):
        """--workers runs the base fit and refreshes through the runner."""
        _root, graph_path, _model = workspace
        assert main([
            "stream-replay", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "2", "--batch-size", "32",
            "--refresh-every", "64", "--seed", "1", "--workers", "2",
        ]) == 0
        assert "events/sec" in capsys.readouterr().out

    def test_foldin_only_mode_runs_frozen(self, workspace, capsys):
        _root, graph_path, _model = workspace
        assert main([
            "stream-replay", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "4", "--no-refresh",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 refreshes" in out

    def test_no_refresh_with_out_is_rejected(self, workspace, capsys):
        root, graph_path, _model = workspace
        snapshot = root / "never_written.cpd.npz"
        assert main([
            "stream-replay", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "4", "--no-refresh",
            "--out", str(snapshot),
        ]) == 1
        assert "requires refresh mode" in capsys.readouterr().out
        assert not snapshot.exists()


class TestStreamBench:
    def test_records_both_modes(self, workspace, capsys, tmp_path):
        _root, graph_path, _model = workspace
        payload_path = tmp_path / "stream_bench.json"
        assert main([
            "stream-bench", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "3", "--batch-size", "32",
            "--refresh-every", "64", "--json", str(payload_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "foldin:" in out and "refresh:" in out
        import json

        payload = json.loads(payload_path.read_text())
        assert payload["foldin_events_per_second"] > 0
        assert payload["refresh_events_per_second"] > 0


@pytest.fixture(scope="module")
def shard_workspace(tmp_path_factory):
    """A separated-scenario graph, monolithic fit, and 2-shard fit."""
    root = tmp_path_factory.mktemp("shard-cli")
    graph_path = root / "parity.json.gz"
    mono_path = root / "mono.cpd.npz"
    shard_dir = root / "shards"
    assert main([
        "generate", "--scenario", "separated", "--scale", "tiny",
        "--seed", "5", "--out", str(graph_path),
    ]) == 0
    assert main([
        "fit", "--graph", str(graph_path), "--communities", "4",
        "--topics", "8", "--iterations", "12", "--seed", "1",
        "--out", str(mono_path),
    ]) == 0
    assert main([
        "shard-fit", "--graph", str(graph_path), "--shards", "2",
        "--communities", "4", "--topics", "8", "--iterations", "12",
        "--seed", "9", "--out-dir", str(shard_dir),
    ]) == 0
    return root, graph_path, mono_path, shard_dir / "manifest.shards.json"


class TestShardFit:
    def test_writes_artifacts_and_manifest(self, shard_workspace):
        _root, _graph, _mono, manifest_path = shard_workspace
        assert manifest_path.exists()
        assert (manifest_path.parent / "shard-0.cpd.npz").exists()
        assert (manifest_path.parent / "shard-1.cpd.npz").exists()
        from repro.core import load_shard_manifest

        manifest = load_shard_manifest(manifest_path)
        assert manifest.n_shards == 2
        assert manifest.alignment is not None

    def test_shard_artifacts_open_as_plain_stores(self, shard_workspace):
        """A shard artifact is a standard self-contained artifact."""
        _root, _graph, _mono, manifest_path = shard_workspace
        from repro.serving import ProfileStore

        store = ProfileStore.from_artifact(manifest_path.parent / "shard-0.cpd.npz")
        assert store.n_communities == 4


class TestShardQuery:
    def test_serves_union_of_indexed_queries(self, shard_workspace, capsys):
        _root, _graph, _mono, manifest_path = shard_workspace
        assert main(["shard-query", "--manifest", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "queries across 2 shards" in out

    def test_parity_against_monolithic_store(self, shard_workspace, capsys):
        """The CI bar: >=80% top-k agreement with the monolithic fit."""
        _root, _graph, mono_path, manifest_path = shard_workspace
        assert main([
            "shard-query", "--manifest", str(manifest_path),
            "--against", str(mono_path), "--min-agreement", "0.8",
        ]) == 0
        assert "agreement vs" in capsys.readouterr().out

    def test_unreachable_agreement_fails(self, shard_workspace, capsys):
        _root, _graph, mono_path, manifest_path = shard_workspace
        assert main([
            "shard-query", "--manifest", str(manifest_path),
            "--against", str(mono_path), "--min-agreement", "1.01",
        ]) == 1
        assert "below required" in capsys.readouterr().out

    def test_unknown_term_reports_failure(self, shard_workspace, capsys):
        _root, _graph, _mono, manifest_path = shard_workspace
        assert main([
            "shard-query", "--manifest", str(manifest_path),
            "--query", "zzzz-not-a-word",
        ]) == 1
        assert "not in the fitted vocabulary" in capsys.readouterr().out


class TestShardBench:
    def test_compares_monolithic_and_sharded(self, shard_workspace, capsys, tmp_path):
        _root, graph_path, _mono, _manifest = shard_workspace
        payload_path = tmp_path / "shard_bench.json"
        assert main([
            "shard-bench", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "3", "--shards", "1", "2",
            "--repeats", "2", "--json", str(payload_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "1 shard(s):" in out and "2 shard(s):" in out
        import json

        payload = json.loads(payload_path.read_text())
        assert [run["n_shards"] for run in payload["runs"]] == [1, 2]
        assert all(run["queries_per_second"] > 0 for run in payload["runs"])


class TestShardInfo:
    def test_info_on_manifest(self, shard_workspace, capsys):
        _root, _graph, _mono, manifest_path = shard_workspace
        assert main(["info", "--model", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "shard manifest" in out
        assert "2 shards" in out
        assert "spill set" in out
        assert "alignment" in out

    def test_info_reports_fit_trace_and_snapshot(self, workspace, capsys):
        _root, _graph, model_path = workspace
        assert main(["info", "--model", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "fit trace       : 6 EM iterations" in out


@pytest.fixture(scope="module")
def durable_workspace(workspace, tmp_path_factory):
    """One durable stream-replay: WAL plus snapshot generations on disk."""
    _root, graph_path, _model = workspace
    root = tmp_path_factory.mktemp("durable-cli")
    wal_path = root / "events.wal"
    snap_dir = root / "snaps"
    assert main([
        "stream-replay", "--graph", str(graph_path), "--communities", "4",
        "--topics", "8", "--iterations", "4", "--batch-size", "32",
        "--refresh-every", "64", "--seed", "3",
        "--wal", str(wal_path), "--snapshot-dir", str(snap_dir),
    ]) == 0
    return graph_path, wal_path, snap_dir


class TestDurableStreamReplay:
    def test_wal_and_generations_written(self, durable_workspace, capsys):
        _graph, wal_path, snap_dir = durable_workspace
        capsys.readouterr()
        assert wal_path.exists()
        from repro.resilience import SnapshotCatalog, scan_wal

        status = scan_wal(wal_path)
        assert not status.torn and status.n_events > 0
        generations = SnapshotCatalog(snap_dir).generations()
        assert len(generations) >= 1

    def test_recover_serves_from_the_cli_artifacts(self, durable_workspace):
        """What the CLI wrote is exactly what recover() needs."""
        from repro.resilience import recover

        _graph, wal_path, snap_dir = durable_workspace
        report = recover(snap_dir, wal_path=wal_path)
        assert report.generation >= 1
        assert report.store.rank(report.store.indexed_queries(1)[0].term)

    def test_no_refresh_with_snapshot_dir_is_rejected(self, workspace, capsys, tmp_path):
        _root, graph_path, _model = workspace
        assert main([
            "stream-replay", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "4", "--no-refresh",
            "--snapshot-dir", str(tmp_path / "never"),
        ]) == 1
        assert "requires refresh mode" in capsys.readouterr().out
        assert not (tmp_path / "never").exists()


class TestDoctor:
    def test_healthy_artifact_passes(self, workspace, capsys):
        _root, _graph, model_path = workspace
        assert main(["doctor", "--model", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "entries verified" in out
        assert "doctor: all checks passed" in out

    def test_damaged_artifact_fails(self, workspace, capsys, tmp_path):
        _root, _graph, model_path = workspace
        bad = tmp_path / "bad.cpd.npz"
        bad.write_bytes(model_path.read_bytes()[:120])
        assert main(["doctor", "--model", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out
        assert "doctor: PROBLEMS FOUND" in out

    def test_shard_manifest_reports_per_shard(self, shard_workspace, capsys):
        _root, _graph, _mono, manifest_path = shard_workspace
        assert main(["doctor", "--model", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "manifest" in out
        assert "shard artifact shard-0.cpd.npz: ok" in out
        assert "shard artifact shard-1.cpd.npz: ok" in out

    def test_durable_stream_state_checks_out(self, durable_workspace, capsys):
        _graph, wal_path, snap_dir = durable_workspace
        assert main([
            "doctor", "--snapshot-dir", str(snap_dir), "--wal", str(wal_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "ok (recovery candidate)" in out
        assert "recovery cursor:" in out
        assert "replay tail:" in out
        assert "doctor: all checks passed" in out

    def test_unrecoverable_snapshot_dir_fails(self, capsys, tmp_path):
        (tmp_path / "snapshot-000001.cpd.npz").write_bytes(b"garbage")
        assert main(["doctor", "--snapshot-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "NO VALID GENERATION" in out
        assert "doctor: PROBLEMS FOUND" in out

    def test_missing_wal_fails(self, capsys, tmp_path):
        assert main(["doctor", "--wal", str(tmp_path / "none.wal")]) == 1
        assert "missing" in capsys.readouterr().out

    def test_torn_wal_is_described_not_fatal(self, durable_workspace, capsys, tmp_path):
        _graph, wal_path, _snaps = durable_workspace
        torn = tmp_path / "torn.wal"
        torn.write_bytes(wal_path.read_bytes()[:-5])
        assert main(["doctor", "--wal", str(torn)]) == 0
        out = capsys.readouterr().out
        assert "torn tail" in out
        assert "truncated on next open" in out

    def test_nothing_to_examine_is_an_error(self, capsys):
        assert main(["doctor"]) == 1
        assert "nothing to examine" in capsys.readouterr().out


class TestShardQueryBestEffort:
    def test_healthy_shards_serve_exact(self, shard_workspace, capsys):
        _root, _graph, _mono, manifest_path = shard_workspace
        assert main([
            "shard-query", "--manifest", str(manifest_path), "--best-effort",
        ]) == 0
        out = capsys.readouterr().out
        assert "queries across 2 shards" in out
        assert "[degraded:" not in out  # nothing failed: no coverage caveat

    def test_failing_shard_reports_coverage(self, shard_workspace, capsys):
        from repro.resilience import FaultPlan, inject
        from repro.resilience.faults import FaultSpec
        from repro.shard import ShardRouter

        _root, _graph, _mono, manifest_path = shard_workspace
        term = ShardRouter.from_manifest(manifest_path).indexed_terms()[0]
        plan = FaultPlan(seed=0)
        plan.arm(FaultSpec(point="shard.query", at=1, times=10_000, match={"shard": 1}))
        with inject(plan):
            assert main([
                "shard-query", "--manifest", str(manifest_path),
                "--best-effort", "--query", term,
            ]) == 0
        out = capsys.readouterr().out
        assert "[degraded: 1/2 shards live, 0 stale, coverage 50%]" in out

    def test_strict_mode_still_fails_loudly(self, shard_workspace, capsys):
        from repro.resilience import FaultPlan, inject
        from repro.resilience.faults import FaultSpec
        from repro.shard import ShardRouter

        _root, _graph, _mono, manifest_path = shard_workspace
        term = ShardRouter.from_manifest(manifest_path).indexed_terms()[0]
        plan = FaultPlan(seed=0)
        plan.arm(FaultSpec(point="shard.query", at=1, times=10_000, match={"shard": 0}))
        with inject(plan), pytest.raises(Exception, match="best_effort"):
            main([
                "shard-query", "--manifest", str(manifest_path), "--query", term,
            ])


class TestServeAndDoctorUrl:
    """`repro serve` wiring and the doctor's live-gateway probe mode."""

    @pytest.fixture()
    def live_gateway(self, fitted_cpd, twitter_tiny):
        from repro.gateway import GatewayServer, GatewayThread
        from repro.serving import ProfileStore

        graph, _truth = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            yield gateway, handle

    def test_serve_parser_accepts_the_full_flag_set(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args([
            "serve", "--model", "m.cpd.npz", "--port", "9000",
            "--max-in-flight", "4", "--max-queue", "0",
            "--default-deadline-ms", "250", "--best-effort",
            "--breaker-half-open-probes", "2", "--stale-max-age", "60",
        ])
        assert args.command == "serve"
        assert args.max_in_flight == 4 and args.max_queue == 0
        assert args.default_deadline_ms == 250
        assert args.best_effort is True

    def test_doctor_probes_a_live_gateway(self, live_gateway, capsys):
        _gateway, handle = live_gateway
        assert main(["doctor", "--url", handle.base_url]) == 0
        out = capsys.readouterr().out
        assert "/health: ok (store backend)" in out
        assert "/ready: ready" in out
        assert "/metrics:" in out
        assert "doctor: all checks passed" in out

    def test_doctor_url_json_report(self, live_gateway, capsys):
        import json as _json

        _gateway, handle = live_gateway
        assert main(["doctor", "--url", handle.base_url, "--json"]) == 0
        report = _json.loads(capsys.readouterr().out)
        gateway_check = report["checks"]["gateway"]
        assert gateway_check["reachable"] is True
        assert gateway_check["ready"] is True
        assert gateway_check["metrics"]["ok"] is True
        assert gateway_check["degraded_shards"] == []

    def test_doctor_fails_when_the_gateway_is_draining(
        self, live_gateway, capsys
    ):
        gateway, handle = live_gateway
        handle.submit(gateway.drain()).result(timeout=10)
        # the listener is closed after drain: the probe sees UNREACHABLE
        assert main(["doctor", "--url", handle.base_url]) == 1
        assert "doctor: PROBLEMS FOUND" in capsys.readouterr().out

    def test_doctor_unreachable_url_fails(self, capsys):
        assert main(["doctor", "--url", "http://127.0.0.1:9"]) == 1
        out = capsys.readouterr().out
        assert "UNREACHABLE" in out
        assert "doctor: PROBLEMS FOUND" in out

    def test_doctor_still_demands_something_to_examine(self, capsys):
        assert main(["doctor"]) == 1
        assert "--url" in capsys.readouterr().out


class TestSloCommand:
    @pytest.fixture()
    def live_gateway(self, fitted_cpd, twitter_tiny):
        from repro.gateway import GatewayServer, GatewayThread
        from repro.serving import ProfileStore

        graph, _truth = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        gateway = GatewayServer(store, port=0)
        with GatewayThread(gateway) as handle:
            yield gateway, handle

    def test_no_traffic_yet(self, live_gateway, capsys):
        _gateway, handle = live_gateway
        assert main(["slo", "--url", handle.base_url]) == 0
        out = capsys.readouterr().out
        assert "objectives: availability 0.999" in out
        assert "no traffic recorded yet" in out

    def test_burn_table_after_traffic(self, live_gateway, capsys):
        from repro.serving import ProfileStore  # noqa: F401 — fixture dep

        gateway, handle = live_gateway
        term = next(iter(gateway.backend.query_index()))
        for _ in range(3):
            status, _h, _b = handle.get(f"/rank?q={term}")
            assert status == 200
        assert main(["slo", "--url", handle.base_url]) == 0
        out = capsys.readouterr().out
        assert "/rank" in out
        assert "availability" in out and "latency" in out
        assert "burn@" in out

    def test_json_dump(self, live_gateway, capsys):
        import json as _json

        _gateway, handle = live_gateway
        assert main(["slo", "--url", handle.base_url, "--json"]) == 0
        payload = _json.loads(capsys.readouterr().out)
        assert "objectives" in payload and "worst_burn" in payload

    def test_unreachable_gateway_fails(self, capsys):
        assert main(["slo", "--url", "http://127.0.0.1:9"]) == 1
        assert "error: cannot read" in capsys.readouterr().out

    def test_doctor_url_includes_the_slo_probe(self, live_gateway, capsys):
        _gateway, handle = live_gateway
        assert main(["doctor", "--url", handle.base_url]) == 0
        assert "/slo:" in capsys.readouterr().out


class TestTraceUrl:
    def test_live_trace_renders_one_connected_tree(
        self, fitted_cpd, twitter_tiny, capsys
    ):
        from repro import obs
        from repro.gateway import GatewayServer, GatewayThread, TRACE_HEADER
        from repro.serving import ProfileStore

        graph, _truth = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        obs.enable_telemetry()
        try:
            gateway = GatewayServer(store, port=0)
            trace_id = "deadbeefdeadbeef"
            with GatewayThread(gateway) as handle:
                term = next(iter(store.query_index()))
                status, headers, _b = handle.get(
                    f"/rank?q={term}", headers={TRACE_HEADER: trace_id}
                )
                assert status == 200
                assert headers[TRACE_HEADER] == trace_id
                assert main([
                    "trace", "--url", handle.base_url,
                    "--trace-id", trace_id,
                ]) == 0
        finally:
            obs.disable_telemetry()
        out = capsys.readouterr().out
        assert f"trace {trace_id}:" in out
        assert "gateway.request" in out
        assert "gateway.backend" in out
        assert "1 trace tree(s)" in out

    def test_telemetry_and_url_are_mutually_exclusive(self, capsys):
        assert main([
            "trace", "--telemetry", "x.json", "--url", "http://h",
        ]) == 1
        assert "exactly one of" in capsys.readouterr().out

    def test_neither_source_is_an_error(self, capsys):
        assert main(["trace"]) == 1
        assert "exactly one of" in capsys.readouterr().out

    def test_unreachable_url_fails(self, capsys):
        assert main(["trace", "--url", "http://127.0.0.1:9"]) == 1
        assert "error: cannot read" in capsys.readouterr().out


class TestBenchDiffCommand:
    def _write(self, path, payload):
        import json as _json

        path.write_text(_json.dumps(payload), encoding="utf-8")

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, {"p99": 0.100, "rank_per_second": 1000.0})
        self._write(new, {"p99": 0.101, "rank_per_second": 1010.0})
        assert main(["bench-diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "2 shared metric(s)" in out
        assert "0 regression(s)" in out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, {"p99": 0.100})
        self._write(new, {"p99": 0.200})
        assert main(["bench-diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "regression" in out and "p99" in out

    def test_threshold_flag_loosens_the_gate(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, {"p99": 0.100})
        self._write(new, {"p99": 0.200})
        assert main([
            "bench-diff", str(old), str(new), "--threshold", "1.5",
        ]) == 0

    def test_json_report(self, tmp_path, capsys):
        import json as _json

        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, {"p99": 0.1})
        self._write(new, {"p99": 0.1})
        assert main(["bench-diff", str(old), str(new), "--json"]) == 0
        report = _json.loads(capsys.readouterr().out)
        assert report["compared"] == 1
        assert report["regressions"] == []

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        present = tmp_path / "ok.json"
        self._write(present, {})
        assert main([
            "bench-diff", str(tmp_path / "absent.json"), str(present),
        ]) == 2
        assert "error" in capsys.readouterr().out


class TestProfileFlag:
    def test_fit_profile_writes_folded_stacks(self, workspace, capsys, tmp_path):
        _root, graph_path, _model = workspace
        model_path = tmp_path / "profiled.cpd.npz"
        folded_path = tmp_path / "fit.folded"
        assert main([
            "fit", "--graph", str(graph_path), "--communities", "4",
            "--topics", "8", "--iterations", "6", "--seed", "0",
            "--out", str(model_path), "--profile", str(folded_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "folded stack(s)" in out and str(folded_path) in out
        lines = folded_path.read_text(encoding="utf-8").splitlines()
        assert lines, "a 6-iteration fit must be sampled at least once"
        stack, count = lines[0].rsplit(" ", 1)
        assert int(count) > 0 and ";" in stack

    def test_serve_parser_accepts_the_observability_flags(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args([
            "serve", "--model", "m.cpd.npz",
            "--access-log", "/tmp/a.jsonl", "--access-log-capacity", "512",
            "--tail-quantile", "0.95", "--slo-availability-target", "0.99",
            "--slo-latency-target", "0.95", "--slo-latency-ms", "100",
            "--profile", "/tmp/serve.folded",
        ])
        assert args.access_log == "/tmp/a.jsonl"
        assert args.access_log_capacity == 512
        assert args.tail_quantile == 0.95
        assert args.slo_availability_target == 0.99
        assert args.slo_latency_ms == 100.0
        assert args.profile == "/tmp/serve.folded"

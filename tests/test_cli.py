"""Tests for the command-line interface (full offline workflow)."""

import io

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """Generate a graph and fit a model once for all CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    graph_path = root / "graph.json.gz"
    model_path = root / "model.cpd.npz"
    assert main([
        "generate", "--scenario", "twitter", "--scale", "tiny",
        "--seed", "42", "--out", str(graph_path),
    ]) == 0
    assert main([
        "fit", "--graph", str(graph_path), "--communities", "4",
        "--topics", "8", "--iterations", "6", "--seed", "0",
        "--out", str(model_path),
    ]) == 0
    return root, graph_path, model_path


class TestGenerate:
    def test_graph_file_created(self, workspace):
        _root, graph_path, _model = workspace
        assert graph_path.exists()
        from repro.graph import load_graph

        graph = load_graph(graph_path)
        assert graph.n_users > 0

    def test_dblp_scenario(self, tmp_path):
        out = tmp_path / "dblp.json"
        assert main([
            "generate", "--scenario", "dblp", "--scale", "tiny",
            "--seed", "1", "--out", str(out),
        ]) == 0
        assert out.exists()


class TestFit:
    def test_model_file_created(self, workspace):
        _root, _graph, model_path = workspace
        assert model_path.exists()
        from repro.core import load_result

        result = load_result(model_path)
        assert result.n_communities == 4


class TestEvaluate:
    def test_prints_metrics(self, workspace, capsys):
        _root, graph_path, model_path = workspace
        assert main([
            "evaluate", "--graph", str(graph_path), "--model", str(model_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "diffusion link AUC" in out
        assert "perplexity" in out


class TestRank:
    def test_known_query(self, workspace, capsys):
        _root, graph_path, model_path = workspace
        from repro.evaluation import select_queries
        from repro.graph import load_graph

        graph = load_graph(graph_path)
        queries = select_queries(graph, min_frequency=1, hashtags_only=True)
        assert main([
            "rank", "--graph", str(graph_path), "--model", str(model_path),
            "--query", queries[0].term, "--top", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "#1" in out

    def test_unknown_query_fails_cleanly(self, workspace):
        _root, graph_path, model_path = workspace
        assert main([
            "rank", "--graph", str(graph_path), "--model", str(model_path),
            "--query", "zz-not-a-term",
        ]) == 1


class TestReport:
    def test_markdown_written(self, workspace):
        root, graph_path, model_path = workspace
        report_path = root / "report.md"
        assert main([
            "report", "--graph", str(graph_path), "--model", str(model_path),
            "--out", str(report_path),
        ]) == 0
        text = report_path.read_text()
        assert text.startswith("# ")
        assert "## Communities" in text
        assert "openness" in text.lower()


class TestVisualize:
    def test_ascii_to_stdout(self, workspace, capsys):
        _root, graph_path, model_path = workspace
        assert main([
            "visualize", "--graph", str(graph_path), "--model", str(model_path),
        ]) == 0
        assert "community diffusion" in capsys.readouterr().out

    def test_dot_to_file(self, workspace):
        root, graph_path, model_path = workspace
        out = root / "view.dot"
        assert main([
            "visualize", "--graph", str(graph_path), "--model", str(model_path),
            "--format", "dot", "--out", str(out),
        ]) == 0
        assert out.read_text().startswith("digraph")

    def test_topic_specific_json(self, workspace):
        root, graph_path, model_path = workspace
        out = root / "view.json"
        assert main([
            "visualize", "--graph", str(graph_path), "--model", str(model_path),
            "--format", "json", "--topic", "0", "--out", str(out),
        ]) == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["topic"] == 0

"""Tests for the ProfileStore serving facade."""

import numpy as np
import pytest

from repro.apps import CommunityRanker
from repro.core import CPDResult
from repro.evaluation import select_queries
from repro.serving import GraphSummary, ProfileStore, ensure_store


@pytest.fixture(scope="module")
def fitted_store(fitted_cpd, twitter_tiny):
    """Store wrapping the shared fit with its live graph."""
    graph, _ = twitter_tiny
    return ProfileStore.from_fit(fitted_cpd, graph)


@pytest.fixture(scope="module")
def artifact_path(fitted_cpd, twitter_tiny, tmp_path_factory):
    """A self-contained v2 artifact of the shared fit."""
    graph, _ = twitter_tiny
    path = tmp_path_factory.mktemp("serving") / "model.cpd.npz"
    ProfileStore.from_fit(fitted_cpd, graph).save(path)
    return path


@pytest.fixture(scope="module")
def served_store(artifact_path):
    """Store opened from the artifact alone — no graph anywhere."""
    store = ProfileStore.from_artifact(artifact_path)
    assert store.graph is None
    return store


@pytest.fixture(scope="module")
def a_term(twitter_tiny):
    graph, _ = twitter_tiny
    queries = select_queries(graph, min_frequency=2, max_queries=1)
    assert queries
    return queries[0].term


class TestMembershipIndexes:
    def test_top_communities_matches_result(self, fitted_store, fitted_cpd):
        np.testing.assert_array_equal(
            fitted_store.top_communities(2), fitted_cpd.top_communities_per_user(2)
        )

    def test_top_communities_memoised(self, fitted_store):
        assert fitted_store.top_communities(3) is fitted_store.top_communities(3)

    def test_community_members_match_result(self, fitted_store, fitted_cpd):
        store_members = fitted_store.community_members(2)
        result_members = fitted_cpd.community_members(2)
        for mine, theirs in zip(store_members, result_members):
            np.testing.assert_array_equal(mine, theirs)


class TestRankingCache:
    def test_repeated_query_is_a_cache_hit(self, served_store, a_term):
        first = served_store.rank(a_term)
        before = served_store.cache_info()
        second = served_store.rank(a_term)
        after = served_store.cache_info()
        assert first == second
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_cache_hit_does_not_recompute_scores(self, served_store, a_term, monkeypatch):
        served_store.rank(a_term)  # primed

        def boom(_query):
            raise AssertionError("cache hit must not recompute scores")

        monkeypatch.setattr(served_store, "scores", boom)
        ranking = served_store.rank(a_term)
        assert len(ranking) == served_store.n_communities

    def test_served_ranking_matches_graphful_ranking(
        self, served_store, fitted_store, a_term
    ):
        assert served_store.rank(a_term) == fitted_store.rank(a_term)

    def test_cached_ranking_is_a_copy(self, served_store, a_term):
        ranking = served_store.rank(a_term)
        ranking.append(("tampered", 0.0))
        assert served_store.rank(a_term)[-1] != ("tampered", 0.0)

    def test_lru_evicts_oldest(self, artifact_path, twitter_tiny):
        graph, _ = twitter_tiny
        store = ProfileStore.from_artifact(artifact_path, query_cache_size=2)
        terms = [graph.vocabulary.word_of(i) for i in range(3)]
        for term in terms:
            store.rank(term)
        assert store.cache_info()["size"] == 2
        store.rank(terms[0])  # evicted -> miss again
        assert store.cache_info()["misses"] == 4

    def test_unknown_query_raises(self, served_store):
        with pytest.raises(KeyError):
            served_store.rank("zzzz-not-a-word")

    def test_scores_match_eq19_einsum(self, served_store, fitted_cpd, a_term):
        affinity = served_store.query_topic_affinity(a_term)
        weighted = fitted_cpd.theta * affinity[None, :]
        expected = np.einsum("cdz,dz->c", fitted_cpd.eta, weighted)
        np.testing.assert_allclose(served_store.scores(a_term), expected)

    def test_query_log_shift_restores_absolute_affinity(self, served_store, a_term):
        """Undoing the stability rescale recovers prod_w phi_zw exactly —
        the contract the cross-shard router merge relies on."""
        affinity = served_store.query_topic_affinity(a_term)
        shift = served_store.query_log_shift(a_term)
        word_ids = list(served_store.query_word_ids(a_term))
        raw = np.prod(served_store.result.phi[:, word_ids], axis=1)
        np.testing.assert_allclose(affinity * np.exp(shift), raw, rtol=1e-9)


class TestQueryIndex:
    def test_index_matches_select_queries(self, served_store, twitter_tiny):
        graph, _ = twitter_tiny
        expected = select_queries(graph, min_frequency=2)
        index = served_store.query_index()
        assert set(index) == {query.term for query in expected}
        for query in expected:
            np.testing.assert_array_equal(
                index[query.term].relevant_users, query.relevant_users
            )
            assert index[query.term].frequency == query.frequency

    def test_relevant_users_unknown_term(self, served_store):
        with pytest.raises(KeyError):
            served_store.relevant_users("zzzz-not-a-term")


class TestServingParity:
    """Artifact-served indexes must equal their graph-derived versions."""

    def test_popularity_matrix(self, served_store, fitted_store):
        np.testing.assert_allclose(
            served_store.popularity_matrix(), fitted_store.popularity_matrix()
        )

    def test_user_features(self, served_store, fitted_store):
        users = np.arange(served_store.n_users)
        np.testing.assert_allclose(
            served_store.user_features().pair_features_batch(users, users[::-1]),
            fitted_store.user_features().pair_features_batch(users, users[::-1]),
        )

    def test_doc_user_and_timestamp(self, served_store, fitted_store):
        np.testing.assert_array_equal(served_store.doc_user(), fitted_store.doc_user())
        np.testing.assert_array_equal(
            served_store.doc_timestamp(), fitted_store.doc_timestamp()
        )

    def test_stats(self, served_store, twitter_tiny):
        graph, _ = twitter_tiny
        assert served_store.stats == graph.stats()

    def test_labels(self, served_store, fitted_store):
        assert served_store.labels() == fitted_store.labels()

    def test_diffusion_slices(self, served_store, fitted_cpd):
        np.testing.assert_allclose(
            served_store.aggregated_diffusion(), fitted_cpd.aggregated_diffusion_matrix()
        )
        np.testing.assert_allclose(
            served_store.diffusion_slice(0), fitted_cpd.eta[:, :, 0]
        )
        with pytest.raises(ValueError):
            served_store.diffusion_slice(99)


class TestGraphFreeApps:
    def test_ranker_over_served_store(self, served_store, a_term, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        served = CommunityRanker(served_store)
        legacy = CommunityRanker(fitted_cpd, graph)
        assert served.rank(a_term) == legacy.rank(a_term)
        for mine, theirs in zip(
            served.ranked_member_lists(a_term), legacy.ranked_member_lists(a_term)
        ):
            np.testing.assert_array_equal(mine, theirs)

    def test_predictor_over_served_store(self, served_store):
        from repro.apps import DiffusionPredictor

        predictor = DiffusionPredictor(served_store)
        assert 0.0 <= predictor.predict(0, 1, 2) <= 1.0

    def test_report_over_served_store(self, served_store):
        from repro.apps.report import build_report

        report = build_report(served_store, queries=served_store.indexed_queries(2))
        assert report.startswith("# Community profile report")
        assert "## Communities" in report

    def test_visualization_over_served_store(self, served_store):
        from repro.apps import ascii_render, build_diffusion_graph

        view = build_diffusion_graph(served_store, labels=served_store.labels())
        assert view.number_of_nodes() == served_store.n_communities
        assert "community diffusion" in ascii_render(view)


class TestEncodeTokens:
    def test_skips_unknown_preserves_known(self, served_store, twitter_tiny):
        graph, _ = twitter_tiny
        known = graph.vocabulary.word_of(5)
        ids = served_store.encode_tokens([known, "zzzz-not-a-word", known])
        np.testing.assert_array_equal(ids, [5, 5])

    def test_does_not_mutate_frequencies(self, served_store, twitter_tiny):
        graph, _ = twitter_tiny
        word = graph.vocabulary.word_of(5)
        before = served_store.vocabulary.frequency(word)
        served_store.encode_tokens([word] * 10)
        assert served_store.vocabulary.frequency(word) == before


class TestEnsureStore:
    def test_passthrough(self, fitted_store):
        assert ensure_store(fitted_store) is fitted_store

    def test_wraps_result(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        store = ensure_store(fitted_cpd, graph)
        assert store.result is fitted_cpd
        assert store.graph is graph

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_store(object())


class TestMissingPayloads:
    def test_graphless_store_without_summary_raises(self, fitted_cpd):
        store = ProfileStore(fitted_cpd)
        with pytest.raises(RuntimeError, match="self-contained artifact"):
            _ = store.summary
        with pytest.raises(RuntimeError, match="vocabulary"):
            store.labels()

    def test_summary_survives_round_trip(self, fitted_store, twitter_tiny):
        graph, _ = twitter_tiny
        summary = GraphSummary.from_graph(graph)
        clone = GraphSummary.from_dict(summary.to_dict())
        assert clone.stats() == summary.stats()
        np.testing.assert_array_equal(clone.doc_user, summary.doc_user)
        np.testing.assert_array_equal(clone.followers, summary.followers)
        assert [query.term for query in clone.queries] == [
            query.term for query in summary.queries
        ]


class TestInvalidateAndHotSwap:
    @pytest.fixture()
    def swap_store(self, fitted_cpd, twitter_tiny):
        """A fresh store per test — these tests mutate it."""
        graph, _ = twitter_tiny
        return ProfileStore(
            fitted_cpd,
            vocabulary=graph.vocabulary,
            summary=GraphSummary.from_graph(graph),
        )

    def test_invalidate_drops_memoised_indexes(self, swap_store):
        top_before = swap_store.top_communities(2)
        labels_before = swap_store.labels()
        swap_store.invalidate()
        assert swap_store.top_communities(2) is not top_before
        assert swap_store.labels() is not labels_before
        np.testing.assert_array_equal(swap_store.top_communities(2), top_before)

    def test_invalidate_clears_the_rank_cache_but_keeps_counters(
        self, swap_store, a_term
    ):
        swap_store.rank(a_term)
        swap_store.rank(a_term)
        before = swap_store.cache_info()
        assert before["hits"] == 1 and before["size"] == 1
        swap_store.invalidate()
        after = swap_store.cache_info()
        assert after["size"] == 0
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]
        swap_store.rank(a_term)
        assert swap_store.cache_info()["misses"] == before["misses"] + 1

    def test_hot_swap_serves_the_new_result(self, swap_store, fitted_cpd, a_term):
        old_ranking = swap_store.rank(a_term)
        permuted = fitted_cpd.diffusion.copy()
        permuted.eta = fitted_cpd.diffusion.eta[::-1, ::-1, :].copy()
        swapped = CPDResult(
            config=fitted_cpd.config,
            pi=fitted_cpd.pi[:, ::-1].copy(),  # relabel communities end-to-end
            theta=fitted_cpd.theta[::-1].copy(),
            phi=fitted_cpd.phi,
            diffusion=permuted,
            doc_community=fitted_cpd.doc_community,
            doc_topic=fitted_cpd.doc_topic,
        )
        swap_store.hot_swap(swapped)
        assert swap_store.result is swapped
        new_ranking = swap_store.rank(a_term)
        # the permutation relabels communities; scores survive as a set
        np.testing.assert_allclose(
            sorted(score for _c, score in new_ranking),
            sorted(score for _c, score in old_ranking),
        )

    def test_hot_swap_rejects_mismatched_vocabulary(self, swap_store, fitted_cpd):
        shrunk = CPDResult(
            config=fitted_cpd.config,
            pi=fitted_cpd.pi,
            theta=fitted_cpd.theta,
            phi=fitted_cpd.phi[:, :-1].copy(),
            diffusion=fitted_cpd.diffusion,
            doc_community=fitted_cpd.doc_community,
            doc_topic=fitted_cpd.doc_topic,
        )
        with pytest.raises(ValueError, match="vocabulary"):
            swap_store.hot_swap(shrunk)

    def test_hot_swap_rejects_mismatched_summary(self, swap_store, fitted_cpd):
        grown = CPDResult(
            config=fitted_cpd.config,
            pi=fitted_cpd.pi,
            theta=fitted_cpd.theta,
            phi=fitted_cpd.phi,
            diffusion=fitted_cpd.diffusion,
            doc_community=np.concatenate([fitted_cpd.doc_community, [0]]),
            doc_topic=np.concatenate([fitted_cpd.doc_topic, [0]]),
        )
        with pytest.raises(ValueError, match="summary"):
            swap_store.hot_swap(grown)

    def test_hot_swap_rejects_grown_result_on_summaryless_graph_store(
        self, fitted_cpd, twitter_tiny
    ):
        """A from_fit store without a distilled summary must not accept a
        result covering more documents than its live graph."""
        graph, _ = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        grown = CPDResult(
            config=fitted_cpd.config,
            pi=fitted_cpd.pi,
            theta=fitted_cpd.theta,
            phi=fitted_cpd.phi,
            diffusion=fitted_cpd.diffusion,
            doc_community=np.concatenate([fitted_cpd.doc_community, [0]]),
            doc_topic=np.concatenate([fitted_cpd.doc_topic, [0]]),
        )
        with pytest.raises(ValueError, match="extended summary"):
            store.hot_swap(grown)


class TestRankMany:
    """The gateway's fused batch path: one matmul for many queries."""

    def test_batch_matches_individual_ranks(self, fitted_store):
        terms = list(fitted_store.query_index())[:6]
        batch = fitted_store.rank_many(terms)
        for term, ranking in zip(terms, batch):
            assert ranking == fitted_store.rank(term)

    def test_duplicates_and_cache_hits_are_positioned_correctly(
        self, fitted_store, a_term
    ):
        fitted_store.rank(a_term)  # warm the LRU for one of the three
        other = next(
            t for t in fitted_store.query_index() if t != a_term
        )
        batch = fitted_store.rank_many([a_term, other, a_term])
        assert batch[0] == batch[2] == fitted_store.rank(a_term)
        assert batch[1] == fitted_store.rank(other)

    def test_unknown_term_raises_before_any_compute(self, fitted_store):
        with pytest.raises(KeyError, match="vocabulary"):
            fitted_store.rank_many(["zzz-never-a-word"])

    def test_batch_populates_the_rank_cache(self, fitted_cpd, twitter_tiny):
        graph, _truth = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        terms = list(store.query_index())[:4]
        store.rank_many(terms)
        assert store.cache_info()["size"] >= len(terms)
        before = store.cache_info()["misses"]
        store.rank(terms[0])  # a hit, not a recompute
        assert store.cache_info()["misses"] == before

"""Tests for likelihood reporting and convergence assessment."""

import math

import numpy as np
import pytest

from repro import obs
from repro.core import (
    CPDConfig,
    CPDModel,
    FitOptions,
    assess_convergence,
    likelihood_report,
)
from repro.core.io import load_result, save_result
from repro.core.result import CPDResult, IterationTrace


class TestLikelihoodReport:
    def test_report_fields(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        report = likelihood_report(fitted_cpd, graph)
        assert report.content_log_likelihood < 0
        assert report.content_tokens > 0
        assert report.friendship_log_likelihood < 0
        assert report.diffusion_log_likelihood < 0
        assert report.content_per_token == pytest.approx(
            report.content_log_likelihood / report.content_tokens
        )

    def test_fitted_beats_random_profiles(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        fitted = likelihood_report(fitted_cpd, graph)
        rng = np.random.default_rng(0)
        shuffled = CPDResult(
            config=fitted_cpd.config,
            pi=fitted_cpd.pi,
            theta=fitted_cpd.theta,
            phi=rng.dirichlet(np.ones(graph.n_words), size=fitted_cpd.n_topics),
            diffusion=fitted_cpd.diffusion,
            doc_community=fitted_cpd.doc_community,
            doc_topic=fitted_cpd.doc_topic,
        )
        random = likelihood_report(shuffled, graph)
        assert fitted.content_per_token > random.content_per_token


def _trace(values):
    return [
        IterationTrace(
            iteration=i,
            seconds=0.1,
            mean_friendship_probability=v,
            mean_diffusion_probability=v,
        )
        for i, v in enumerate(values)
    ]


def _result_with_trace(fitted, values):
    return CPDResult(
        config=fitted.config,
        pi=fitted.pi,
        theta=fitted.theta,
        phi=fitted.phi,
        diffusion=fitted.diffusion,
        doc_community=fitted.doc_community,
        doc_topic=fitted.doc_topic,
        trace=_trace(values),
    )


class TestConvergenceAssessment:
    def test_flat_trace_converges(self, fitted_cpd):
        result = _result_with_trace(fitted_cpd, [0.6] * 10)
        assessment = assess_convergence(result, window=4)
        assert assessment.converged
        assert assessment.stable_from == 0

    def test_drifting_trace_does_not(self, fitted_cpd):
        result = _result_with_trace(fitted_cpd, list(np.linspace(0.3, 0.9, 10)))
        assessment = assess_convergence(result, window=4, tolerance=0.02)
        assert not assessment.converged

    def test_stabilising_trace_finds_onset(self, fitted_cpd):
        values = [0.3, 0.45, 0.58, 0.64, 0.65, 0.65, 0.65, 0.65, 0.65, 0.65]
        result = _result_with_trace(fitted_cpd, values)
        assessment = assess_convergence(result, window=4, tolerance=0.02)
        assert assessment.converged
        assert assessment.stable_from >= 3

    def test_short_trace_not_converged(self, fitted_cpd):
        result = _result_with_trace(fitted_cpd, [0.5, 0.5])
        assert not assess_convergence(result, window=5).converged

    def test_real_fit_diagnosable(self, twitter_tiny):
        graph, _ = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=12, rho=0.5, alpha=0.5)
        result = CPDModel(config, rng=0).fit(graph)
        assessment = assess_convergence(result, window=3, tolerance=0.2)
        assert assessment.iterations_run == 12
        assert 0.0 <= assessment.final_diffusion_probability <= 1.0


class TestEmptyAndDisabledTraces:
    """Edge cases: no trace recorded, or none requested."""

    def test_empty_trace_assessment(self, fitted_cpd):
        result = _result_with_trace(fitted_cpd, [])
        assessment = assess_convergence(result)
        assert not assessment.converged
        assert assessment.iterations_run == 0
        assert assessment.stable_from is None
        assert math.isnan(assessment.final_diffusion_probability)
        assert math.isnan(assessment.final_friendship_probability)

    def test_record_trace_false_leaves_trace_empty(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        result = CPDModel(tiny_config, rng=0).fit(
            graph, FitOptions(record_trace=False)
        )
        assert result.trace == []
        assert not assess_convergence(result).converged

    def test_record_trace_false_still_feeds_telemetry(
        self, twitter_tiny, tiny_config
    ):
        """Gauges come from the same probe; disabling the trace must not
        disable them (and vice versa: telemetry must not resurrect the
        trace)."""
        graph, _ = twitter_tiny
        registry, _sink = obs.enable_telemetry()
        try:
            result = CPDModel(tiny_config, rng=0).fit(
                graph, FitOptions(record_trace=False)
            )
            gauges = {g["name"]: g["value"] for g in registry.snapshot()["gauges"]}
        finally:
            obs.disable_telemetry()
        assert result.trace == []
        assert 0.0 <= gauges["repro_fit_diffusion_probability"] <= 1.0
        assert gauges["repro_fit_iteration"] == tiny_config.n_iterations - 1


class TestTraceSerialization:
    def test_round_trip_preserves_phase_timings(self, fitted_cpd, tmp_path):
        trace = [
            IterationTrace(
                iteration=i,
                seconds=0.5,
                mean_friendship_probability=0.6,
                mean_diffusion_probability=0.7,
                e_step_seconds=0.3,
                augmentation_seconds=0.15,
                m_step_seconds=0.05,
            )
            for i in range(3)
        ]
        result = CPDResult(
            config=fitted_cpd.config,
            pi=fitted_cpd.pi,
            theta=fitted_cpd.theta,
            phi=fitted_cpd.phi,
            diffusion=fitted_cpd.diffusion,
            doc_community=fitted_cpd.doc_community,
            doc_topic=fitted_cpd.doc_topic,
            trace=trace,
        )
        path = tmp_path / "traced.cpd.npz"
        save_result(result, path)
        clone = load_result(path)
        assert clone.trace == trace

    def test_empty_trace_round_trips(self, fitted_cpd, tmp_path):
        result = _result_with_trace(fitted_cpd, [])
        path = tmp_path / "untraced.cpd.npz"
        save_result(result, path)
        assert load_result(path).trace == []

    def test_legacy_entries_without_phase_fields_load(self):
        entry = {
            "iteration": 0,
            "seconds": 0.2,
            "mean_friendship_probability": 0.5,
            "mean_diffusion_probability": 0.5,
        }
        loaded = IterationTrace(**entry)
        assert loaded.e_step_seconds == 0.0
        assert loaded.augmentation_seconds == 0.0
        assert loaded.m_step_seconds == 0.0

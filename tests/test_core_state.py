"""Tests for the Gibbs count state (incl. hypothesis inversion property)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CPDConfig
from repro.core.state import CPDState


@pytest.fixture()
def state(twitter_tiny, tiny_config):
    graph, _ = twitter_tiny
    return CPDState(graph, tiny_config)


class TestAssignUnassign:
    def test_assign_updates_counts(self, state):
        state.assign(0, community=1, topic=2)
        assert state.doc_community[0] == 1
        assert state.doc_topic[0] == 2
        assert state.community_topic[1, 2] == 1
        assert state.community_totals[1] == 1

    def test_double_assign_rejected(self, state):
        state.assign(0, 0, 0)
        with pytest.raises(ValueError):
            state.assign(0, 1, 1)

    def test_unassign_restores(self, state):
        state.assign(0, 1, 2)
        old = state.unassign(0)
        assert old == (1, 2)
        assert state.community_topic.sum() == 0
        assert state.topic_word.sum() == 0
        assert state.user_community.sum() == 0

    def test_unassign_unassigned_rejected(self, state):
        with pytest.raises(ValueError):
            state.unassign(0)

    def test_random_init_covers_all_docs(self, state, rng):
        state.random_init(rng)
        assert np.all(state.doc_topic >= 0)
        assert np.all(state.doc_community >= 0)
        state.check_consistency()

    def test_fixed_communities_respected(self, state, rng, twitter_tiny):
        graph, _ = twitter_tiny
        fixed = np.zeros(graph.n_documents, dtype=np.int64)
        state.random_init(rng, fixed_communities=fixed)
        np.testing.assert_array_equal(state.doc_community, 0)


class TestEstimators:
    def test_pi_hat_normalised(self, state, rng):
        state.random_init(rng)
        np.testing.assert_allclose(state.pi_hat().sum(axis=1), 1.0, rtol=1e-9)

    def test_theta_phi_normalised(self, state, rng):
        state.random_init(rng)
        np.testing.assert_allclose(state.theta_hat().sum(axis=1), 1.0, rtol=1e-9)
        np.testing.assert_allclose(state.phi_hat().sum(axis=1), 1.0, rtol=1e-9)

    def test_pi_hat_user_matches_matrix(self, state, rng):
        state.random_init(rng)
        np.testing.assert_allclose(state.pi_hat_user(3), state.pi_hat()[3])

    def test_smoothing_formula(self, state):
        state.assign(0, 0, 0)  # doc 0 belongs to some user u
        user = int(np.flatnonzero(state.user_totals)[0])
        pi = state.pi_hat_user(user)
        expected_top = (1 + state.rho) / (1 + state.n_communities * state.rho)
        assert pi[0] == pytest.approx(expected_top)


class TestSnapshots:
    def test_load_assignments_roundtrip(self, state, rng):
        state.random_init(rng)
        communities = state.doc_community.copy()
        topics = state.doc_topic.copy()
        theta_before = state.theta_hat()
        state.load_assignments(communities, topics)
        state.check_consistency()
        np.testing.assert_allclose(state.theta_hat(), theta_before)

    def test_reset_clears(self, state, rng):
        state.random_init(rng)
        state.reset()
        assert state.topic_word.sum() == 0
        assert np.all(state.doc_topic == -1)

    def test_load_rejects_wrong_shape(self, state):
        with pytest.raises(ValueError):
            state.load_assignments(np.zeros(3), np.zeros(3))


class TestInversionProperty:
    @given(
        moves=st.lists(
            st.tuples(st.integers(0, 19), st.integers(0, 3), st.integers(0, 7)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_assign_unassign_sequences_keep_consistency(
        self, twitter_tiny, tiny_config, moves
    ):
        """Arbitrary assign/unassign interleavings never desync counters."""
        graph, _ = twitter_tiny
        state = CPDState(graph, tiny_config)
        for doc_id, community, topic in moves:
            if state.doc_topic[doc_id] == -1:
                state.assign(doc_id, community, topic)
            else:
                state.unassign(doc_id)
        state.check_consistency()
        assert np.all(state.user_community >= 0)
        assert np.all(state.topic_word >= 0)

"""Tests for the Gibbs count state (incl. hypothesis inversion property)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CPDConfig
from repro.core.state import CPDState


@pytest.fixture()
def state(twitter_tiny, tiny_config):
    graph, _ = twitter_tiny
    return CPDState(graph, tiny_config)


class TestAssignUnassign:
    def test_assign_updates_counts(self, state):
        state.assign(0, community=1, topic=2)
        assert state.doc_community[0] == 1
        assert state.doc_topic[0] == 2
        assert state.community_topic[1, 2] == 1
        assert state.community_totals[1] == 1

    def test_double_assign_rejected(self, state):
        state.assign(0, 0, 0)
        with pytest.raises(ValueError):
            state.assign(0, 1, 1)

    def test_unassign_restores(self, state):
        state.assign(0, 1, 2)
        old = state.unassign(0)
        assert old == (1, 2)
        assert state.community_topic.sum() == 0
        assert state.topic_word.sum() == 0
        assert state.user_community.sum() == 0

    def test_unassign_unassigned_rejected(self, state):
        with pytest.raises(ValueError):
            state.unassign(0)

    def test_random_init_covers_all_docs(self, state, rng):
        state.random_init(rng)
        assert np.all(state.doc_topic >= 0)
        assert np.all(state.doc_community >= 0)
        state.check_consistency()

    def test_fixed_communities_respected(self, state, rng, twitter_tiny):
        graph, _ = twitter_tiny
        fixed = np.zeros(graph.n_documents, dtype=np.int64)
        state.random_init(rng, fixed_communities=fixed)
        np.testing.assert_array_equal(state.doc_community, 0)


class TestEstimators:
    def test_pi_hat_normalised(self, state, rng):
        state.random_init(rng)
        np.testing.assert_allclose(state.pi_hat().sum(axis=1), 1.0, rtol=1e-9)

    def test_theta_phi_normalised(self, state, rng):
        state.random_init(rng)
        np.testing.assert_allclose(state.theta_hat().sum(axis=1), 1.0, rtol=1e-9)
        np.testing.assert_allclose(state.phi_hat().sum(axis=1), 1.0, rtol=1e-9)

    def test_pi_hat_user_matches_matrix(self, state, rng):
        state.random_init(rng)
        np.testing.assert_allclose(state.pi_hat_user(3), state.pi_hat()[3])

    def test_smoothing_formula(self, state):
        state.assign(0, 0, 0)  # doc 0 belongs to some user u
        user = int(np.flatnonzero(state.user_totals)[0])
        pi = state.pi_hat_user(user)
        expected_top = (1 + state.rho) / (1 + state.n_communities * state.rho)
        assert pi[0] == pytest.approx(expected_top)


class TestSnapshots:
    def test_load_assignments_roundtrip(self, state, rng):
        state.random_init(rng)
        communities = state.doc_community.copy()
        topics = state.doc_topic.copy()
        theta_before = state.theta_hat()
        state.load_assignments(communities, topics)
        state.check_consistency()
        np.testing.assert_allclose(state.theta_hat(), theta_before)

    def test_reset_clears(self, state, rng):
        state.random_init(rng)
        state.reset()
        assert state.topic_word.sum() == 0
        assert np.all(state.doc_topic == -1)

    def test_load_rejects_wrong_shape(self, state):
        with pytest.raises(ValueError):
            state.load_assignments(np.zeros(3), np.zeros(3))

    def test_load_rejects_out_of_range(self, state):
        communities = np.zeros(state.n_docs, dtype=np.int64)
        topics = np.zeros(state.n_docs, dtype=np.int64)
        with pytest.raises(ValueError):
            state.load_assignments(communities - 1, topics)
        with pytest.raises(ValueError):
            state.load_assignments(communities, topics + state.n_topics)

    def test_load_matches_sequential_assign(self, state, rng, twitter_tiny):
        """The bincount rebuild equals a document-by-document rebuild."""
        graph, _ = twitter_tiny
        state.random_init(rng)
        communities = state.doc_community.copy()
        topics = state.doc_topic.copy()
        state.load_assignments(communities, topics)

        other = CPDState(graph, CPDConfig(n_communities=4, n_topics=8, rho=0.5, alpha=0.5))
        for doc_id in range(graph.n_documents):
            other.assign(doc_id, int(communities[doc_id]), int(topics[doc_id]))

        np.testing.assert_array_equal(state.user_community, other.user_community)
        np.testing.assert_array_equal(state.community_topic, other.community_topic)
        np.testing.assert_array_equal(state.topic_word, other.topic_word)
        np.testing.assert_array_equal(state.user_totals, other.user_totals)
        np.testing.assert_array_equal(state.community_totals, other.community_totals)
        np.testing.assert_array_equal(state.topic_totals, other.topic_totals)


class TestEstimatorCaches:
    def test_views_track_mutations(self, state, rng):
        state.random_init(rng)
        pi_before = state.pi_hat_view().copy()
        theta_before = state.theta_hat_view().copy()
        community, topic = state.unassign(0)
        # the cached views must refresh the dirty rows on next access
        fresh_pi = (state.user_community + state.rho) / (
            state.user_totals[:, None] + state.n_communities * state.rho
        )
        fresh_theta = (state.community_topic + state.alpha) / (
            state.community_totals[:, None] + state.n_topics * state.alpha
        )
        np.testing.assert_allclose(state.pi_hat_view(), fresh_pi)
        np.testing.assert_allclose(state.theta_hat_view(), fresh_theta)
        state.assign(0, community, topic)
        np.testing.assert_allclose(state.pi_hat_view(), pi_before)
        np.testing.assert_allclose(state.theta_hat_view(), theta_before)

    def test_public_accessors_return_copies(self, state, rng):
        state.random_init(rng)
        pi = state.pi_hat()
        pi.fill(-1.0)
        assert np.all(state.pi_hat() >= 0.0)
        theta = state.theta_hat()
        theta.fill(-1.0)
        assert np.all(state.theta_hat() >= 0.0)

    def test_many_dirty_rows_refresh_vectorised(self, state, rng):
        state.random_init(rng)
        state.pi_hat_view()
        state.theta_hat_view()
        # dirty far more rows than the scalar fast path handles
        for doc_id in range(state.n_docs):
            community, topic = state.unassign(doc_id)
            state.assign(doc_id, (community + 1) % state.n_communities, topic)
        state.check_consistency()  # includes cache-vs-counts verification


class TestReassignMany:
    def test_matches_unassign_assign(self, rng, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        bulk = CPDState(graph, tiny_config)
        sequential = CPDState(graph, tiny_config)
        bulk.random_init(np.random.default_rng(5))
        sequential.load_assignments(bulk.doc_community, bulk.doc_topic)

        doc_ids = np.arange(0, graph.n_documents, 2)
        communities = (bulk.doc_community[doc_ids] + 1) % tiny_config.n_communities
        topics = (bulk.doc_topic[doc_ids] + 3) % tiny_config.n_topics
        old_c, old_z = bulk.reassign_many(doc_ids, communities, topics)

        for doc_id, community, topic in zip(doc_ids, communities, topics):
            sequential.unassign(int(doc_id))
            sequential.assign(int(doc_id), int(community), int(topic))

        bulk.check_consistency()
        np.testing.assert_array_equal(bulk.topic_word, sequential.topic_word)
        np.testing.assert_array_equal(bulk.user_community, sequential.user_community)
        np.testing.assert_array_equal(bulk.community_topic, sequential.community_topic)
        np.testing.assert_array_equal(bulk.topic_totals, sequential.topic_totals)
        assert np.all(old_z >= 0) and np.all(old_c >= 0)

    def test_empty_batch_is_noop(self, state, rng):
        state.random_init(rng)
        before = state.topic_word.copy()
        state.reassign_many(np.zeros(0, dtype=np.int64), np.zeros(0), np.zeros(0))
        np.testing.assert_array_equal(state.topic_word, before)

    def test_rejects_duplicates(self, state, rng):
        state.random_init(rng)
        with pytest.raises(ValueError):
            state.reassign_many(np.array([0, 0]), np.array([1, 2]), np.array([1, 2]))

    def test_rejects_unassigned(self, state, rng):
        state.random_init(rng)
        state.unassign(3)
        with pytest.raises(ValueError):
            state.reassign_many(np.array([3]), np.array([0]), np.array([0]))


class TestInversionProperty:
    @given(
        moves=st.lists(
            st.tuples(st.integers(0, 19), st.integers(0, 3), st.integers(0, 7)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_assign_unassign_sequences_keep_consistency(
        self, twitter_tiny, tiny_config, moves
    ):
        """Arbitrary assign/unassign interleavings never desync counters."""
        graph, _ = twitter_tiny
        state = CPDState(graph, tiny_config)
        for doc_id, community, topic in moves:
            if state.doc_topic[doc_id] == -1:
                state.assign(doc_id, community, topic)
            else:
                state.unassign(doc_id)
        state.check_consistency()
        assert np.all(state.user_community >= 0)
        assert np.all(state.topic_word >= 0)

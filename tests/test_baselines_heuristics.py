"""Tests for the heuristic link-prediction baselines."""

import numpy as np
import pytest

from repro.baselines import (
    FriendshipHeuristics,
    PopularityDiffusionBaseline,
    RecencyDiffusionBaseline,
)
from repro.evaluation import auc_score, friendship_auc_folds
from repro.diffusion import sample_negative_diffusion_pairs


@pytest.fixture(scope="module")
def heuristics(twitter_tiny):
    graph, _ = twitter_tiny
    return FriendshipHeuristics(graph)


class TestFriendshipHeuristics:
    def test_common_neighbors_counts(self, heuristics, twitter_tiny):
        graph, _ = twitter_tiny
        u, v = 0, 1
        expected = len(
            set(graph.friendship_neighbors(u)) & set(graph.friendship_neighbors(v))
        )
        assert heuristics.common_neighbors(np.array([u]), np.array([v]))[0] == expected

    def test_adamic_adar_nonnegative(self, heuristics):
        scores = heuristics.adamic_adar(np.arange(10), np.arange(10, 20))
        assert np.all(scores >= 0)

    def test_preferential_attachment_product(self, heuristics, twitter_tiny):
        graph, _ = twitter_tiny
        score = heuristics.preferential_attachment(np.array([2]), np.array([3]))[0]
        expected = len(graph.friendship_neighbors(2)) * len(graph.friendship_neighbors(3))
        assert score == expected

    def test_jaccard_bounded(self, heuristics):
        scores = heuristics.jaccard(np.arange(15), np.arange(15, 30))
        assert np.all((scores >= 0) & (scores <= 1))

    def test_adamic_adar_beats_chance(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        heuristics = FriendshipHeuristics(graph)
        folded = friendship_auc_folds(graph, heuristics.adamic_adar, rng=rng)
        assert folded.mean > 0.55

    def test_common_neighbors_beats_chance(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        heuristics = FriendshipHeuristics(graph)
        folded = friendship_auc_folds(graph, heuristics.common_neighbors, rng=rng)
        assert folded.mean > 0.55


class TestDiffusionHeuristics:
    def _auc(self, graph, model, rng):
        src = np.asarray([l.source_doc for l in graph.diffusion_links])
        tgt = np.asarray([l.target_doc for l in graph.diffusion_links])
        t = np.asarray([l.timestamp for l in graph.diffusion_links])
        positives = model.diffusion_scores(src, tgt, t)
        negatives_raw = sample_negative_diffusion_pairs(graph, len(src), rng)
        negatives = model.diffusion_scores(
            np.asarray([n[0] for n in negatives_raw]),
            np.asarray([n[1] for n in negatives_raw]),
            np.asarray([n[2] for n in negatives_raw]),
        )
        return auc_score(positives, negatives)

    def test_popularity_beats_chance(self, twitter_tiny, rng):
        graph, _ = twitter_tiny
        model = PopularityDiffusionBaseline().fit(graph)
        assert self._auc(graph, model, rng) > 0.5

    def test_popularity_requires_fit(self):
        with pytest.raises(RuntimeError):
            PopularityDiffusionBaseline().diffusion_scores(
                np.array([0]), np.array([1]), np.array([0])
            )

    def test_recency_scores_finite(self, dblp_tiny, rng):
        graph, _ = dblp_tiny
        model = RecencyDiffusionBaseline().fit(graph)
        src = np.asarray([l.source_doc for l in graph.diffusion_links[:20]])
        tgt = np.asarray([l.target_doc for l in graph.diffusion_links[:20]])
        t = np.asarray([l.timestamp for l in graph.diffusion_links[:20]])
        assert np.all(np.isfinite(model.diffusion_scores(src, tgt, t)))

    def test_recency_penalises_future_targets(self, dblp_tiny):
        graph, _ = dblp_tiny
        model = RecencyDiffusionBaseline().fit(graph)
        # the same target scored before vs after its publication
        target = 0
        published = graph.documents[target].timestamp
        past = model.diffusion_scores(
            np.array([1]), np.array([target]), np.array([published + 1])
        )[0]
        future = model.diffusion_scores(
            np.array([1]), np.array([target]), np.array([published - 1])
        )[0]
        assert past > future

    def test_no_friendship_support(self, twitter_tiny):
        graph, _ = twitter_tiny
        model = PopularityDiffusionBaseline().fit(graph)
        with pytest.raises(NotImplementedError):
            model.friendship_scores(np.array([0]), np.array([1]))

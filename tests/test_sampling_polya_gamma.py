"""Tests for the Pólya-Gamma samplers (moment checks, property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import (
    log_psi,
    pg_mean,
    pg_variance,
    sample_pg,
    sample_pg1,
    sample_pg_array,
    sigmoid,
)


class TestMoments:
    def test_mean_at_zero(self):
        assert pg_mean(1, 0.0) == pytest.approx(0.25)

    def test_mean_formula(self):
        z = 2.0
        assert pg_mean(1, z) == pytest.approx(np.tanh(z / 2) / (2 * z))

    def test_mean_scales_with_b(self):
        assert pg_mean(3, 1.0) == pytest.approx(3 * pg_mean(1, 1.0))

    def test_mean_symmetric_in_z(self):
        assert pg_mean(1, 1.5) == pytest.approx(pg_mean(1, -1.5))

    def test_variance_at_zero(self):
        assert pg_variance(1, 0.0) == pytest.approx(1.0 / 24.0)

    def test_variance_small_z_continuity(self):
        assert pg_variance(1, 1e-5) == pytest.approx(pg_variance(1, 0.0), rel=1e-3)

    def test_invalid_b(self):
        with pytest.raises(ValueError):
            pg_mean(0, 1.0)
        with pytest.raises(ValueError):
            pg_variance(-1, 1.0)


class TestDevroyeSampler:
    @pytest.mark.parametrize("z", [0.0, 0.5, 1.5, 4.0, 10.0])
    def test_mean_matches(self, z, rng):
        draws = np.array([sample_pg1(z, rng) for _ in range(4000)])
        expected = pg_mean(1, z)
        tolerance = 4 * np.sqrt(pg_variance(1, z) / len(draws))
        assert abs(draws.mean() - expected) < tolerance

    def test_variance_matches_at_zero(self, rng):
        draws = np.array([sample_pg1(0.0, rng) for _ in range(6000)])
        assert draws.var() == pytest.approx(1.0 / 24.0, rel=0.15)

    def test_draws_positive(self, rng):
        assert all(sample_pg1(2.0, rng) > 0 for _ in range(200))

    def test_negative_z_same_distribution(self, rng):
        pos = np.array([sample_pg1(3.0, rng) for _ in range(3000)])
        neg = np.array([sample_pg1(-3.0, rng) for _ in range(3000)])
        assert abs(pos.mean() - neg.mean()) < 0.01

    def test_deterministic_given_seed(self):
        a = sample_pg1(1.0, np.random.default_rng(0))
        b = sample_pg1(1.0, np.random.default_rng(0))
        assert a == b


class TestSamplePgB:
    def test_sum_of_ones(self, rng):
        draws = np.array([sample_pg(3, 1.0, rng) for _ in range(2000)])
        assert draws.mean() == pytest.approx(pg_mean(3, 1.0), rel=0.1)

    def test_batched_moments(self, rng):
        """The batched series draw matches PG(b, z) mean and variance."""
        b, z = 5, 2.0
        draws = np.array([sample_pg(b, z, rng) for _ in range(4000)])
        assert draws.mean() == pytest.approx(pg_mean(b, z), rel=0.05)
        assert draws.var() == pytest.approx(pg_variance(b, z), rel=0.2)

    def test_invalid_b(self, rng):
        with pytest.raises(ValueError):
            sample_pg(0, 1.0, rng)
        with pytest.raises(ValueError):
            sample_pg(1.5, 1.0, rng)


class TestSeriesSampler:
    @pytest.mark.parametrize("z", [0.0, 1.0, 5.0])
    def test_mean_matches(self, z, rng):
        draws = sample_pg_array(np.full(6000, z), rng)
        expected = pg_mean(1, z)
        tolerance = 4 * np.sqrt(pg_variance(1, z) / len(draws)) + 1e-3
        assert abs(draws.mean() - expected) < tolerance

    def test_shape_preserved(self, rng):
        z = np.zeros((7,))
        assert sample_pg_array(z, rng).shape == (7,)

    def test_heterogeneous_z(self, rng):
        z = np.array([0.0, 8.0])
        draws = np.stack([sample_pg_array(z, rng) for _ in range(3000)])
        assert draws[:, 0].mean() == pytest.approx(0.25, rel=0.1)
        assert draws[:, 1].mean() == pytest.approx(pg_mean(1, 8.0), rel=0.1)

    def test_positive_draws(self, rng):
        assert np.all(sample_pg_array(np.linspace(0, 10, 100), rng) > 0)

    @pytest.mark.parametrize("b", [2, 4])
    def test_shape_b_mean(self, b, rng):
        draws = sample_pg_array(np.full(6000, 1.5), rng, b=b)
        expected = pg_mean(b, 1.5)
        tolerance = 4 * np.sqrt(pg_variance(b, 1.5) / len(draws)) + 1e-3
        assert abs(draws.mean() - expected) < tolerance

    def test_invalid_shape_b(self, rng):
        with pytest.raises(ValueError):
            sample_pg_array(np.zeros(3), rng, b=0)

    def test_invalid_terms(self, rng):
        with pytest.raises(ValueError):
            sample_pg_array(np.zeros(3), rng, n_terms=0)

    @given(z=st.floats(0.0, 20.0))
    @settings(max_examples=30, deadline=None)
    def test_draw_is_finite_positive(self, z):
        draw = sample_pg_array(np.array([z]), np.random.default_rng(0))[0]
        assert np.isfinite(draw) and draw > 0


class TestSeriesTailMean:
    """The analytic tail correction closes the truncated series exactly."""

    @pytest.mark.parametrize("n_terms", [4, 16, 64])
    def test_partial_plus_tail_equals_pg_mean(self, n_terms):
        from repro.sampling.polya_gamma import _series_tail_mean

        z = np.array([0.0, 1e-6, 0.3, 1.0, 4.0, 12.0])
        c = np.abs(z) / (2.0 * np.pi)
        k = np.arange(1, n_terms + 1, dtype=np.float64)
        partial_mean = (1.0 / ((k - 0.5) ** 2 + c[:, None] ** 2)).sum(axis=1) / (
            2.0 * np.pi**2
        )
        tail = _series_tail_mean(z, n_terms)
        expected = np.array([pg_mean(1.0, value) for value in z])
        np.testing.assert_allclose(partial_mean + tail, expected, rtol=1e-10)

    def test_tail_is_positive_and_shrinks(self):
        from repro.sampling.polya_gamma import _series_tail_mean

        z = np.array([0.5])
        tails = [float(_series_tail_mean(z, k)[0]) for k in (4, 16, 64, 256)]
        assert all(t > 0 for t in tails)
        assert tails == sorted(tails, reverse=True)

    def test_mean_correction_keeps_sampler_unbiased(self):
        """sample_pg_array matches pg_mean even at aggressive truncation."""
        rng = np.random.default_rng(7)
        z = np.full(40000, 2.0)
        draws = sample_pg_array(z, rng, n_terms=8)
        assert draws.mean() == pytest.approx(pg_mean(1, 2.0), rel=0.02)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array(0.0)) == pytest.approx(0.5)

    def test_extremes_stable(self):
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == pytest.approx(1.0, abs=1e-12)

    def test_symmetry(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, rtol=1e-12)

    @given(st.floats(-500, 500))
    @settings(max_examples=50, deadline=None)
    def test_in_unit_interval(self, x):
        assert 0.0 <= sigmoid(np.array(x)) <= 1.0


class TestLogPsi:
    def test_formula(self):
        # psi(w, x) = exp(w/2 - x w^2 / 2)
        assert log_psi(2.0, 0.5) == pytest.approx(2.0 / 2 - 0.5 * 4.0 / 2)

    def test_vectorised(self):
        w = np.array([0.0, 1.0])
        x = np.array([1.0, 1.0])
        np.testing.assert_allclose(log_psi(w, x), [0.0, 0.5 - 0.5])

    def test_mixture_identity(self, rng):
        """Eq. 7: E_x[psi(w, x)] / 2 equals the sigmoid (Monte-Carlo check)."""
        w = 1.2
        draws = np.array([sample_pg1(0.0, rng) for _ in range(20000)])
        estimate = 0.5 * np.exp(log_psi(w, draws)).mean()
        assert estimate == pytest.approx(sigmoid(np.array(w)), rel=0.05)

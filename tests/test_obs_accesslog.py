"""Tests for the structured access log and the tail-based trace sampler."""

import json

import pytest

from repro.obs.accesslog import ACCESS_FIELDS, AccessLog, NullAccessLog, TailSampler


def _record(i: int, **overrides) -> dict:
    base = {field: None for field in ACCESS_FIELDS}
    base.update(
        ts=float(i), method="GET", route="/rank", status=200,
        trace_id=f"t{i:04x}", total=0.01,
    )
    base.update(overrides)
    return base


class TestAccessLog:
    def test_ring_keeps_newest_and_counts_drops(self):
        log = AccessLog(capacity=3)
        for i in range(5):
            log.log(_record(i))
        records = log.export()
        assert [r["ts"] for r in records] == [2.0, 3.0, 4.0]
        stats = log.stats()
        assert stats["logged"] == 5
        assert stats["dropped"] == 2
        assert stats["records"] == 3
        assert len(log) == 3

    def test_export_limit_returns_newest_oldest_first(self):
        log = AccessLog(capacity=10)
        for i in range(6):
            log.log(_record(i))
        assert [r["ts"] for r in log.export(limit=2)] == [4.0, 5.0]
        assert log.export(limit=0) == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AccessLog(capacity=0)

    def test_file_sink_appends_json_lines(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(capacity=4, path=str(path))
        for i in range(3):
            log.log(_record(i))
        log.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert [p["ts"] for p in parsed] == [0.0, 1.0, 2.0]
        assert log.stats()["written"] == 3

    def test_unwritable_path_disables_file_sink_not_the_ring(self, tmp_path):
        log = AccessLog(capacity=4, path=str(tmp_path / "no" / "dir" / "a.jsonl"))
        log.log(_record(0))
        stats = log.stats()
        assert stats["write_failures"] == 1
        assert stats["written"] == 0
        # the in-memory ring still works
        assert len(log.export()) == 1

    def test_unserialisable_record_counts_failure_and_survives(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(capacity=4, path=str(path))
        log.log(_record(0, query=object()))  # json.dumps raises TypeError
        log.log(_record(1))
        log.close()
        stats = log.stats()
        assert stats["write_failures"] == 1
        assert stats["written"] == 1
        assert len(log.export()) == 2

    def test_repeated_write_failures_close_the_file_sink(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(capacity=64, path=str(path))
        for i in range(AccessLog.MAX_WRITE_FAILURES):
            log.log(_record(i, query=object()))
        assert log._file is None  # sink disabled, gateway unaffected
        log.log(_record(99))
        assert log.stats()["write_failures"] == AccessLog.MAX_WRITE_FAILURES

    def test_null_access_log_drops_everything(self):
        log = NullAccessLog()
        log.log(_record(0))
        assert log.export() == []
        assert len(log) == 0
        assert log.stats()["logged"] == 0
        log.close()  # no-op


class TestTailSampler:
    def test_warm_up_keeps_everything(self):
        sampler = TailSampler(min_observations=8)
        assert all(sampler.keep(0.001) for _ in range(8))
        assert sampler.stats()["kept"] == 8

    def test_slow_tail_survives_fast_bulk_does_not(self):
        sampler = TailSampler(quantile=0.9, window=100, refresh=1,
                              min_observations=10)
        for _ in range(50):
            sampler.keep(0.010)
        # threshold is now 10ms; a fast request is dropped, a slow one kept
        assert not sampler.keep(0.001)
        assert sampler.keep(0.500)
        stats = sampler.stats()
        assert stats["dropped"] == 1
        assert stats["threshold"] == pytest.approx(0.010)

    def test_errors_and_followed_requests_always_kept(self):
        sampler = TailSampler(quantile=0.9, refresh=1, min_observations=1)
        for _ in range(20):
            sampler.keep(0.010)
        assert sampler.keep(0.0, error=True)
        assert sampler.keep(0.0, forced=True)
        assert not sampler.keep(0.0)

    def test_threshold_refreshes_on_schedule(self):
        sampler = TailSampler(quantile=0.5, window=4, refresh=100,
                              min_observations=0)
        sampler.keep(1.0)  # first call always computes a threshold
        first = sampler.threshold
        for _ in range(5):
            sampler.keep(100.0)
        # refresh interval not reached: threshold is stale by design
        assert sampler.threshold == first

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            TailSampler(quantile=0.0)
        with pytest.raises(ValueError):
            TailSampler(quantile=1.0)

"""Tests for ranking-query selection (Sect. 6.3.2 guidelines)."""

import numpy as np
import pytest

from repro.evaluation import queries_by_frequency_band, select_queries
from repro.graph import SocialGraphBuilder


def _graph(diffusion=True, hashtags=False):
    """Tiny hand-built graph: 3 users, 6 documents, optional diffusion."""
    builder = SocialGraphBuilder(name="query-fixture")
    for name in ("a", "b", "c"):
        builder.add_user(name=name)
    common = "#shared" if hashtags else "shared"
    rare = "#rare" if hashtags else "rare"
    plain = "plain"
    docs = [
        (0, [common, plain, "alpha"]),
        (0, [common, rare]),
        (1, [common, plain, "beta"]),
        (1, [common, rare]),
        (2, [plain, "gamma"]),
        (2, [common, plain]),
    ]
    for user, words in docs:
        builder.add_document(user, words, timestamp=0)
    builder.add_friendship(0, 1)
    if diffusion:
        # docs 0-3 and 5 diffuse; doc 4 (the only gamma doc) never does
        builder.add_diffusion(0, 4, timestamp=1)
        builder.add_diffusion(1, 4, timestamp=1)
        builder.add_diffusion(2, 0, timestamp=2)
        builder.add_diffusion(3, 2, timestamp=2)
        builder.add_diffusion(5, 1, timestamp=3)
    return builder.build()


class TestSelectQueries:
    def test_no_diffusion_links_yields_no_queries(self):
        graph = _graph(diffusion=False)
        assert select_queries(graph, min_frequency=1) == []

    def test_min_frequency_threshold(self):
        graph = _graph()
        terms = {q.term for q in select_queries(graph, min_frequency=5)}
        assert terms == {"shared"}  # only the common word hits 5 diffusing docs
        terms = {q.term for q in select_queries(graph, min_frequency=2)}
        assert {"shared", "plain", "rare"} <= terms
        assert "gamma" not in terms  # its only document never diffuses

    def test_hashtags_only(self):
        graph = _graph(hashtags=True)
        queries = select_queries(graph, min_frequency=1, hashtags_only=True)
        assert queries, "hashtag queries expected"
        assert all(q.term.startswith("#") for q in queries)
        assert {"#shared", "#rare"} == {q.term for q in queries}

    def test_remove_top_frequent(self):
        graph = _graph()
        with_all = {q.term for q in select_queries(graph, min_frequency=1)}
        # the corpus-wide most frequent word is "shared"; banning the top-1
        # must drop exactly it
        without_top = {
            q.term
            for q in select_queries(graph, min_frequency=1, remove_top_frequent=1)
        }
        assert "shared" in with_all
        assert "shared" not in without_top
        assert without_top == with_all - {"shared"}

    def test_max_queries_truncates_most_common_first(self):
        graph = _graph()
        all_queries = select_queries(graph, min_frequency=1)
        capped = select_queries(graph, min_frequency=1, max_queries=2)
        assert len(capped) == 2
        assert [q.term for q in capped] == [q.term for q in all_queries[:2]]
        # frequencies are non-increasing (most_common order)
        frequencies = [q.frequency for q in all_queries]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_relevant_users_are_diffusing_publishers(self):
        graph = _graph()
        queries = {q.term: q for q in select_queries(graph, min_frequency=1)}
        # "rare" appears in diffusing docs 1 (user 0) and 3 (user 1)
        np.testing.assert_array_equal(queries["rare"].relevant_users, [0, 1])
        # "gamma" only lives in doc 4, which never diffuses
        assert "gamma" not in queries

    def test_word_ids_match_vocabulary(self):
        graph = _graph()
        for query in select_queries(graph, min_frequency=1):
            assert graph.vocabulary.word_of(query.word_id) == query.term


class TestFrequencyBands:
    def test_empty_input(self):
        bands = queries_by_frequency_band([], n_bands=4)
        assert len(bands) == 4
        assert all(band == [] for band in bands)

    def test_single_frequency_collapses_to_first_band(self):
        graph = _graph()
        queries = [q for q in select_queries(graph, min_frequency=1) if q.frequency == 2]
        bands = queries_by_frequency_band(queries, n_bands=3)
        assert bands[0] == queries
        assert bands[1] == [] and bands[2] == []

    def test_bands_partition_queries(self):
        graph = _graph()
        queries = select_queries(graph, min_frequency=1)
        bands = queries_by_frequency_band(queries, n_bands=3)
        flattened = [q for band in bands for q in band]
        assert sorted(q.term for q in flattened) == sorted(q.term for q in queries)

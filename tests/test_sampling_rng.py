"""Tests for repro.sampling.rng."""

import numpy as np
import pytest

from repro.sampling import SeedSequenceFactory, derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_independent(self):
        children = spawn_rngs(0, 2)
        assert not np.allclose(children[0].random(10), children[1].random(10))

    def test_deterministic_from_seed(self):
        a = [g.random() for g in spawn_rngs(5, 3)]
        b = [g.random() for g in spawn_rngs(5, 3)]
        assert a == b

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(9, salt=1) == derive_seed(9, salt=1)

    def test_salt_changes_seed(self):
        assert derive_seed(9, salt=1) != derive_seed(9, salt=2)


class TestSeedSequenceFactory:
    def test_same_name_same_seed(self):
        factory = SeedSequenceFactory(0)
        assert factory.seed_for("gibbs") == factory.seed_for("gibbs")

    def test_different_names_differ(self):
        factory = SeedSequenceFactory(0)
        assert factory.seed_for("gibbs") != factory.seed_for("dataset")

    def test_rng_for_is_seeded(self):
        factory = SeedSequenceFactory(3)
        a = factory.rng_for("x").random(3)
        b = factory.rng_for("x").random(3)
        np.testing.assert_array_equal(a, b)

    def test_root_seed_controls_everything(self):
        assert (
            SeedSequenceFactory(1).seed_for("a") == SeedSequenceFactory(1).seed_for("a")
        )
        assert (
            SeedSequenceFactory(1).seed_for("a") != SeedSequenceFactory(2).seed_for("a")
        )

"""Tests for the SLO tracker: hand-computed burn rates, windows, gauges."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.slo import DEFAULT_WINDOWS, SloTracker, burn_rate


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBurnRate:
    def test_hand_computed_values(self):
        # 2 bad of 100 against a 99% target: 2% observed / 1% budget = 2.0
        assert burn_rate(2, 100, 0.99) == pytest.approx(2.0)
        # burning exactly at budget speed
        assert burn_rate(1, 1000, 0.999) == pytest.approx(1.0)
        # half the budget speed
        assert burn_rate(5, 1000, 0.99) == pytest.approx(0.5)

    def test_edge_cases(self):
        assert burn_rate(0, 0, 0.99) == 0.0
        assert burn_rate(0, 100, 0.99) == 0.0
        # a 100% target has no budget: any failure is an infinite burn
        assert burn_rate(1, 100, 1.0) == math.inf
        assert burn_rate(0, 100, 1.0) == 0.0


class TestSloTracker:
    def _tracker(self, clock, **overrides):
        options = dict(
            availability_target=0.99,
            latency_target=0.9,
            latency_threshold=0.25,
            windows=(60.0, 600.0),
            bucket_seconds=10.0,
            clock=clock,
        )
        options.update(overrides)
        return SloTracker(**options)

    def test_availability_burn_matches_hand_computation(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        for _ in range(98):
            tracker.record("/rank", 200, 0.01)
        for _ in range(2):
            tracker.record("/rank", 500, 0.01)
        snapshot = tracker.snapshot()
        availability = snapshot["routes"]["/rank"]["availability"]["60"]
        assert availability["total"] == 100
        assert availability["bad"] == 2
        # 2/100 observed over a 1% budget = burn 2.0, exactly
        assert availability["burn_rate"] == pytest.approx(2.0)

    def test_latency_burn_excludes_failed_requests(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        # 10 failures: availability-bad, excluded from the latency objective
        for _ in range(10):
            tracker.record("/rank", 500, 1.0)
        # 40 fast and 10 slow successes
        for _ in range(40):
            tracker.record("/rank", 200, 0.01)
        for _ in range(10):
            tracker.record("/rank", 200, 0.5)
        latency = tracker.snapshot()["routes"]["/rank"]["latency"]["60"]
        assert latency["total"] == 50
        assert latency["bad"] == 10
        # 10/50 observed over a 10% budget = burn 2.0
        assert latency["burn_rate"] == pytest.approx(2.0)

    def test_client_errors_spend_no_budget(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        tracker.record("/rank", 404, 0.01)
        availability = tracker.snapshot()["routes"]["/rank"]["availability"]["60"]
        assert availability["bad"] == 0
        assert availability["burn_rate"] == 0.0

    def test_short_window_cools_off_while_long_window_remembers(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        tracker.record("/rank", 500, 0.01)
        clock.advance(120.0)  # past the 60s window, inside the 600s one
        for _ in range(9):
            tracker.record("/rank", 200, 0.01)
        availability = tracker.snapshot()["routes"]["/rank"]["availability"]
        assert availability["60"]["bad"] == 0
        assert availability["60"]["total"] == 9
        assert availability["600"]["bad"] == 1
        assert availability["600"]["total"] == 10
        # 1/10 over a 1% budget = burn 10.0 on the long window only
        assert availability["600"]["burn_rate"] == pytest.approx(10.0)

    def test_worst_burn_names_the_hottest_cell(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        tracker.record("/rank", 200, 0.01)
        tracker.record("/top-k", 500, 0.01)
        worst = tracker.worst_burn()
        assert worst["route"] == "/top-k"
        assert worst["objective"] == "availability"
        assert worst["window"] == "60"
        # 1/1 bad over a 1% budget
        assert worst["burn_rate"] == pytest.approx(100.0)

    def test_worst_burn_on_no_traffic(self):
        tracker = self._tracker(FakeClock())
        assert tracker.worst_burn() == {
            "burn_rate": 0.0, "route": None, "objective": None, "window": None
        }

    def test_snapshot_window_keys_are_compact(self):
        tracker = SloTracker(clock=FakeClock())
        tracker.record("/rank", 200, 0.01)
        keys = set(tracker.snapshot()["routes"]["/rank"]["availability"])
        assert keys == {f"{w:g}" for w in DEFAULT_WINDOWS}

    def test_export_gauges_lands_burn_rates_in_the_registry(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        for _ in range(98):
            tracker.record("/rank", 200, 0.01)
        for _ in range(2):
            tracker.record("/rank", 500, 0.01)
        registry = MetricsRegistry()
        tracker.export_gauges(registry)
        snapshot = registry.snapshot()
        gauges = {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for entry in snapshot["gauges"]
            if entry["name"] == "repro_slo_burn_rate"
        }
        key = (("objective", "availability"), ("route", "/rank"),
               ("window", "60"))
        assert gauges[key] == pytest.approx(2.0)
        # route × objective × window series
        assert len(gauges) == 4

    def test_export_gauges_respects_disabled_registry(self):
        tracker = self._tracker(FakeClock())
        tracker.record("/rank", 500, 0.01)
        registry = NullRegistry()
        tracker.export_gauges(registry)
        assert registry.snapshot()["gauges"] == []

    def test_pruning_discards_ancient_buckets(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        tracker.record("/rank", 500, 0.01)
        clock.advance(10_000.0)  # far past the longest window
        for _ in range(1024):  # trip the periodic prune
            tracker.record("/rank", 200, 0.01)
        counts = tracker._routes["/rank"].buckets
        oldest = int((clock.now - 600.0) // 10.0) - 1
        assert all(index >= oldest for index in counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            SloTracker(availability_target=0.0)
        with pytest.raises(ValueError):
            SloTracker(latency_target=1.5)
        with pytest.raises(ValueError):
            SloTracker(latency_threshold=0.0)
        with pytest.raises(ValueError):
            SloTracker(bucket_seconds=0.0)
        with pytest.raises(ValueError):
            SloTracker(windows=())

"""Tests for the offset logistic-regression trainer."""

import numpy as np
import pytest

from repro.diffusion import LogisticTrainer, LogisticTrainerConfig


def separable_data(rng, n=400):
    x = rng.normal(size=(n, 2))
    logits = 2.0 * x[:, 0] - 1.0 * x[:, 1] + 0.5
    labels = (rng.random(n) < 1 / (1 + np.exp(-logits))).astype(float)
    return x, labels


class TestFit:
    def test_learns_signs(self, rng):
        x, y = separable_data(rng)
        fit = LogisticTrainer(LogisticTrainerConfig(n_iterations=300)).fit(x, y)
        assert fit.weights[0] > 0.5
        assert fit.weights[1] < -0.2

    def test_predictions_discriminate(self, rng):
        x, y = separable_data(rng)
        fit = LogisticTrainer(LogisticTrainerConfig(n_iterations=300)).fit(x, y)
        probs = fit.predict_proba(x)
        assert probs[y == 1].mean() > probs[y == 0].mean() + 0.2

    def test_loss_decreases(self, rng):
        x, y = separable_data(rng)
        trainer = LogisticTrainer(LogisticTrainerConfig(n_iterations=5))
        short = trainer.fit(x, y)
        longer = LogisticTrainer(LogisticTrainerConfig(n_iterations=200)).fit(x, y)
        assert longer.final_loss <= short.final_loss

    def test_offsets_shift_logits(self, rng):
        x, y = separable_data(rng)
        fit = LogisticTrainer().fit(x, y)
        base = fit.logits(x[:3])
        shifted = fit.logits(x[:3], offsets=np.full(3, 2.0))
        np.testing.assert_allclose(shifted - base, 2.0)

    def test_offset_training_absorbs_offset(self, rng):
        """A constant positive offset on positives should reduce the bias."""
        x, y = separable_data(rng)
        offsets = 3.0 * y  # informative offset
        fit = LogisticTrainer(LogisticTrainerConfig(n_iterations=200)).fit(
            x, y, offsets=offsets
        )
        fit_no = LogisticTrainer(LogisticTrainerConfig(n_iterations=200)).fit(x, y)
        assert fit.bias < fit_no.bias

    def test_warm_start(self, rng):
        x, y = separable_data(rng)
        cold = LogisticTrainer(LogisticTrainerConfig(n_iterations=1)).fit(x, y)
        warm = LogisticTrainer(LogisticTrainerConfig(n_iterations=1)).fit(
            x, y, initial_weights=np.array([2.0, -1.0]), initial_bias=0.5
        )
        assert warm.final_loss < cold.final_loss


class TestStandardize:
    def test_scale_invariance(self, rng):
        """With standardisation, a tiny-scale feature is learned as well."""
        x, y = separable_data(rng)
        x_scaled = x.copy()
        x_scaled[:, 0] *= 1e-4
        fit = LogisticTrainer(
            LogisticTrainerConfig(n_iterations=300, standardize=True)
        ).fit(x_scaled, y)
        probs = fit.predict_proba(x_scaled)
        assert probs[y == 1].mean() > probs[y == 0].mean() + 0.2
        # folded-back raw weight must be large to compensate the tiny scale
        assert abs(fit.weights[0]) > 1e3

    def test_constant_column_is_safe(self, rng):
        x, y = separable_data(rng)
        x_const = np.column_stack([x, np.ones(len(x))])
        fit = LogisticTrainer(
            LogisticTrainerConfig(n_iterations=100, standardize=True)
        ).fit(x_const, y)
        assert np.all(np.isfinite(fit.weights))

    def test_standardized_matches_plain_predictions(self, rng):
        x, y = separable_data(rng)
        plain = LogisticTrainer(LogisticTrainerConfig(n_iterations=500)).fit(x, y)
        standardized = LogisticTrainer(
            LogisticTrainerConfig(n_iterations=500, standardize=True)
        ).fit(x, y)
        # both converge to similar decision functions
        corr = np.corrcoef(plain.logits(x), standardized.logits(x))[0, 1]
        assert corr > 0.99


class TestNonnegative:
    def test_projection_enforced(self, rng):
        x, y = separable_data(rng)
        # feature 1 truly has a negative weight; projection pins it at >= 0
        fit = LogisticTrainer(
            LogisticTrainerConfig(n_iterations=200, nonnegative=(1,))
        ).fit(x, y)
        assert fit.weights[1] >= 0.0
        assert fit.weights[0] > 0.0


class TestValidation:
    def test_rejects_non_binary_labels(self, rng):
        with pytest.raises(ValueError):
            LogisticTrainer().fit(np.ones((3, 1)), np.array([0.0, 0.5, 1.0]))

    def test_rejects_misaligned(self, rng):
        with pytest.raises(ValueError):
            LogisticTrainer().fit(np.ones((3, 1)), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            LogisticTrainer().fit(
                np.ones((2, 1)), np.array([0.0, 1.0]), offsets=np.zeros(3)
            )

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            LogisticTrainer().fit(np.ones(3), np.array([0.0, 1.0, 0.0]))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            LogisticTrainer(LogisticTrainerConfig(learning_rate=0.0))
        with pytest.raises(ValueError):
            LogisticTrainer(LogisticTrainerConfig(n_iterations=0))

"""Tests for data segmentation and workload scheduling."""

import numpy as np
import pytest

from repro.core import CPDConfig, DiffusionParameters
from repro.core.gibbs import CPDSampler
from repro.parallel import (
    WorkloadModel,
    build_schedule,
    build_segments,
    measure_workload_model,
    segment_users_by_topic,
)


class TestSegmentation:
    def test_segments_partition_users(self, twitter_tiny):
        graph, _ = twitter_tiny
        segments = segment_users_by_topic(graph, 4, lda_iterations=5, rng=0)
        users = sorted(u for s in segments for u in s.users.tolist())
        assert users == list(range(graph.n_users))

    def test_segments_partition_documents(self, twitter_tiny):
        graph, _ = twitter_tiny
        segments = segment_users_by_topic(graph, 4, lda_iterations=5, rng=0)
        docs = sorted(d for s in segments for d in s.doc_ids.tolist())
        assert docs == list(range(graph.n_documents))

    def test_user_documents_stay_together(self, twitter_tiny):
        """Guideline 1 of Sect. 4.3: one user's docs share a segment."""
        graph, _ = twitter_tiny
        segments = segment_users_by_topic(graph, 4, lda_iterations=5, rng=0)
        doc_user = graph.document_user_array()
        for segment in segments:
            user_set = set(segment.users.tolist())
            assert all(int(doc_user[d]) in user_set for d in segment.doc_ids)

    def test_link_counts_cover_incident_links(self, twitter_tiny):
        graph, _ = twitter_tiny
        segments = segment_users_by_topic(graph, 3, lda_iterations=5, rng=0)
        # every friendship link touches at least one segment's count
        assert sum(s.n_friendship_links for s in segments) >= graph.n_friendship_links

    def test_build_segments_validation(self, twitter_tiny):
        graph, _ = twitter_tiny
        with pytest.raises(ValueError):
            build_segments(graph, np.zeros(3))

    def test_explicit_mapping(self, twitter_tiny):
        graph, _ = twitter_tiny
        mapping = np.arange(graph.n_users) % 2
        segments = build_segments(graph, mapping)
        assert len(segments) == 2


class TestWorkloadModel:
    def test_estimate_is_linear(self):
        model = WorkloadModel(0.1, 0.01, 0.02)
        from repro.parallel import DataSegment

        segment = DataSegment(
            0, np.arange(3), np.arange(10), n_friendship_links=5, n_diffusion_links=4
        )
        assert model.estimate_segment(segment) == pytest.approx(
            10 * 0.1 + 5 * 0.01 + 4 * 0.02
        )

    def test_measured_model_positive(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        sampler = CPDSampler(
            graph, tiny_config, DiffusionParameters.initial(4, 8), rng=0
        )
        model = measure_workload_model(sampler, probe_documents=10)
        assert model.seconds_per_document > 0
        assert model.seconds_per_friendship_link >= 0


class TestSchedule:
    def test_schedule_covers_all_documents(self, twitter_tiny):
        graph, _ = twitter_tiny
        segments = segment_users_by_topic(graph, 4, lda_iterations=5, rng=0)
        model = WorkloadModel(1e-4, 1e-5, 1e-5)
        schedule = build_schedule(segments, model, n_workers=2)
        docs = np.sort(
            np.concatenate([schedule.worker_doc_ids(w) for w in range(2)])
        )
        np.testing.assert_array_equal(docs, np.arange(graph.n_documents))

    def test_estimated_seconds_shape(self, twitter_tiny):
        graph, _ = twitter_tiny
        segments = segment_users_by_topic(graph, 4, lda_iterations=5, rng=0)
        schedule = build_schedule(segments, WorkloadModel(1e-4, 0, 0), n_workers=3)
        assert schedule.estimated_worker_seconds().shape == (3,)

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            build_schedule([], WorkloadModel(1, 1, 1), 2)

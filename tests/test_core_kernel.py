"""Parity tests: the fast sweep kernels against the reference loops.

The vectorized and compiled kernels must reproduce the reference
implementation's Eq. 13 / Eq. 14 conditional log-weights to
floating-point noise on every document, for every model-design ablation,
and a matched-seed fit must yield identical assignments (hence equal
NMI / perplexity). None of the compiled cases assert on the kernel's
*class*: without a C toolchain `"compiled"` degrades to the vectorized
kernel, and every parity statement must hold just the same.
"""

import numpy as np
import pytest

from repro.core import CPDConfig, CPDModel, DiffusionParameters
from repro.core.gibbs import CPDSampler
from repro.core.kernel import ReferenceKernel, VectorizedKernel, make_kernel
from repro.evaluation import normalized_mutual_information

ABLATIONS = {
    "full": {},
    "similarity_diffusion": {"heterogeneity": False},
    "no_factors": {"use_topic_factor": False, "use_individual_factor": False},
    "no_friendship": {"model_friendship": False},
    "no_diffusion": {"model_diffusion": False},
    "no_content": {"community_uses_content": False},
}

KERNELS = ("reference", "vectorized", "compiled")

# building a "compiled" sampler on a toolchain-less host emits the
# documented one-time fallback warning; parity must hold regardless
fallback_ok = pytest.mark.filterwarnings(
    "ignore:compiled sweep kernel unavailable"
)


def _mixed_sampler(graph, sweep_kernel="vectorized", **overrides):
    config = CPDConfig(
        n_communities=4, n_topics=8, rho=0.5, alpha=0.5,
        sweep_kernel=sweep_kernel, **overrides,
    )
    params = DiffusionParameters.initial(4, 8)
    sampler = CPDSampler(graph, config, params, rng=0)
    # mix the state so counts, augmentation variables and eta are all
    # non-trivial before comparing conditionals
    sampler.sweep_documents()
    sampler.sample_lambdas()
    sampler.sample_deltas()
    sampler.params.eta = sampler.aggregate_eta()
    return sampler


class TestKernelSelection:
    def test_default_is_vectorized(self, twitter_tiny, monkeypatch):
        graph, _ = twitter_tiny
        # the default must be env-independent here: this test also runs
        # inside CI's REPRO_SWEEP_KERNEL matrix
        monkeypatch.delenv("REPRO_SWEEP_KERNEL", raising=False)
        config = CPDConfig(n_communities=4, n_topics=8, rho=0.5, alpha=0.5)
        sampler = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=0)
        assert type(sampler.kernel) is VectorizedKernel
        assert sampler.kernel.name == "vectorized"

    def test_reference_switch(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        config = tiny_config.with_overrides(sweep_kernel="reference")
        sampler = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=0)
        assert isinstance(sampler.kernel, ReferenceKernel)
        assert make_kernel(sampler).name == "reference"

    def test_invalid_switch_rejected(self):
        with pytest.raises(ValueError):
            CPDConfig(sweep_kernel="turbo")

    @fallback_ok
    def test_compiled_switch(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        config = tiny_config.with_overrides(sweep_kernel="compiled")
        sampler = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=0)
        # kernel is CompiledKernel, or VectorizedKernel on a toolchain-less
        # host — either way a VectorizedKernel subtype that can sweep
        assert isinstance(sampler.kernel, VectorizedKernel)
        assert sampler.kernel.name in ("compiled", "vectorized")
        if sampler.kernel.name == "vectorized":
            assert sampler.kernel.fallback_reason


class TestConditionalParity:
    """Log-weights of the fast kernels agree with reference to ~1e-10."""

    @fallback_ok
    @pytest.mark.parametrize("kernel", ("vectorized", "compiled"))
    @pytest.mark.parametrize("ablation", sorted(ABLATIONS))
    def test_topic_and_community_log_weights(self, twitter_tiny, ablation, kernel):
        graph, _ = twitter_tiny
        sampler = _mixed_sampler(graph, sweep_kernel=kernel, **ABLATIONS[ablation])
        fast = sampler.kernel
        assert isinstance(fast, VectorizedKernel)
        for doc_id in range(graph.n_documents):
            community, topic = sampler.state.unassign(doc_id)
            sampler.popularity.decrement(int(sampler._doc_time[doc_id]), topic)

            np.testing.assert_allclose(
                fast.topic_log_weights(doc_id, community),
                sampler.reference_topic_log_weights(doc_id, community),
                rtol=1e-10,
                atol=1e-9,
            )
            for candidate in (0, 3, 7):
                np.testing.assert_allclose(
                    fast.community_log_weights(doc_id, candidate),
                    sampler.reference_community_log_weights(doc_id, candidate),
                    rtol=1e-10,
                    atol=1e-9,
                )

            sampler.popularity.increment(int(sampler._doc_time[doc_id]), topic)
            sampler.state.assign(doc_id, community, topic)

    @fallback_ok
    @pytest.mark.parametrize("kernel", ("vectorized", "compiled"))
    def test_parity_on_dblp(self, dblp_tiny, kernel):
        graph, _ = dblp_tiny
        sampler = _mixed_sampler(graph, sweep_kernel=kernel)
        for doc_id in range(0, graph.n_documents, 3):
            community, topic = sampler.state.unassign(doc_id)
            sampler.popularity.decrement(int(sampler._doc_time[doc_id]), topic)
            np.testing.assert_allclose(
                sampler.kernel.topic_log_weights(doc_id, community),
                sampler.reference_topic_log_weights(doc_id, community),
                rtol=1e-10,
                atol=1e-9,
            )
            sampler.popularity.increment(int(sampler._doc_time[doc_id]), topic)
            sampler.state.assign(doc_id, community, topic)


class TestMatchedSeedFits:
    """All kernels consume one uniform per draw, so matched seeds align."""

    @pytest.fixture(scope="class")
    def fits(self, twitter_tiny):
        graph, truth = twitter_tiny
        config = CPDConfig(
            n_communities=4, n_topics=8, n_iterations=5, rho=0.5, alpha=0.5
        )
        reference = CPDModel(
            config.with_overrides(sweep_kernel="reference"), rng=11
        ).fit(graph)
        vectorized = CPDModel(config, rng=11).fit(graph)
        return graph, truth, reference, vectorized

    def test_assignments_identical(self, fits):
        _, _, reference, vectorized = fits
        np.testing.assert_array_equal(reference.doc_topic, vectorized.doc_topic)
        np.testing.assert_array_equal(
            reference.doc_community, vectorized.doc_community
        )

    @fallback_ok
    def test_compiled_fit_matches(self, fits, twitter_tiny):
        graph, _, reference, _ = fits
        config = CPDConfig(
            n_communities=4, n_topics=8, n_iterations=5, rho=0.5, alpha=0.5,
            sweep_kernel="compiled",
        )
        compiled = CPDModel(config, rng=11).fit(graph)
        np.testing.assert_array_equal(reference.doc_topic, compiled.doc_topic)
        np.testing.assert_array_equal(
            reference.doc_community, compiled.doc_community
        )
        np.testing.assert_allclose(reference.pi, compiled.pi, atol=1e-12)
        np.testing.assert_allclose(reference.theta, compiled.theta, atol=1e-12)
        np.testing.assert_allclose(reference.phi, compiled.phi, atol=1e-12)

    def test_nmi_equal_within_noise(self, fits):
        _, truth, reference, vectorized = fits
        nmi_ref = normalized_mutual_information(
            truth.doc_community, reference.doc_community
        )
        nmi_vec = normalized_mutual_information(
            truth.doc_community, vectorized.doc_community
        )
        assert nmi_vec == pytest.approx(nmi_ref, abs=1e-9)

    def test_estimators_equal_within_noise(self, fits):
        _, _, reference, vectorized = fits
        np.testing.assert_allclose(reference.pi, vectorized.pi, atol=1e-12)
        np.testing.assert_allclose(reference.theta, vectorized.theta, atol=1e-12)
        np.testing.assert_allclose(reference.phi, vectorized.phi, atol=1e-12)
        np.testing.assert_allclose(
            reference.diffusion.eta, vectorized.diffusion.eta, atol=1e-12
        )

    @fallback_ok
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fixed_communities_supported(self, twitter_tiny, kernel):
        graph, _ = twitter_tiny
        config = CPDConfig(
            n_communities=4, n_topics=8, rho=0.5, alpha=0.5, sweep_kernel=kernel
        )
        fixed = np.zeros(graph.n_documents, dtype=np.int64)
        sampler = CPDSampler(
            graph, config, DiffusionParameters.initial(4, 8), rng=0,
            fixed_communities=fixed,
        )
        sampler.sweep_documents()
        np.testing.assert_array_equal(sampler.state.doc_community, 0)
        sampler.state.check_consistency()


class TestMidResampleGuard:
    def test_unassigned_neighbor_skipped_like_reference(self, twitter_tiny):
        """Off-contract: another linked document is unassigned — both
        kernels must skip its links rather than wrap negative indices."""
        graph, _ = twitter_tiny
        sampler = _mixed_sampler(graph)
        link = 0
        source = int(sampler.e_src[link])
        target = int(sampler.e_tgt[link])
        if source == target:
            pytest.skip("scenario produced a self-link")
        # unassign BOTH endpoints: target is the queried document, source is
        # the out-of-contract unassigned neighbor
        for doc in (source, target):
            _, topic = sampler.state.unassign(doc)
            sampler.popularity.decrement(int(sampler._doc_time[doc]), topic)
        np.testing.assert_allclose(
            sampler.kernel.community_log_weights(target, 2),
            sampler.reference_community_log_weights(target, 2),
            rtol=1e-10,
            atol=1e-9,
        )


class TestSweepEquivalence:
    @fallback_ok
    def test_sweep_keeps_consistency_all_kernels(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        for kernel in KERNELS:
            config = tiny_config.with_overrides(sweep_kernel=kernel)
            sampler = CPDSampler(
                graph, config, DiffusionParameters.initial(4, 8), rng=3
            )
            sampler.sweep_documents()
            sampler.state.check_consistency()
            assert np.all(sampler.state.doc_topic >= 0)

    @fallback_ok
    def test_matched_seed_sweep_draws_identical(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        samplers = []
        for kernel in KERNELS:
            config = tiny_config.with_overrides(sweep_kernel=kernel)
            sampler = CPDSampler(
                graph, config, DiffusionParameters.initial(4, 8), rng=9
            )
            sampler.sweep_documents()
            sampler.sweep_documents()
            samplers.append(sampler)
        for other in samplers[1:]:
            np.testing.assert_array_equal(
                samplers[0].state.doc_topic, other.state.doc_topic
            )
            np.testing.assert_array_equal(
                samplers[0].state.doc_community, other.state.doc_community
            )

"""Parity tests: the vectorized sweep kernel against the reference loops.

The vectorized kernel must reproduce the reference implementation's
Eq. 13 / Eq. 14 conditional log-weights to floating-point noise on every
document, for every model-design ablation, and a matched-seed fit must
yield identical assignments (hence equal NMI / perplexity).
"""

import numpy as np
import pytest

from repro.core import CPDConfig, CPDModel, DiffusionParameters
from repro.core.gibbs import CPDSampler
from repro.core.kernel import ReferenceKernel, VectorizedKernel, make_kernel
from repro.evaluation import normalized_mutual_information

ABLATIONS = {
    "full": {},
    "similarity_diffusion": {"heterogeneity": False},
    "no_factors": {"use_topic_factor": False, "use_individual_factor": False},
    "no_friendship": {"model_friendship": False},
    "no_diffusion": {"model_diffusion": False},
    "no_content": {"community_uses_content": False},
}


def _mixed_sampler(graph, **overrides):
    config = CPDConfig(n_communities=4, n_topics=8, rho=0.5, alpha=0.5, **overrides)
    params = DiffusionParameters.initial(4, 8)
    sampler = CPDSampler(graph, config, params, rng=0)
    # mix the state so counts, augmentation variables and eta are all
    # non-trivial before comparing conditionals
    sampler.sweep_documents()
    sampler.sample_lambdas()
    sampler.sample_deltas()
    sampler.params.eta = sampler.aggregate_eta()
    return sampler


class TestKernelSelection:
    def test_default_is_vectorized(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        sampler = CPDSampler(
            graph, tiny_config, DiffusionParameters.initial(4, 8), rng=0
        )
        assert isinstance(sampler.kernel, VectorizedKernel)
        assert sampler.kernel.name == "vectorized"

    def test_reference_switch(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        config = tiny_config.with_overrides(sweep_kernel="reference")
        sampler = CPDSampler(graph, config, DiffusionParameters.initial(4, 8), rng=0)
        assert isinstance(sampler.kernel, ReferenceKernel)
        assert make_kernel(sampler).name == "reference"

    def test_invalid_switch_rejected(self):
        with pytest.raises(ValueError):
            CPDConfig(sweep_kernel="turbo")


class TestConditionalParity:
    """Log-weights of both kernels agree to ~1e-10 before any sampling."""

    @pytest.mark.parametrize("ablation", sorted(ABLATIONS))
    def test_topic_and_community_log_weights(self, twitter_tiny, ablation):
        graph, _ = twitter_tiny
        sampler = _mixed_sampler(graph, **ABLATIONS[ablation])
        vectorized = sampler.kernel
        assert isinstance(vectorized, VectorizedKernel)
        for doc_id in range(graph.n_documents):
            community, topic = sampler.state.unassign(doc_id)
            sampler.popularity.decrement(int(sampler._doc_time[doc_id]), topic)

            np.testing.assert_allclose(
                vectorized.topic_log_weights(doc_id, community),
                sampler.reference_topic_log_weights(doc_id, community),
                rtol=1e-10,
                atol=1e-9,
            )
            for candidate in (0, 3, 7):
                np.testing.assert_allclose(
                    vectorized.community_log_weights(doc_id, candidate),
                    sampler.reference_community_log_weights(doc_id, candidate),
                    rtol=1e-10,
                    atol=1e-9,
                )

            sampler.popularity.increment(int(sampler._doc_time[doc_id]), topic)
            sampler.state.assign(doc_id, community, topic)

    def test_parity_on_dblp(self, dblp_tiny):
        graph, _ = dblp_tiny
        sampler = _mixed_sampler(graph)
        for doc_id in range(0, graph.n_documents, 3):
            community, topic = sampler.state.unassign(doc_id)
            sampler.popularity.decrement(int(sampler._doc_time[doc_id]), topic)
            np.testing.assert_allclose(
                sampler.kernel.topic_log_weights(doc_id, community),
                sampler.reference_topic_log_weights(doc_id, community),
                rtol=1e-10,
                atol=1e-9,
            )
            sampler.popularity.increment(int(sampler._doc_time[doc_id]), topic)
            sampler.state.assign(doc_id, community, topic)


class TestMatchedSeedFits:
    """Both kernels consume one uniform per draw, so matched seeds align."""

    @pytest.fixture(scope="class")
    def fits(self, twitter_tiny):
        graph, truth = twitter_tiny
        config = CPDConfig(
            n_communities=4, n_topics=8, n_iterations=5, rho=0.5, alpha=0.5
        )
        reference = CPDModel(
            config.with_overrides(sweep_kernel="reference"), rng=11
        ).fit(graph)
        vectorized = CPDModel(config, rng=11).fit(graph)
        return graph, truth, reference, vectorized

    def test_assignments_identical(self, fits):
        _, _, reference, vectorized = fits
        np.testing.assert_array_equal(reference.doc_topic, vectorized.doc_topic)
        np.testing.assert_array_equal(
            reference.doc_community, vectorized.doc_community
        )

    def test_nmi_equal_within_noise(self, fits):
        _, truth, reference, vectorized = fits
        nmi_ref = normalized_mutual_information(
            truth.doc_community, reference.doc_community
        )
        nmi_vec = normalized_mutual_information(
            truth.doc_community, vectorized.doc_community
        )
        assert nmi_vec == pytest.approx(nmi_ref, abs=1e-9)

    def test_estimators_equal_within_noise(self, fits):
        _, _, reference, vectorized = fits
        np.testing.assert_allclose(reference.pi, vectorized.pi, atol=1e-12)
        np.testing.assert_allclose(reference.theta, vectorized.theta, atol=1e-12)
        np.testing.assert_allclose(reference.phi, vectorized.phi, atol=1e-12)
        np.testing.assert_allclose(
            reference.diffusion.eta, vectorized.diffusion.eta, atol=1e-12
        )

    def test_fixed_communities_supported(self, twitter_tiny):
        graph, _ = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, rho=0.5, alpha=0.5)
        fixed = np.zeros(graph.n_documents, dtype=np.int64)
        sampler = CPDSampler(
            graph, config, DiffusionParameters.initial(4, 8), rng=0,
            fixed_communities=fixed,
        )
        sampler.sweep_documents()
        np.testing.assert_array_equal(sampler.state.doc_community, 0)
        sampler.state.check_consistency()


class TestMidResampleGuard:
    def test_unassigned_neighbor_skipped_like_reference(self, twitter_tiny):
        """Off-contract: another linked document is unassigned — both
        kernels must skip its links rather than wrap negative indices."""
        graph, _ = twitter_tiny
        sampler = _mixed_sampler(graph)
        link = 0
        source = int(sampler.e_src[link])
        target = int(sampler.e_tgt[link])
        if source == target:
            pytest.skip("scenario produced a self-link")
        # unassign BOTH endpoints: target is the queried document, source is
        # the out-of-contract unassigned neighbor
        for doc in (source, target):
            _, topic = sampler.state.unassign(doc)
            sampler.popularity.decrement(int(sampler._doc_time[doc]), topic)
        np.testing.assert_allclose(
            sampler.kernel.community_log_weights(target, 2),
            sampler.reference_community_log_weights(target, 2),
            rtol=1e-10,
            atol=1e-9,
        )


class TestSweepEquivalence:
    def test_sweep_keeps_consistency_both_kernels(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        for kernel in ("reference", "vectorized"):
            config = tiny_config.with_overrides(sweep_kernel=kernel)
            sampler = CPDSampler(
                graph, config, DiffusionParameters.initial(4, 8), rng=3
            )
            sampler.sweep_documents()
            sampler.state.check_consistency()
            assert np.all(sampler.state.doc_topic >= 0)

    def test_matched_seed_sweep_draws_identical(self, twitter_tiny, tiny_config):
        graph, _ = twitter_tiny
        samplers = []
        for kernel in ("reference", "vectorized"):
            config = tiny_config.with_overrides(sweep_kernel=kernel)
            sampler = CPDSampler(
                graph, config, DiffusionParameters.initial(4, 8), rng=9
            )
            sampler.sweep_documents()
            sampler.sweep_documents()
            samplers.append(sampler)
        np.testing.assert_array_equal(
            samplers[0].state.doc_topic, samplers[1].state.doc_topic
        )
        np.testing.assert_array_equal(
            samplers[0].state.doc_community, samplers[1].state.doc_community
        )

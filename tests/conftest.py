"""Shared fixtures: tiny scenario graphs and a pre-fitted CPD result.

Expensive artifacts (graph generation, CPD fits) are session-scoped so the
whole suite pays for them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPDConfig, CPDModel
from repro.datasets import dblp_scenario, separated_scenario, twitter_scenario


@pytest.fixture(scope="session")
def twitter_tiny():
    """Twitter-flavoured tiny graph with ground truth."""
    return twitter_scenario("tiny", rng=42)


@pytest.fixture(scope="session")
def dblp_tiny():
    """DBLP-flavoured tiny graph with ground truth."""
    return dblp_scenario("tiny", rng=7)


@pytest.fixture(scope="session")
def tiny_config():
    """CPD config matched to the tiny scenarios' planted dimensions."""
    return CPDConfig(
        n_communities=4, n_topics=8, n_iterations=10, rho=0.5, alpha=0.5
    )


@pytest.fixture(scope="session")
def fitted_cpd(twitter_tiny, tiny_config):
    """One CPD fit on the tiny Twitter graph, shared by read-only tests."""
    graph, _truth = twitter_tiny
    return CPDModel(tiny_config, rng=1).fit(graph)


@pytest.fixture(scope="session")
def fitted_cpd_dblp(dblp_tiny, tiny_config):
    """One CPD fit on the tiny DBLP graph, shared by read-only tests."""
    graph, _truth = dblp_tiny
    return CPDModel(tiny_config, rng=2).fit(graph)


@pytest.fixture(scope="session")
def separated_tiny():
    """Sharply separated planted graph — the sharding parity substrate."""
    return separated_scenario("tiny", rng=5)


@pytest.fixture(scope="session")
def parity_config():
    """CPD config matched to the separated-tiny planted dimensions."""
    return CPDConfig(n_communities=4, n_topics=8, n_iterations=12, rho=0.5, alpha=0.5)


@pytest.fixture(scope="session")
def mono_parity(separated_tiny, parity_config):
    """Monolithic fit on the separated scenario (the sharding comparator)."""
    graph, _truth = separated_tiny
    return CPDModel(parity_config, rng=1).fit(graph)


@pytest.fixture(scope="session")
def sharded_parity(separated_tiny, parity_config):
    """One 2-shard community-strategy fit shared by the shard test modules."""
    from repro.shard import fit_shards

    graph, _truth = separated_tiny
    return fit_shards(graph, parity_config, 2, strategy="community", rng=9)


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)

"""Tests for the stdlib sampling profiler: folded output, lifecycle, safety."""

import time

import pytest

from repro.obs.profile import MAX_DEPTH, SamplingProfiler, _frame_label


def _busy(deadline: float) -> int:
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSampling:
    def test_captures_nonempty_folded_stacks(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _busy(time.perf_counter() + 0.15)
        folded = profiler.folded()
        assert folded, "a busy loop under a 1ms sampler must be observed"
        # folded format: semicolon-joined frames, space, positive count
        stack, count = folded[0].rsplit(" ", 1)
        assert int(count) > 0
        assert all(":" in frame for frame in stack.split(";"))
        # this very test function is on the observed stack somewhere
        assert any("test_obs_profile" in line for line in folded)

    def test_hottest_stack_first(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _busy(time.perf_counter() + 0.15)
        counts = [int(line.rsplit(" ", 1)[1]) for line in profiler.folded()]
        assert counts == sorted(counts, reverse=True)

    def test_stats_account_for_samples(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        _busy(time.perf_counter() + 0.1)
        profiler.stop()
        stats = profiler.stats()
        assert stats["ticks"] > 0
        assert stats["samples"] >= stats["ticks"]  # >=1 thread per tick
        assert stats["distinct_stacks"] >= 1
        assert stats["duration_seconds"] > 0.0
        assert stats["interval"] == 0.001

    def test_write_emits_one_line_per_stack(self, tmp_path):
        path = tmp_path / "profile.folded"
        with SamplingProfiler(interval=0.001) as profiler:
            _busy(time.perf_counter() + 0.1)
        written = profiler.write(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert written == len(lines) > 0

    def test_write_with_no_samples_is_an_empty_file(self, tmp_path):
        path = tmp_path / "empty.folded"
        profiler = SamplingProfiler()
        assert profiler.write(path) == 0
        assert path.read_text(encoding="utf-8") == ""


class TestLifecycle:
    def test_double_start_is_an_error(self):
        profiler = SamplingProfiler(interval=0.05)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_is_a_noop(self):
        SamplingProfiler().stop()

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_sampler_excludes_its_own_thread(self):
        # an otherwise idle interpreter: the ticker must never count itself
        with SamplingProfiler(interval=0.001) as profiler:
            _busy(time.perf_counter() + 0.05)
        assert not any(
            "profile:_run" in line for line in profiler.folded()
        )


class TestFrameLabel:
    def test_module_stem_and_function(self):
        frame = next(iter(__import__("sys")._current_frames().values()))
        label = _frame_label(frame)
        assert ":" in label

    def test_deep_recursion_is_truncated(self):
        def recurse(n, profiler_done):
            if n == 0:
                profiler_done()
                return 0
            return recurse(n - 1, profiler_done) + 1

        with SamplingProfiler(interval=0.001) as profiler:
            deadline = time.perf_counter() + 0.1
            recurse(MAX_DEPTH * 2, lambda: _busy(deadline))
        for line in profiler.folded():
            stack = line.rsplit(" ", 1)[0]
            assert len(stack.split(";")) <= MAX_DEPTH

"""Tests for CPD result serialisation (formats v1-v3) and shard manifests."""

import json
import zipfile

import numpy as np
import pytest

from repro.core import (
    ArtifactCorruptError,
    ShardEntry,
    ShardManifest,
    atomic_write_bytes,
    is_shard_manifest,
    load_artifact,
    load_result,
    load_shard_manifest,
    save_result,
    save_shard_manifest,
    verify_artifact,
    verify_shard_manifest,
)
from repro.resilience import FaultPlan, InjectedFault, inject


def _downgrade_to_v1(src_path, dst_path):
    """Rewrite an artifact as the exact v1 layout the old writer produced:
    format_version 1, arrays + meta only, no serving payloads."""
    with zipfile.ZipFile(src_path) as archive:
        meta = json.loads(archive.read("cpd_meta.json"))
        arrays = archive.read("arrays.npz")
    meta["format_version"] = 1
    with zipfile.ZipFile(dst_path, "w") as archive:
        archive.writestr("arrays.npz", arrays)
        archive.writestr("cpd_meta.json", json.dumps(meta))


class TestResultRoundTrip:
    def test_arrays_preserved(self, fitted_cpd, tmp_path):
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path)
        clone = load_result(path)
        np.testing.assert_allclose(clone.pi, fitted_cpd.pi)
        np.testing.assert_allclose(clone.theta, fitted_cpd.theta)
        np.testing.assert_allclose(clone.phi, fitted_cpd.phi)
        np.testing.assert_allclose(clone.eta, fitted_cpd.eta)
        np.testing.assert_array_equal(clone.doc_community, fitted_cpd.doc_community)
        np.testing.assert_array_equal(clone.doc_topic, fitted_cpd.doc_topic)

    def test_parameters_preserved(self, fitted_cpd, tmp_path):
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path)
        clone = load_result(path)
        assert clone.diffusion.comm_weight == pytest.approx(fitted_cpd.diffusion.comm_weight)
        assert clone.diffusion.pop_weight == pytest.approx(fitted_cpd.diffusion.pop_weight)
        assert clone.diffusion.bias == pytest.approx(fitted_cpd.diffusion.bias)
        np.testing.assert_allclose(clone.diffusion.nu, fitted_cpd.diffusion.nu)

    def test_config_preserved(self, fitted_cpd, tmp_path):
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path)
        clone = load_result(path)
        assert clone.config == fitted_cpd.config

    def test_trace_preserved(self, fitted_cpd, tmp_path):
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path)
        clone = load_result(path)
        assert len(clone.trace) == len(fitted_cpd.trace)
        assert clone.trace[0].iteration == fitted_cpd.trace[0].iteration

    def test_graph_name_preserved(self, fitted_cpd, tmp_path):
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path)
        assert load_result(path).graph_name == fitted_cpd.graph_name

    def test_loaded_result_usable_in_apps(self, fitted_cpd, twitter_tiny, tmp_path):
        from repro.apps import DiffusionPredictor

        graph, _ = twitter_tiny
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path)
        clone = load_result(path)
        predictor = DiffusionPredictor(clone, graph)
        assert 0.0 <= predictor.predict(0, 1, 2) <= 1.0

    def test_version_check(self, fitted_cpd, tmp_path):
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path)
        # corrupt the version field
        with zipfile.ZipFile(path) as archive:
            meta = json.loads(archive.read("cpd_meta.json"))
            arrays = archive.read("arrays.npz")
        meta["format_version"] = 999
        bad = tmp_path / "bad.cpd.npz"
        with zipfile.ZipFile(bad, "w") as archive:
            archive.writestr("arrays.npz", arrays)
            archive.writestr("cpd_meta.json", json.dumps(meta))
        with pytest.raises(ValueError, match="supported versions: 1, 2"):
            load_result(bad)


class TestFormatVersions:
    def test_v1_artifacts_still_load(self, fitted_cpd, tmp_path):
        """Backward compatibility: the pre-serving v1 layout must keep working."""
        current = tmp_path / "model.cpd.npz"
        legacy = tmp_path / "legacy.cpd.npz"
        save_result(fitted_cpd, current)
        _downgrade_to_v1(current, legacy)
        clone = load_result(legacy)
        np.testing.assert_allclose(clone.pi, fitted_cpd.pi)
        np.testing.assert_allclose(clone.eta, fitted_cpd.eta)
        assert clone.config == fitted_cpd.config

    def test_v1_artifact_reports_missing_payloads(self, fitted_cpd, tmp_path):
        current = tmp_path / "model.cpd.npz"
        legacy = tmp_path / "legacy.cpd.npz"
        save_result(fitted_cpd, current)
        _downgrade_to_v1(current, legacy)
        artifact = load_artifact(legacy)
        assert artifact.format_version == 1
        assert artifact.vocabulary is None
        assert artifact.graph_summary is None
        assert not artifact.self_contained

    def test_round_trip_with_payloads(self, fitted_cpd, twitter_tiny, tmp_path):
        from repro.serving import GraphSummary

        graph, _ = twitter_tiny
        path = tmp_path / "model.cpd.npz"
        summary = GraphSummary.from_graph(graph)
        save_result(
            fitted_cpd, path, vocabulary=graph.vocabulary, graph_summary=summary
        )
        artifact = load_artifact(path)
        assert artifact.format_version == 3
        assert artifact.self_contained
        assert len(artifact.vocabulary) == len(graph.vocabulary)
        assert artifact.vocabulary.word_of(0) == graph.vocabulary.word_of(0)
        revived = GraphSummary.from_dict(artifact.graph_summary)
        assert revived.stats() == graph.stats()

    def test_without_payloads_round_trips(self, fitted_cpd, tmp_path):
        path = tmp_path / "bare.cpd.npz"
        save_result(fitted_cpd, path)
        artifact = load_artifact(path)
        assert artifact.format_version == 3
        assert artifact.vocabulary is None
        assert artifact.graph_summary is None
        np.testing.assert_allclose(artifact.result.theta, fitted_cpd.theta)

    def test_v2_artifact_still_loads(self, fitted_cpd, tmp_path):
        """The exact v2 layout (no stream cursor key) stays readable."""
        current = tmp_path / "model.cpd.npz"
        legacy = tmp_path / "v2.cpd.npz"
        save_result(fitted_cpd, current)
        with zipfile.ZipFile(current) as archive:
            meta = json.loads(archive.read("cpd_meta.json"))
            arrays = archive.read("arrays.npz")
        meta["format_version"] = 2
        meta.pop("stream_cursor", None)
        with zipfile.ZipFile(legacy, "w") as archive:
            archive.writestr("arrays.npz", arrays)
            archive.writestr("cpd_meta.json", json.dumps(meta))
        artifact = load_artifact(legacy)
        assert artifact.format_version == 2
        assert artifact.stream_cursor is None
        np.testing.assert_allclose(artifact.result.pi, fitted_cpd.pi)

    def test_stream_cursor_round_trips(self, fitted_cpd, tmp_path):
        path = tmp_path / "stream.cpd.npz"
        cursor = {
            "documents_appended": 120,
            "links_appended": 40,
            "refreshes": 3,
            "last_timestamp": 17,
        }
        save_result(fitted_cpd, path, stream_cursor=cursor)
        artifact = load_artifact(path)
        assert artifact.stream_cursor == cursor

    def test_stream_cursor_accepts_to_dict_objects(self, fitted_cpd, tmp_path):
        from repro.stream import StreamCursor

        path = tmp_path / "stream.cpd.npz"
        cursor = StreamCursor(
            documents_appended=5, links_appended=2, refreshes=1, last_timestamp=9
        )
        save_result(fitted_cpd, path, stream_cursor=cursor)
        revived = StreamCursor.from_dict(load_artifact(path).stream_cursor)
        assert revived == cursor

    def test_offline_fit_has_no_cursor(self, fitted_cpd, tmp_path):
        path = tmp_path / "offline.cpd.npz"
        save_result(fitted_cpd, path)
        assert load_artifact(path).stream_cursor is None


def _tamper_entry(src_path, dst_path, name, payload):
    """Rebuild an artifact with one entry's bytes replaced but the original
    meta (and its recorded checksums) kept — container CRCs stay valid, so
    only the recorded-checksum layer can catch the swap."""
    with zipfile.ZipFile(src_path) as archive:
        members = {n: archive.read(n) for n in archive.namelist()}
    members[name] = payload
    with zipfile.ZipFile(dst_path, "w") as archive:
        for member_name, data in members.items():
            archive.writestr(member_name, data)


class TestArtifactIntegrity:
    def test_fresh_save_verifies_clean(self, fitted_cpd, twitter_tiny, tmp_path):
        from repro.serving import GraphSummary

        graph, _ = twitter_tiny
        path = tmp_path / "model.cpd.npz"
        save_result(
            fitted_cpd,
            path,
            vocabulary=graph.vocabulary,
            graph_summary=GraphSummary.from_graph(graph),
        )
        check = verify_artifact(path)
        assert check.ok and check.error is None
        assert check.format_version == 3
        assert {entry.name for entry in check.entries} == {
            "arrays.npz",
            "vocabulary.json",
            "graph_summary.json",
        }
        assert all(entry.ok for entry in check.entries)

    def test_recorded_checksum_mismatch_is_reported(self, fitted_cpd, twitter_tiny, tmp_path):
        graph, _ = twitter_tiny
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path, vocabulary=graph.vocabulary)
        bad = tmp_path / "tampered.cpd.npz"
        _tamper_entry(path, bad, "vocabulary.json", b'{"words": [], "frequencies": []}')
        check = verify_artifact(bad)
        assert not check.ok
        assert "checksum mismatch" in check.error
        (failed,) = [entry for entry in check.entries if not entry.ok]
        assert failed.name == "vocabulary.json"
        assert failed.recorded != failed.actual

    def test_load_with_verify_raises_on_mismatch(self, fitted_cpd, twitter_tiny, tmp_path):
        graph, _ = twitter_tiny
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path, vocabulary=graph.vocabulary)
        bad = tmp_path / "tampered.cpd.npz"
        _tamper_entry(path, bad, "vocabulary.json", b'{"words": [], "frequencies": []}')
        with pytest.raises(ArtifactCorruptError, match="checksum mismatch"):
            load_artifact(bad, verify=True)
        # without verify the swap goes unnoticed if the payload still parses
        # (the default trusts the container CRCs) — that is the documented
        # trade-off verify=True exists to close
        assert load_artifact(bad).format_version == 3

    def test_flipped_byte_is_reported_not_raised(self, fitted_cpd, tmp_path):
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        check = verify_artifact(path)
        assert not check.ok and check.error

    def test_truncated_artifact_is_reported(self, fitted_cpd, tmp_path):
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path)
        path.write_bytes(path.read_bytes()[:100])
        check = verify_artifact(path)
        assert not check.ok and check.error

    def test_missing_file_is_reported(self, tmp_path):
        check = verify_artifact(tmp_path / "never-saved.cpd.npz")
        assert not check.ok
        assert check.error == "file not found"

    def test_stream_cursor_surfaces_without_reviving_payloads(
        self, fitted_cpd, tmp_path
    ):
        path = tmp_path / "stream.cpd.npz"
        cursor = {
            "documents_appended": 9,
            "links_appended": 4,
            "refreshes": 1,
            "last_timestamp": 3,
        }
        save_result(fitted_cpd, path, stream_cursor=cursor)
        assert verify_artifact(path).stream_cursor == cursor


class TestCrashSafety:
    def test_atomic_write_replaces_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "state.bin"
        path.write_bytes(b"old")
        atomic_write_bytes(path, b"new content")
        assert path.read_bytes() == b"new content"
        assert [p.name for p in tmp_path.iterdir()] == ["state.bin"]

    def test_atomic_write_failure_leaves_nothing_behind(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            atomic_write_bytes(tmp_path / "missing-dir" / "state.bin", b"x")
        assert list(tmp_path.iterdir()) == []

    def test_torn_write_fault_leaves_detectable_damage(self, fitted_cpd, tmp_path):
        """The pre-hardening failure mode, on demand: a save that dies
        mid-write leaves a torn file verify_artifact flags (rather than a
        silently-short artifact a later load trips over)."""
        path = tmp_path / "model.cpd.npz"
        plan = FaultPlan(seed=0)
        plan.fail_at("artifact.torn_write", at=1)
        with inject(plan):
            with pytest.raises(InjectedFault):
                save_result(fitted_cpd, path)
        assert path.exists()
        check = verify_artifact(path)
        assert not check.ok and check.error
        # a clean re-save over the torn file repairs it atomically
        save_result(fitted_cpd, path)
        assert verify_artifact(path).ok

    def test_artifact_read_fault_raises_corrupt_error(self, fitted_cpd, tmp_path):
        path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, path)
        plan = FaultPlan(seed=0)
        plan.fail_at("artifact.read", at=1)
        with inject(plan):
            with pytest.raises(ArtifactCorruptError, match="injected fault"):
                load_artifact(path)
        assert load_artifact(path).result is not None  # plan gone: reads fine


def _sample_manifest() -> ShardManifest:
    return ShardManifest(
        strategy="community",
        graph_name="twitter-tiny",
        shards=[
            ShardEntry(
                shard_id=0,
                path="shard-0.cpd.npz",
                users=np.array([0, 2, 5]),
                doc_ids=np.array([0, 1, 4]),
            ),
            ShardEntry(
                shard_id=1,
                path="shard-1.cpd.npz",
                users=np.array([1, 3, 4]),
                doc_ids=np.array([2, 3]),
            ),
        ],
        spill={"friendship": [[0, 1]], "diffusion": [[0, 2, 7]]},
        alignment={"n_global": 4, "local_to_global": [[0, 1], [1, 0]]},
    )


class TestShardManifest:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "manifest.shards.json"
        manifest = _sample_manifest()
        save_shard_manifest(manifest, path)
        revived = load_shard_manifest(path)
        assert revived.strategy == "community"
        assert revived.graph_name == "twitter-tiny"
        assert revived.n_shards == 2
        assert revived.n_users == 6
        assert revived.n_documents == 5
        for mine, theirs in zip(revived.shards, manifest.shards):
            assert mine.shard_id == theirs.shard_id
            assert mine.path == theirs.path
            np.testing.assert_array_equal(mine.users, theirs.users)
            np.testing.assert_array_equal(mine.doc_ids, theirs.doc_ids)
        assert revived.spill == manifest.spill
        assert revived.alignment == manifest.alignment

    def test_artifact_paths_resolve_against_manifest_dir(self, tmp_path):
        path = tmp_path / "nested" / "manifest.shards.json"
        path.parent.mkdir()
        save_shard_manifest(_sample_manifest(), path)
        revived = load_shard_manifest(path)
        paths = revived.artifact_paths(path)
        assert paths[0] == tmp_path / "nested" / "shard-0.cpd.npz"
        assert paths[1] == tmp_path / "nested" / "shard-1.cpd.npz"

    def test_unsupported_version_names_supported_ones(self, tmp_path):
        path = tmp_path / "manifest.shards.json"
        save_shard_manifest(_sample_manifest(), path)
        payload = json.loads(path.read_text())
        payload["manifest_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="supported versions: 1"):
            load_shard_manifest(path)

    def test_is_shard_manifest_sniffs_correctly(self, fitted_cpd, tmp_path):
        manifest_path = tmp_path / "manifest.shards.json"
        save_shard_manifest(_sample_manifest(), manifest_path)
        artifact_path = tmp_path / "model.cpd.npz"
        save_result(fitted_cpd, artifact_path)
        other_json = tmp_path / "other.json"
        other_json.write_text('{"hello": 1}')
        garbage = tmp_path / "garbage.bin"
        garbage.write_bytes(b"\x00\x01\x02")
        assert is_shard_manifest(manifest_path)
        assert not is_shard_manifest(artifact_path)
        assert not is_shard_manifest(other_json)
        assert not is_shard_manifest(garbage)


class TestManifestIntegrity:
    def _saved_federation(self, fitted_cpd, tmp_path):
        """A manifest plus two real shard artifacts next to it."""
        manifest_path = tmp_path / "manifest.shards.json"
        manifest = _sample_manifest()
        save_shard_manifest(manifest, manifest_path)
        for entry in manifest.shards:
            save_result(fitted_cpd, tmp_path / entry.path)
        return manifest_path

    def test_healthy_federation_verifies_clean(self, fitted_cpd, tmp_path):
        manifest_path = self._saved_federation(fitted_cpd, tmp_path)
        check = verify_shard_manifest(manifest_path)
        assert check.ok and check.error is None
        assert check.n_shards == 2
        assert len(check.artifact_checks) == 2
        assert all(shard.ok for shard in check.artifact_checks)

    def test_damaged_shard_artifact_is_named(self, fitted_cpd, tmp_path):
        manifest_path = self._saved_federation(fitted_cpd, tmp_path)
        shard_path = tmp_path / "shard-1.cpd.npz"
        shard_path.write_bytes(shard_path.read_bytes()[:80])
        check = verify_shard_manifest(manifest_path)
        assert not check.ok
        assert "shard-1.cpd.npz" in check.error
        damaged = [s for s in check.artifact_checks if not s.ok]
        assert len(damaged) == 1
        assert damaged[0].path.endswith("shard-1.cpd.npz")

    def test_manifest_tamper_is_caught_by_its_checksum(self, fitted_cpd, tmp_path):
        manifest_path = self._saved_federation(fitted_cpd, tmp_path)
        payload = json.loads(manifest_path.read_text())
        payload["strategy"] = "forged"  # edit without refreshing the checksum
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactCorruptError, match="checksum mismatch"):
            load_shard_manifest(manifest_path)
        check = verify_shard_manifest(manifest_path)
        assert not check.ok and "checksum mismatch" in check.error

    def test_pre_hardening_manifest_without_checksum_loads(
        self, fitted_cpd, tmp_path
    ):
        manifest_path = self._saved_federation(fitted_cpd, tmp_path)
        payload = json.loads(manifest_path.read_text())
        del payload["checksum"]
        manifest_path.write_text(json.dumps(payload))
        assert load_shard_manifest(manifest_path).n_shards == 2
        assert verify_shard_manifest(manifest_path).ok

    def test_index_only_check_skips_the_artifacts(self, fitted_cpd, tmp_path):
        manifest_path = self._saved_federation(fitted_cpd, tmp_path)
        (tmp_path / "shard-0.cpd.npz").write_bytes(b"ruined")
        check = verify_shard_manifest(manifest_path, check_artifacts=False)
        assert check.ok  # the index itself is intact; shards were not read
        assert check.artifact_checks == []

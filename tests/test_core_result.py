"""Tests for CPDResult accessors and profile views."""

import numpy as np
import pytest

from repro.core import all_profiles, profile_of


class TestMemberships:
    def test_top_communities_shape(self, fitted_cpd):
        top = fitted_cpd.top_communities_per_user(k=2)
        assert top.shape == (fitted_cpd.n_users, 2)

    def test_top_communities_ordered(self, fitted_cpd):
        top = fitted_cpd.top_communities_per_user(k=2)
        for user in range(5):
            first, second = top[user]
            assert fitted_cpd.pi[user, first] >= fitted_cpd.pi[user, second]

    def test_k_clamped(self, fitted_cpd):
        top = fitted_cpd.top_communities_per_user(k=99)
        assert top.shape[1] == fitted_cpd.n_communities

    def test_community_members_cover_users(self, fitted_cpd):
        members = fitted_cpd.community_members(k=fitted_cpd.n_communities)
        covered = set()
        for group in members:
            covered.update(group.tolist())
        assert covered == set(range(fitted_cpd.n_users))

    def test_hard_assignment(self, fitted_cpd):
        hard = fitted_cpd.hard_community_per_user()
        np.testing.assert_array_equal(hard, np.argmax(fitted_cpd.pi, axis=1))


class TestContentAccessors:
    def test_top_topics_sorted(self, fitted_cpd):
        tops = fitted_cpd.top_topics(0, n=3)
        weights = [w for _z, w in tops]
        assert weights == sorted(weights, reverse=True)

    def test_top_words_with_vocabulary(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        words = fitted_cpd.top_words(0, n=5, vocabulary=graph.vocabulary)
        assert len(words) == 5
        assert all(isinstance(word, str) for word, _p in words)

    def test_word_probability_normalised(self, fitted_cpd):
        probs = fitted_cpd.word_probability_per_user(0)
        assert probs.sum() == pytest.approx(1.0)


class TestDiffusionAccessors:
    def test_strength_topic_aggregation(self, fitted_cpd):
        total = fitted_cpd.diffusion_strength(0, 1)
        by_topic = sum(
            fitted_cpd.diffusion_strength(0, 1, z) for z in range(fitted_cpd.n_topics)
        )
        assert total == pytest.approx(by_topic)

    def test_aggregated_matrix(self, fitted_cpd):
        matrix = fitted_cpd.aggregated_diffusion_matrix()
        assert matrix.shape == (4, 4)
        assert matrix.sum() == pytest.approx(1.0)

    def test_top_diffused_topics_sorted(self, fitted_cpd):
        tops = fitted_cpd.top_diffused_topics(0, 0, n=3)
        strengths = [s for _z, s in tops]
        assert strengths == sorted(strengths, reverse=True)

    def test_openness_in_unit_interval(self, fitted_cpd):
        for community in range(fitted_cpd.n_communities):
            assert 0.0 <= fitted_cpd.openness(community) <= 1.0


class TestSummary:
    def test_summary_mentions_communities(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        text = fitted_cpd.summary(graph.vocabulary)
        assert "c00" in text
        assert "factor weights" in text


class TestProfiles:
    def test_profile_of_matches_result(self, fitted_cpd):
        profile = profile_of(fitted_cpd, 1)
        np.testing.assert_allclose(profile.content.topics, fitted_cpd.theta[1])
        np.testing.assert_allclose(profile.diffusion.strengths, fitted_cpd.eta[1])

    def test_profile_out_of_range(self, fitted_cpd):
        with pytest.raises(ValueError):
            profile_of(fitted_cpd, 99)

    def test_all_profiles_count(self, fitted_cpd):
        assert len(all_profiles(fitted_cpd)) == fitted_cpd.n_communities

    def test_openness_consistent(self, fitted_cpd):
        profile = profile_of(fitted_cpd, 2)
        assert profile.diffusion.openness() == pytest.approx(fitted_cpd.openness(2))

    def test_content_entropy_positive(self, fitted_cpd):
        profile = profile_of(fitted_cpd, 0)
        assert profile.content.entropy() > 0

    def test_describe_readable(self, fitted_cpd, twitter_tiny):
        graph, _ = twitter_tiny
        text = profile_of(fitted_cpd, 0).describe(fitted_cpd, graph.vocabulary)
        assert "community c0" in text
        assert "openness" in text

    def test_aggregated_diffusion_vector(self, fitted_cpd):
        profile = profile_of(fitted_cpd, 0)
        np.testing.assert_allclose(
            profile.diffusion.aggregated(), fitted_cpd.eta[0].sum(axis=1)
        )

"""Tests for AUC (incl. hypothesis invariance properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.evaluation import auc_from_labels, auc_score


class TestAucScore:
    def test_perfect_separation(self):
        assert auc_score(np.array([2.0, 3.0]), np.array([0.0, 1.0])) == 1.0

    def test_perfect_inversion(self):
        assert auc_score(np.array([0.0]), np.array([1.0])) == 0.0

    def test_chance_level(self, rng):
        scores = rng.normal(size=2000)
        assert auc_score(scores[:1000], scores[1000:]) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_half_credit(self):
        assert auc_score(np.array([1.0]), np.array([1.0])) == 0.5

    def test_known_value(self):
        # positives [3, 1], negatives [2, 0]: pairs won 3>2, 3>0, 1>0 => 3/4
        assert auc_score(np.array([3.0, 1.0]), np.array([2.0, 0.0])) == 0.75

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            auc_score(np.array([]), np.array([1.0]))

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            auc_score(np.array([np.nan]), np.array([1.0]))

    @given(
        pos=arrays(np.float64, st.integers(1, 30), elements=st.floats(-100, 100)),
        neg=arrays(np.float64, st.integers(1, 30), elements=st.floats(-100, 100)),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_and_complementary(self, pos, neg):
        value = auc_score(pos, neg)
        assert 0.0 <= value <= 1.0
        # swapping positives and negatives mirrors the score
        assert auc_score(neg, pos) == pytest.approx(1.0 - value)

    @given(
        # rounding keeps value gaps >= 1e-3, far above float64 noise, so the
        # affine transform below can neither create nor destroy ties
        pos=arrays(
            np.float64, st.integers(1, 20),
            elements=st.floats(-50, 50).map(lambda x: round(x, 3)),
        ),
        neg=arrays(
            np.float64, st.integers(1, 20),
            elements=st.floats(-50, 50).map(lambda x: round(x, 3)),
        ),
        shift=st.sampled_from([-8.0, 0.0, 8.0]),
        scale=st.sampled_from([0.5, 1.0, 2.0, 4.0]),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_transform_invariance(self, pos, neg, shift, scale):
        base = auc_score(pos, neg)
        transformed = auc_score(pos * scale + shift, neg * scale + shift)
        assert transformed == pytest.approx(base, abs=1e-9)


class TestAucFromLabels:
    def test_matches_split_form(self):
        scores = np.array([0.9, 0.1, 0.8, 0.3])
        labels = np.array([1, 0, 1, 0])
        assert auc_from_labels(scores, labels) == auc_score(
            scores[labels == 1], scores[labels == 0]
        )

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            auc_from_labels(np.ones(3), np.ones(2))

"""ISSUE 8 acceptance: cross-process span trees and end-to-end telemetry.

The two headline scenarios must each yield a *single connected* span tree
under one trace id even though the work crosses process (parallel fit) or
layer (degraded scatter-gather) boundaries; and the instrumented streaming
and durability paths must land their metrics in one registry.
"""

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core import CPDConfig, CPDModel, FitOptions
from repro.parallel import ParallelEStepRunner
from repro.resilience import FaultPlan, WriteAheadLog, inject
from repro.resilience.faults import FaultSpec
from repro.serving import ProfileStore
from repro.shard import ShardRouter
from repro.stream import DocumentArrival, MicroBatchIngestor


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_telemetry()
    yield
    obs.disable_telemetry()


def _single_tree(records, root_name):
    """Assert the records form one connected tree rooted at ``root_name``."""
    trace_ids = {record["trace_id"] for record in records}
    assert len(trace_ids) == 1, f"expected one trace, got {trace_ids}"
    trees = obs.span_trees(records)
    assert len(trees) == 1, (
        f"expected one connected tree, got roots "
        f"{[t['span']['name'] for t in trees]}"
    )
    assert trees[0]["span"]["name"] == root_name
    return trees[0]


class TestParallelFitTrace:
    def test_two_worker_fit_yields_one_connected_tree(self, twitter_tiny):
        graph, _truth = twitter_tiny
        config = CPDConfig(n_communities=4, n_topics=8, n_iterations=2)
        registry, sink = obs.enable_telemetry()
        runner = ParallelEStepRunner(graph, config, n_workers=2, rng=5)
        try:
            CPDModel(config, rng=5).fit(
                graph, FitOptions(document_sweeper=runner)
            )
        finally:
            runner.close()
        records = sink.export()
        tree = _single_tree(records, "fit")

        # the tree crosses process boundaries: coordinator + 2 workers
        pids = {record["pid"] for record in records}
        assert len(pids) >= 3
        worker_spans = [
            r for r in records if r["name"] == "parallel.worker_sweep"
        ]
        assert len(worker_spans) == config.n_iterations * 2
        by_id = {r["span_id"]: r for r in records}
        for worker_span in worker_spans:
            parent = by_id[worker_span["parent_id"]]
            assert parent["name"] == "parallel.sweep"

        # worker-side metrics merged back through the ack protocol
        snapshot = registry.snapshot()
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in snapshot["counters"]
        }
        sweeps = [
            value for (name, _labels), value in counters.items()
            if name == "repro_sweeps_total"
        ]
        assert sum(sweeps) >= config.n_iterations
        assert any(
            name == "repro_parallel_sweeps_total"
            for name, _labels in counters
        )

        # convergence gauges from the fit loop
        gauges = {g["name"] for g in snapshot["gauges"]}
        assert "repro_fit_diffusion_probability" in gauges
        assert "repro_fit_diffusion_slope" in gauges

        # phase timing histograms cover all three EM phases
        phases = {
            entry["labels"].get("phase")
            for entry in snapshot["histograms"]
            if entry["name"] == "repro_fit_phase_seconds"
        }
        assert phases == {"e_step", "augmentation", "m_step"}
        assert tree["children"], "fit iterations must nest under the fit span"


class TestDegradedShardQueryTrace:
    def test_degraded_gather_yields_one_connected_tree(self, sharded_parity):
        fit = sharded_parity
        router = ShardRouter(
            [
                ProfileStore.from_fit(result, part.graph)
                for result, part in zip(fit.results, fit.plan.shards)
            ],
            [part.users for part in fit.plan.shards],
            fit.alignment,
            best_effort=True,
            retries=1,
            backoff=0.0,
            breaker_threshold=1,
        )
        term = router.indexed_terms()[0]
        plan = FaultPlan(seed=0)
        plan.arm(
            FaultSpec(point="shard.query", at=1, times=10_000, match={"shard": 1})
        )
        registry, sink = obs.enable_telemetry()
        with inject(plan):
            envelope = router.gather(term)
        assert not envelope.exact

        records = sink.export()
        tree = _single_tree(records, "router.gather")
        assert tree["span"]["tags"]["outcome"] == "degraded"
        shard_calls = tree["children"]
        assert {c["span"]["name"] for c in shard_calls} == {"shard.call"}
        assert len(shard_calls) == router.n_shards
        outcomes = {
            c["span"]["tags"]["shard"]: c["span"]["tags"]["outcome"]
            for c in shard_calls
        }
        assert outcomes[0] == "live"
        assert outcomes[1] == "failed"

        snapshot = registry.snapshot()
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in snapshot["counters"]
        }
        assert counters[
            ("repro_breaker_transitions_total", (("shard", "1"), ("to", "open")))
        ] == 1
        assert counters[
            ("repro_shard_retries_total", (("shard", "1"),))
        ] == 1
        gathered = {
            labels: value
            for (name, labels), value in counters.items()
            if name == "repro_shard_gather_total"
        }
        assert gathered[(("outcome", "live"), ("shard", "0"))] == 1
        assert gathered[(("outcome", "failed"), ("shard", "1"))] == 1


class TestStreamAndWalMetrics:
    def test_ingest_and_wal_metrics_land_in_one_registry(
        self, twitter_tiny, fitted_cpd, tmp_path
    ):
        graph, _truth = twitter_tiny
        store = ProfileStore.from_fit(fitted_cpd, graph)
        registry, _sink = obs.enable_telemetry()
        rng = np.random.default_rng(3)
        events = []
        for _ in range(6):
            source = graph.documents[int(rng.integers(0, graph.n_documents))]
            events.append(
                DocumentArrival(
                    user_id=int(rng.integers(0, graph.n_users)),
                    words=np.asarray(source.words, dtype=np.int64),
                    timestamp=int(source.timestamp),
                )
            )
        with WriteAheadLog(tmp_path / "events.wal") as wal:
            ingestor = MicroBatchIngestor(store, batch_size=3, wal=wal, rng=1)
            ingestor.submit_many(events)
            ingestor.flush()

        snapshot = registry.snapshot()
        counters = {c["name"]: c["value"] for c in snapshot["counters"]
                    if not c["labels"]}
        assert counters["repro_ingest_flushes_total"] == 2
        assert counters["repro_wal_records_total"] == 2
        assert counters["repro_wal_events_total"] == 6
        assert counters["repro_wal_bytes_total"] > 0
        histograms = {h["name"]: h for h in snapshot["histograms"]}
        assert histograms["repro_ingest_batch_lag_seconds"]["count"] == 2
        assert histograms["repro_ingest_foldin_seconds"]["count"] == 2
        assert histograms["repro_wal_append_seconds"]["count"] == 2
        assert histograms["repro_wal_fsync_seconds"]["count"] == 2
        # the fold-in path records rank-independent batch sizes
        assert histograms["repro_ingest_batch_size"]["count"] == 2
        typed = {
            tuple(sorted(c["labels"].items())): c["value"]
            for c in snapshot["counters"]
            if c["name"] == "repro_ingest_events_total"
        }
        assert typed[(("type", "doc"),)] == 6


class TestCliTelemetrySurface:
    @pytest.fixture(scope="class")
    def telemetry_run(self, tmp_path_factory):
        """One CLI fit with --telemetry, shared by the surface tests."""
        tmp = tmp_path_factory.mktemp("obs_cli")
        graph_path = tmp / "g.json.gz"
        model_path = tmp / "m.cpd.npz"
        telemetry_path = tmp / "run.telemetry.json"
        assert main([
            "generate", "--scenario", "twitter", "--scale", "tiny",
            "--seed", "3", "--out", str(graph_path),
        ]) == 0
        assert main([
            "fit", "--graph", str(graph_path), "--communities", "4",
            "--topics", "6", "--iterations", "2", "--out", str(model_path),
            "--telemetry", str(telemetry_path),
        ]) == 0
        # the command must restore the no-op default on exit
        assert not obs.telemetry_enabled()
        return telemetry_path

    def test_telemetry_file_written(self, telemetry_run):
        payload = obs.load_telemetry(telemetry_run)
        names = {c["name"] for c in payload["metrics"]["counters"]}
        assert "repro_sweeps_total" in names
        assert payload["spans"]

    def test_top_renders_table(self, telemetry_run, capsys):
        assert main(["top", "--telemetry", str(telemetry_run)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "repro_sweeps_total" in out
        assert "p95" in out

    def test_top_renders_prometheus(self, telemetry_run, capsys):
        assert main([
            "top", "--telemetry", str(telemetry_run), "--format", "prometheus",
        ]) == 0
        out = capsys.readouterr().out
        parsed = obs.parse_prometheus(out)
        assert parsed["types"]["repro_sweeps_total"] == "counter"

    def test_trace_renders_one_fit_tree(self, telemetry_run, capsys):
        assert main(["trace", "--telemetry", str(telemetry_run)]) == 0
        out = capsys.readouterr().out
        assert "fit" in out
        assert "fit.iteration" in out
        assert "1 trace tree(s)" in out

    def test_trace_name_filter(self, telemetry_run, capsys):
        assert main([
            "trace", "--telemetry", str(telemetry_run), "--name", "no.such.span",
        ]) == 0
        assert "no matching spans" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["top", "--telemetry", str(tmp_path / "absent.json")]) == 1
        assert main(["trace", "--telemetry", str(tmp_path / "absent.json")]) == 1

    def test_doctor_embeds_telemetry(self, telemetry_run, capsys):
        assert main(["doctor", "--telemetry", str(telemetry_run)]) == 0
        out = capsys.readouterr().out
        assert "telemetry" in out
        assert "spans" in out

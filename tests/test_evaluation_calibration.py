"""Tests for probability calibration metrics."""

import numpy as np
import pytest

from repro.evaluation import brier_score, calibration_report


class TestBrierScore:
    def test_perfect_predictions(self):
        assert brier_score(np.array([1.0, 0.0]), np.array([1.0, 0.0])) == 0.0

    def test_worst_predictions(self):
        assert brier_score(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_uninformative_half(self):
        probs = np.full(100, 0.5)
        labels = np.concatenate([np.ones(50), np.zeros(50)])
        assert brier_score(probs, labels) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            brier_score(np.array([0.5]), np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            brier_score(np.array([1.5]), np.array([1.0]))
        with pytest.raises(ValueError):
            brier_score(np.array([]), np.array([]))


class TestCalibrationReport:
    def test_calibrated_predictions_low_ece(self, rng):
        probs = rng.random(5000)
        labels = (rng.random(5000) < probs).astype(float)
        report = calibration_report(probs, labels)
        assert report.expected_calibration_error < 0.05

    def test_overconfident_predictions_high_ece(self, rng):
        # predict extremes while outcomes are coin flips
        probs = np.where(rng.random(2000) < 0.5, 0.99, 0.01)
        labels = (rng.random(2000) < 0.5).astype(float)
        report = calibration_report(probs, labels)
        assert report.expected_calibration_error > 0.3

    def test_bin_structure(self, rng):
        probs = rng.random(500)
        labels = (rng.random(500) < 0.5).astype(float)
        report = calibration_report(probs, labels, n_bins=5)
        assert len(report.bins) == 5
        assert sum(b.n_examples for b in report.bins) == 500
        assert report.bins[0].lower == 0.0
        assert report.bins[-1].upper == 1.0

    def test_gap_sign(self):
        probs = np.full(100, 0.9)
        labels = np.zeros(100)
        report = calibration_report(probs, labels, n_bins=10)
        populated = [b for b in report.bins if b.n_examples]
        assert populated[0].gap == pytest.approx(0.9)

    def test_describe_readable(self, rng):
        probs = rng.random(100)
        labels = (rng.random(100) < probs).astype(float)
        text = calibration_report(probs, labels).describe()
        assert "Brier" in text
        assert "ECE" in text

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            calibration_report(np.array([0.5]), np.array([1.0]), n_bins=0)

    def test_predictor_calibration_workflow(self, fitted_cpd, twitter_tiny, rng):
        """Audit the Eq. 18 predictor as a probability model."""
        from repro.apps import DiffusionPredictor
        from repro.diffusion import sample_negative_diffusion_pairs

        graph, _ = twitter_tiny
        predictor = DiffusionPredictor(fitted_cpd, graph)
        src = np.asarray([l.source_doc for l in graph.diffusion_links])
        tgt = np.asarray([l.target_doc for l in graph.diffusion_links])
        t = np.asarray([l.timestamp for l in graph.diffusion_links])
        positives = predictor.score_pairs(src, tgt, t)
        negatives_raw = sample_negative_diffusion_pairs(graph, len(src), rng)
        negatives = predictor.score_pairs(
            np.asarray([n[0] for n in negatives_raw]),
            np.asarray([n[1] for n in negatives_raw]),
            np.asarray([n[2] for n in negatives_raw]),
        )
        probs = np.concatenate([positives, negatives])
        labels = np.concatenate([np.ones(len(positives)), np.zeros(len(negatives))])
        report = calibration_report(probs, labels)
        assert 0.0 <= report.brier <= 1.0
        # better than predicting 0.5 everywhere would not be guaranteed, but
        # the report must at least be structurally sound
        assert sum(b.n_examples for b in report.bins) == len(probs)

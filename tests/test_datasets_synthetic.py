"""Tests for the planted-profile generator and scenario flavours."""

import numpy as np
import pytest

from repro.datasets import (
    DBLP_SCALES,
    TWITTER_SCALES,
    SyntheticConfig,
    dblp_config,
    dblp_scenario,
    generate_synthetic,
    twitter_config,
    twitter_scenario,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticConfig()

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_communities=0)
        with pytest.raises(ValueError):
            SyntheticConfig(n_users=1)
        with pytest.raises(ValueError):
            SyntheticConfig(conforming_fraction=1.5)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            twitter_config("galactic")
        with pytest.raises(ValueError):
            dblp_config("galactic")


class TestGeneratedGraph:
    def test_reproducible_from_seed(self):
        a, _ = generate_synthetic(SyntheticConfig(n_users=30, n_friendship_links=100,
                                                  n_diffusion_links=50), rng=3)
        b, _ = generate_synthetic(SyntheticConfig(n_users=30, n_friendship_links=100,
                                                  n_diffusion_links=50), rng=3)
        assert a.stats().as_row() == b.stats().as_row()
        np.testing.assert_array_equal(a.documents[0].words, b.documents[0].words)

    def test_every_user_has_documents(self, twitter_tiny):
        graph, _ = twitter_tiny
        assert all(len(graph.documents_of(u)) >= 1 for u in range(graph.n_users))

    def test_documents_at_least_two_words(self, twitter_tiny):
        graph, _ = twitter_tiny
        assert all(len(doc.words) >= 2 for doc in graph.documents)

    def test_link_counts_near_target(self, twitter_tiny):
        graph, _ = twitter_tiny
        assert graph.n_friendship_links >= 200  # target 240
        assert graph.n_diffusion_links >= 80  # target 110

    def test_timestamps_in_range(self, twitter_tiny):
        graph, _ = twitter_tiny
        times = [doc.timestamp for doc in graph.documents]
        assert min(times) >= 0 and max(times) < 24


class TestGroundTruth:
    def test_distributions_normalised(self, twitter_tiny):
        _, truth = twitter_tiny
        np.testing.assert_allclose(truth.pi.sum(axis=1), 1.0, rtol=1e-9)
        np.testing.assert_allclose(truth.theta.sum(axis=1), 1.0, rtol=1e-9)
        np.testing.assert_allclose(truth.phi.sum(axis=1), 1.0, rtol=1e-9)

    def test_realized_eta_is_distribution(self, twitter_tiny):
        _, truth = twitter_tiny
        assert truth.eta_realized.sum() == pytest.approx(1.0)

    def test_doc_assignments_cover_documents(self, twitter_tiny):
        graph, truth = twitter_tiny
        assert truth.doc_community.shape == (graph.n_documents,)
        assert truth.doc_topic.shape == (graph.n_documents,)
        assert truth.doc_topic.max() < truth.n_topics

    def test_homophily_planted(self, twitter_tiny):
        """Friendship links should be denser inside planted communities."""
        graph, truth = twitter_tiny
        same = sum(
            1
            for link in graph.friendship_links
            if truth.primary_community[link.source]
            == truth.primary_community[link.target]
        )
        fraction_same = same / graph.n_friendship_links
        # under random linking the expectation is ~1/|C| = 0.25
        assert fraction_same > 0.5

    def test_weak_ties_planted(self, dblp_tiny):
        """Some inter-community diffusion must be stronger than base level."""
        _, truth = dblp_tiny
        eta = truth.eta_intended
        off_diagonal = eta.copy()
        for c in range(truth.n_communities):
            off_diagonal[c, c, :] = 0.0
        assert off_diagonal.max() >= 0.9  # the planted cross entries

    def test_pi_peaks_at_primary(self, twitter_tiny):
        _, truth = twitter_tiny
        agreement = (np.argmax(truth.pi, axis=1) == truth.primary_community).mean()
        assert agreement > 0.8


class TestScenarioFlavours:
    def test_scales_exposed(self):
        assert set(TWITTER_SCALES) == {"tiny", "small", "medium"}
        assert set(DBLP_SCALES) == {"tiny", "small", "medium"}

    def test_twitter_has_hashtags(self, twitter_tiny):
        graph, _ = twitter_tiny
        assert any(word.startswith("#") for word in graph.vocabulary)

    def test_dblp_has_no_hashtags(self, dblp_tiny):
        graph, _ = dblp_tiny
        assert not any(word.startswith("#") for word in graph.vocabulary)

    def test_dblp_citations_point_backwards(self, dblp_tiny):
        graph, _ = dblp_tiny
        for link in graph.diffusion_links:
            source_time = graph.documents[link.source_doc].timestamp
            target_time = graph.documents[link.target_doc].timestamp
            assert target_time <= source_time

    def test_dblp_coauthorship_symmetric(self, dblp_tiny):
        graph, _ = dblp_tiny
        pairs = graph.friendship_pairs()
        assert all((v, u) in pairs for (u, v) in pairs)

    def test_dblp_more_diffusion_than_friendship(self, dblp_tiny):
        graph, _ = dblp_tiny
        assert graph.n_diffusion_links > graph.n_friendship_links

    def test_twitter_more_friendship_than_diffusion(self, twitter_tiny):
        graph, _ = twitter_tiny
        assert graph.n_friendship_links > graph.n_diffusion_links

    def test_twitter_activity_skewed(self):
        graph, _ = twitter_scenario("tiny", rng=5)
        counts = np.array([len(graph.documents_of(u)) for u in range(graph.n_users)])
        assert counts.max() >= 3 * np.median(counts)

    def test_overrides_respected(self):
        graph, _ = dblp_scenario("tiny", rng=0, n_users=30)
        assert graph.n_users <= 30

    def test_no_same_user_diffusion(self, twitter_tiny):
        graph, _ = twitter_tiny
        doc_user = graph.document_user_array()
        for link in graph.diffusion_links:
            assert doc_user[link.source_doc] != doc_user[link.target_doc]

"""Tests for the scatter-gather ShardRouter, including the parity pins.

The end-to-end acceptance bars (ISSUE 5) live here: on the separated
synthetic scenario a 2-shard router must agree with a monolithic
``ProfileStore`` on >=80% of indexed queries (the monolithic best
community, mapped through the alignment, appears in the router's top-2),
and the aligned global user labels must reach NMI >= 0.7 against the
monolithic fit's hard labels.
"""

import numpy as np
import pytest

from repro.evaluation import nmi_matrix
from repro.serving import ProfileStore
from repro.shard import (
    CommunityAligner,
    ShardRouter,
    aligned_user_labels,
    fit_shards,
)


@pytest.fixture(scope="module")
def router(sharded_parity):
    return sharded_parity.router()


@pytest.fixture(scope="module")
def mono_store(mono_parity, separated_tiny):
    graph, _ = separated_tiny
    return ProfileStore.from_fit(mono_parity, graph)


@pytest.fixture(scope="module")
def mono_to_global(sharded_parity, mono_parity):
    return CommunityAligner().map_result(sharded_parity.alignment, mono_parity)


class TestEndToEndParity:
    def test_top_k_agreement_at_least_80_percent(
        self, router, mono_store, mono_to_global
    ):
        terms = [query.term for query in mono_store.indexed_queries()]
        assert len(terms) >= 50  # the scenario must index a real workload
        agreements = 0
        for term in terms:
            mono_best = int(mono_to_global[mono_store.top_k(term, 1)[0]])
            agreements += int(mono_best in router.top_k(term, 2))
        assert agreements / len(terms) >= 0.8

    def test_aligned_labels_nmi_at_least_0_7(
        self, sharded_parity, mono_parity, separated_tiny
    ):
        graph, _ = separated_tiny
        labels = aligned_user_labels(
            sharded_parity.alignment,
            sharded_parity.results,
            [part.users for part in sharded_parity.plan.shards],
            graph.n_users,
        )
        score = nmi_matrix(mono_parity.hard_community_per_user(), [labels])[0]
        assert score >= 0.7

    def test_hash_strategy_also_clears_the_bars(
        self, separated_tiny, parity_config, mono_parity
    ):
        graph, _ = separated_tiny
        fit = fit_shards(graph, parity_config, 2, strategy="hash", rng=9)
        labels = aligned_user_labels(
            fit.alignment,
            fit.results,
            [part.users for part in fit.plan.shards],
            graph.n_users,
        )
        score = nmi_matrix(mono_parity.hard_community_per_user(), [labels])[0]
        assert score >= 0.7


class TestMergeExactness:
    def test_rank_is_sorted_and_deduplicated(self, router):
        term = router.indexed_terms()[0]
        ranking = router.rank(term)
        scores = [score for _c, score in ranking]
        assert scores == sorted(scores, reverse=True)
        labels = [c for c, _s in ranking]
        assert len(labels) == len(set(labels))
        assert set(labels) <= set(range(router.n_communities))

    def test_heap_merge_matches_brute_force_max(self, router, sharded_parity):
        """First-wins on the merged descending stream == max over backings."""
        term = router.indexed_terms()[0]
        shifts = [store.query_log_shift(term) for store in router.stores]
        reference = max(shifts)
        expected: dict[int, float] = {}
        for shard_id, store in enumerate(router.stores):
            mapping = sharded_parity.alignment.local_to_global[shard_id]
            scale = np.exp(shifts[shard_id] - reference)
            for local, score in store.rank(term):
                g = int(mapping[local])
                expected[g] = max(expected.get(g, -np.inf), score * scale)
        brute = sorted(expected.items(), key=lambda item: -item[1])
        merged = router.rank(term)
        assert [c for c, _s in merged] == [c for c, _s in brute]
        np.testing.assert_allclose(
            [s for _c, s in merged], [s for _c, s in brute]
        )

    def test_top_k_is_a_prefix_of_rank(self, router):
        term = router.indexed_terms()[1]
        full = [c for c, _s in router.rank(term)]
        for k in (1, 2, len(full)):
            assert router.top_k(term, k) == full[:k]

    def test_scores_vector_matches_rank(self, router):
        term = router.indexed_terms()[0]
        scores = router.scores(term)
        for community, score in router.rank(term):
            assert scores[community] == pytest.approx(score)

    def test_unknown_query_raises(self, router):
        with pytest.raises(KeyError):
            router.rank("zzzz-not-a-word")


class TestServingFacade:
    def test_cache_info_aggregates_shards(self, sharded_parity):
        fresh = sharded_parity.router()
        term = fresh.indexed_terms()[0]
        fresh.rank(term)
        fresh.rank(term)
        info = fresh.cache_info()
        assert info["misses"] == fresh.n_shards  # one miss per shard store
        assert len(info["shards"]) == fresh.n_shards
        assert info["misses"] == sum(shard["misses"] for shard in info["shards"])
        # the repeat never reached the shards: the router LRU absorbed it
        router_info = info["router"]
        assert router_info["hits"] == 1 and router_info["misses"] == 1
        assert router_info["size"] == 1 and router_info["max_size"] == 1024

    def test_router_cache_hit_skips_scatter_and_merge(self, sharded_parity, monkeypatch):
        fresh = sharded_parity.router()
        term = fresh.indexed_terms()[0]
        primed = fresh.rank(term)
        for store in fresh.stores:
            monkeypatch.setattr(
                store, "rank", lambda _q: (_ for _ in ()).throw(AssertionError)
            )
        assert fresh.rank(term) == primed
        assert fresh.top_k(term, 2) == [c for c, _s in primed[:2]]

    def test_cached_merged_ranking_is_a_copy(self, sharded_parity):
        fresh = sharded_parity.router()
        term = fresh.indexed_terms()[0]
        ranking = fresh.rank(term)
        ranking.append(("tampered", 0.0))
        assert fresh.rank(term)[-1] != ("tampered", 0.0)

    def test_community_members_are_global_and_disjointly_unioned(
        self, router, separated_tiny
    ):
        graph, _ = separated_tiny
        members = router.community_members(1)
        assert len(members) == router.n_communities
        stacked = np.concatenate(members)
        assert stacked.size == graph.n_users  # top-1: every user exactly once
        assert len(np.unique(stacked)) == graph.n_users

    def test_labels_come_from_heaviest_backing(self, router):
        labels = router.labels()
        assert len(labels) == router.n_communities
        assert all(isinstance(label, str) and label for label in labels)

    def test_relevant_users_union_global_ids(self, router, separated_tiny):
        graph, _ = separated_tiny
        term = router.indexed_terms()[0]
        users = router.relevant_users(term)
        assert (users >= 0).all() and (users < graph.n_users).all()
        assert len(np.unique(users)) == len(users)
        with pytest.raises(KeyError):
            router.relevant_users("zzzz-not-a-term")

    def test_shard_of_user_roundtrip(self, router, sharded_parity):
        for part in sharded_parity.plan.shards:
            global_user = int(part.users[0])
            shard_id, local = router.shard_of_user(global_user)
            assert shard_id == part.shard_id
            assert int(part.users[local]) == global_user


class TestManifestRoundtrip:
    def test_router_from_manifest_matches_in_memory(
        self, separated_tiny, parity_config, tmp_path_factory
    ):
        graph, _ = separated_tiny
        out_dir = tmp_path_factory.mktemp("shards")
        fit = fit_shards(
            graph, parity_config, 2, strategy="hash", out_dir=out_dir, rng=9
        )
        memory_router = ShardRouter(
            [
                ProfileStore.from_fit(result, part.graph)
                for result, part in zip(fit.results, fit.plan.shards)
            ],
            [part.users for part in fit.plan.shards],
            fit.alignment,
        )
        disk_router = ShardRouter.from_manifest(fit.manifest_path)
        assert disk_router.n_shards == memory_router.n_shards
        assert disk_router.n_communities == memory_router.n_communities
        for term in disk_router.indexed_terms()[:10]:
            assert disk_router.rank(term) == memory_router.rank(term)
        # revived alignment rebuilt its signatures for map_result
        assert disk_router.alignment.signatures.size > 0

    def test_manifest_without_alignment_is_rejected(
        self, separated_tiny, parity_config, tmp_path_factory
    ):
        from repro.core import load_shard_manifest, save_shard_manifest

        graph, _ = separated_tiny
        out_dir = tmp_path_factory.mktemp("noalign")
        fit = fit_shards(
            graph, parity_config, 2, strategy="hash", out_dir=out_dir, rng=9
        )
        manifest = load_shard_manifest(fit.manifest_path)
        manifest.alignment = None
        save_shard_manifest(manifest, fit.manifest_path)
        with pytest.raises(ValueError, match="alignment"):
            ShardRouter.from_manifest(fit.manifest_path)


class TestHotSwap:
    def test_hot_swap_shard_refreshes_served_answers(self, sharded_parity):
        router = sharded_parity.router()
        term = router.indexed_terms()[0]
        before = router.rank(term)
        members_before = router.community_members(1)
        swapped = sharded_parity.results[1]
        # a visibly different result: permute the communities of shard 1
        permutation = np.roll(np.arange(swapped.n_communities), 1)
        from test_shard_align import permuted_result

        router.hot_swap_shard(1, permuted_result(swapped, permutation))
        after = router.rank(term)
        assert before != after or members_before != router.community_members(1)

    def test_hot_swap_validates_community_count(self, sharded_parity, mono_parity):
        router = sharded_parity.router()
        import dataclasses

        shrunk = dataclasses.replace(
            mono_parity,
            theta=mono_parity.theta[:2],
            pi=mono_parity.pi[:, :2],
        )
        with pytest.raises(ValueError, match="aligned over"):
            router.hot_swap_shard(0, shrunk)
        with pytest.raises(ValueError, match="out of range"):
            router.hot_swap_shard(9, mono_parity)
